//! The placement-invariance matrix: every partitioning strategy, at every
//! worker count, on every profile, must land on the **bit-identical**
//! result digest of the default hash placement — including when composed
//! with schedule-perturbation seeds and injected faults.
//!
//! Placement only moves interval-vertices (and therefore messages)
//! between workers; the ICM/VCM semantics are defined on the graph, not
//! on the assignment. Results are keyed by external `VertexId`s in
//! ordered maps, so the digest of a run is a pure function of (graph,
//! program, config-semantics) — never of the partition map. The
//! *placement-invariant* counter key (supersteps, compute/scatter calls,
//! messages sent, warp counters) is pinned too; `remote_messages` and
//! `bytes_sent` legitimately vary with placement and are excluded.
//!
//! Two of the profiles here are byte-identical to the ones pinned in
//! `crates/bsp/tests/result_digest_pin.rs`, so the hash baselines are
//! additionally asserted against those recorded digests — the matrix is
//! anchored to the pre-partitioning recording, not merely self-consistent.

use graphite_algorithms::bfs::{IcmBfs, VcmBfs};
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_baselines::vcm::{try_run_vcm, try_run_vcm_recoverable, VcmConfig};
use graphite_baselines::{EdgeWeights, SnapshotTopology};
use graphite_bsp::fault::FaultPlan;
use graphite_bsp::metrics::RunMetrics;
use graphite_bsp::recover::RecoveryConfig;
use graphite_bsp::trace::TraceConfig;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, try_run_icm_recoverable, IcmConfig};
use graphite_part::PartitionStrategy;
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::sync::Arc;

/// Identical to `result_digest_pin::profile_long` — anchors the hash
/// baseline to the recorded digest.
fn profile_long() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 16,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 12.0 },
        props: PropModel {
            mean_segment: 6.0,
            max_cost: 10,
            max_travel_time: 3,
        },
        seed: 7,
    }
}

/// A laptop-scale slice of the `skew` profile shape: power-law degree
/// with bursty bimodal lifespans, so the strategies produce genuinely
/// different assignments (which the digests must not see).
fn profile_skew() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 24,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Bursty {
            heavy_fraction: 0.08,
            heavy_mean: 20.0,
            burst_mean: 2.0,
        },
        edge_lifespans: LifespanModel::Bursty {
            heavy_fraction: 0.10,
            heavy_mean: 16.0,
            burst_mean: 1.5,
        },
        props: PropModel {
            mean_segment: 4.0,
            max_cost: 10,
            max_travel_time: 2,
        },
        seed: 19,
    }
}

fn profiles() -> [(&'static str, GenParams); 2] {
    [("long", profile_long()), ("skew", profile_skew())]
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The placement-invariant slice of the counter key: everything except
/// `remote_messages` / `bytes_sent`, which measure the wire and *should*
/// change when vertices move between workers.
fn inv_counters(m: &RunMetrics) -> [u64; 6] {
    [
        m.supersteps,
        m.counters.compute_calls,
        m.counters.scatter_calls,
        m.counters.messages_sent,
        m.counters.warp_invocations,
        m.counters.warp_suppressions,
    ]
}

fn icm_cfg(strategy: PartitionStrategy, workers: usize) -> IcmConfig {
    IcmConfig {
        workers,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: None,
        trace: TraceConfig::default(),
        fault_plan: None,
        partition: strategy,
    }
}

fn vcm_cfg(strategy: PartitionStrategy, workers: usize) -> VcmConfig {
    VcmConfig {
        workers,
        max_supersteps: 10_000,
        superstep_budget: None,
        need_in_edges: false,
        keep_per_step_timing: false,
        perturb_schedule: None,
        trace: TraceConfig::default(),
        fault_plan: None,
        partition: strategy,
    }
}

fn icm_fingerprint<P>(
    graph: &Arc<TemporalGraph>,
    program: &Arc<P>,
    cfg: &IcmConfig,
) -> (u64, [u64; 6])
where
    P: graphite_icm::program::IntervalProgram<State = i64>,
{
    let r = try_run_icm(graph, Arc::clone(program), cfg).expect("matrix run must succeed");
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        inv_counters(&r.metrics),
    )
}

fn vcm_digest(states: std::collections::HashMap<u32, i64>) -> u64 {
    let mut states: Vec<(u32, i64)> = states.into_iter().collect();
    states.sort_unstable();
    fnv1a(format!("{states:?}").as_bytes())
}

fn vcm_topology(graph: &Arc<TemporalGraph>, params: &GenParams) -> Arc<SnapshotTopology> {
    let weights = EdgeWeights {
        w1: graph.label("travel-cost"),
        w2: graph.label("travel-time"),
    };
    Arc::new(SnapshotTopology::new(
        Arc::clone(graph),
        params.snapshots / 2,
        weights,
    ))
}

const WORKER_COUNTS: [usize; 2] = [2, 5];

/// State digests of the hash/4-worker baseline recorded in
/// `result_digest_pin.rs` — the long-profile anchors.
const ANCHORED: [(&str, u64); 2] = [
    ("bfs/long", 0x0727_4081_2ec0_284e),
    ("eat/long", 0x189c_95d8_c097_8d98),
];

#[test]
fn icm_digests_are_placement_invariant() {
    for (pname, params) in profiles() {
        let graph = Arc::new(generate(&params));
        let bfs = Arc::new(IcmBfs {
            source: source(&graph),
        });
        let eat = Arc::new(IcmEat {
            source: source(&graph),
            start: 0,
            labels: AlgLabels::resolve(&graph),
        });
        for (aname, base) in [
            (
                "bfs",
                icm_fingerprint(&graph, &bfs, &icm_cfg(PartitionStrategy::Hash, 4)),
            ),
            (
                "eat",
                icm_fingerprint(&graph, &eat, &icm_cfg(PartitionStrategy::Hash, 4)),
            ),
        ] {
            if let Some((_, pin)) = ANCHORED
                .iter()
                .find(|(l, _)| *l == format!("{aname}/{pname}"))
            {
                assert_eq!(
                    base.0, *pin,
                    "{aname}/{pname}: hash baseline diverged from the recorded pin"
                );
            }
            for strategy in PartitionStrategy::ALL {
                for workers in WORKER_COUNTS {
                    let cfg = icm_cfg(strategy.clone(), workers);
                    let got = if aname == "bfs" {
                        icm_fingerprint(&graph, &bfs, &cfg)
                    } else {
                        icm_fingerprint(&graph, &eat, &cfg)
                    };
                    assert_eq!(
                        got,
                        base,
                        "ICM/{aname}/{pname}: {} × {workers} workers diverged from hash/4",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn vcm_digests_are_placement_invariant() {
    for (pname, params) in profiles() {
        let graph = Arc::new(generate(&params));
        let topo = vcm_topology(&graph, &params);
        let program = Arc::new(VcmBfs {
            source: source(&graph),
        });
        let base = try_run_vcm(
            &topo,
            Arc::clone(&program),
            &vcm_cfg(PartitionStrategy::Hash, 4),
        )
        .expect("baseline VCM run must succeed");
        let baseline = (vcm_digest(base.states), inv_counters(&base.metrics));
        for strategy in PartitionStrategy::ALL {
            for workers in WORKER_COUNTS {
                let r = try_run_vcm(
                    &topo,
                    Arc::clone(&program),
                    &vcm_cfg(strategy.clone(), workers),
                )
                .expect("matrix VCM run must succeed");
                assert_eq!(
                    (vcm_digest(r.states), inv_counters(&r.metrics)),
                    baseline,
                    "VCM/BFS/{pname}: {} × {workers} workers diverged from hash/4",
                    strategy.name()
                );
            }
        }
    }
}

/// Placement composed with schedule perturbation: a perturbed schedule
/// under any strategy must still land on the unperturbed hash digest.
#[test]
fn strategies_compose_with_schedule_perturbation() {
    let params = profile_skew();
    let graph = Arc::new(generate(&params));
    let bfs = Arc::new(IcmBfs {
        source: source(&graph),
    });
    let baseline = icm_fingerprint(&graph, &bfs, &icm_cfg(PartitionStrategy::Hash, 4));
    for strategy in PartitionStrategy::ALL {
        for seed in [1u64, 0xDEAD_BEEF] {
            let cfg = IcmConfig {
                perturb_schedule: Some(seed),
                ..icm_cfg(strategy.clone(), 4)
            };
            let got = icm_fingerprint(&graph, &bfs, &cfg);
            assert_eq!(
                got,
                baseline,
                "{} + perturb {seed:#x}: diverged from unperturbed hash",
                strategy.name()
            );
        }
    }
}

/// Satellite: a fault-injected run under Ldg / TemporalBalance must
/// recover to the digest of a **clean hash** run — fault tolerance and
/// placement compose without either becoming observable in results.
#[test]
fn faulted_runs_under_alternative_strategies_recover_to_clean_hash_digest() {
    for (pname, params) in profiles() {
        let graph = Arc::new(generate(&params));
        let bfs = Arc::new(IcmBfs {
            source: source(&graph),
        });
        let clean_hash = icm_fingerprint(&graph, &bfs, &icm_cfg(PartitionStrategy::Hash, 4));
        for strategy in [PartitionStrategy::Ldg, PartitionStrategy::TemporalBalance] {
            for step in [2u64, 3] {
                let cfg = IcmConfig {
                    fault_plan: Some(FaultPlan::panic_at(1, step)),
                    ..icm_cfg(strategy.clone(), 4)
                };
                let r = try_run_icm_recoverable(
                    &graph,
                    Arc::clone(&bfs),
                    &cfg,
                    &RecoveryConfig::every(2),
                )
                .expect("recoverable run must converge");
                assert_eq!(
                    (
                        fnv1a(format!("{:?}", r.states).as_bytes()),
                        inv_counters(&r.metrics)
                    ),
                    clean_hash,
                    "{pname}: faulted {} run at step {step} diverged from clean hash",
                    strategy.name()
                );
                assert_eq!(
                    r.metrics.recovery.rollbacks,
                    1,
                    "{pname}/{}: the injected panic must have fired",
                    strategy.name()
                );
            }
        }
    }
}

/// The explicit strategy closes the measure → rebalance → run loop: a
/// pinned assignment (here: the temporal-balance map, round-tripped
/// through the `partition_report --emit-assignment` text format) replays
/// placement exactly — and, like every other strategy, is invisible in
/// the result digest.
#[test]
fn explicit_assignments_replay_and_stay_placement_invariant() {
    use graphite_part::ExplicitAssignment;
    for (pname, params) in profiles() {
        let graph = Arc::new(generate(&params));
        let bfs = Arc::new(IcmBfs {
            source: source(&graph),
        });
        let baseline = icm_fingerprint(&graph, &bfs, &icm_cfg(PartitionStrategy::Hash, 4));
        let workers = 3;
        let map = PartitionStrategy::TemporalBalance
            .build(&graph, workers)
            .expect("temporal map must build");
        // Round-trip through the on-disk text format, exactly as a
        // `--emit-assignment` file would be reloaded.
        let text = ExplicitAssignment::from_map(&graph, &map).to_text();
        let pinned = ExplicitAssignment::parse(&text).expect("emitted text must parse");
        let strategy = PartitionStrategy::explicit(pinned);
        let replayed = strategy
            .build(&graph, workers)
            .expect("explicit map must build");
        for v in graph.vertex_indices() {
            assert_eq!(
                map.worker_of(v),
                replayed.worker_of(v),
                "{pname}: explicit replay moved a vertex"
            );
        }
        let got = icm_fingerprint(&graph, &bfs, &icm_cfg(strategy, workers));
        assert_eq!(
            got, baseline,
            "{pname}: explicit placement diverged from hash/4"
        );
    }
}

/// The VCM recoverable path composes with non-hash placement too. Runs
/// on the long profile — the skew snapshot converges before the fault
/// step, so the panic would never fire there.
#[test]
fn faulted_vcm_runs_under_temporal_balance_recover_to_clean_hash_digest() {
    let params = profile_long();
    let graph = Arc::new(generate(&params));
    let topo = vcm_topology(&graph, &params);
    let program = Arc::new(VcmBfs {
        source: source(&graph),
    });
    let clean = try_run_vcm(
        &topo,
        Arc::clone(&program),
        &vcm_cfg(PartitionStrategy::Hash, 4),
    )
    .expect("clean VCM run must succeed");
    let baseline = (vcm_digest(clean.states), inv_counters(&clean.metrics));
    let cfg = VcmConfig {
        fault_plan: Some(FaultPlan::panic_at(1, 2)),
        ..vcm_cfg(PartitionStrategy::TemporalBalance, 4)
    };
    let r = try_run_vcm_recoverable(&topo, Arc::clone(&program), &cfg, &RecoveryConfig::every(2))
        .expect("recoverable VCM run must converge");
    assert_eq!(
        (vcm_digest(r.states), inv_counters(&r.metrics)),
        baseline,
        "faulted temporal-balance VCM run diverged from clean hash"
    );
    assert_eq!(r.metrics.recovery.rollbacks, 1);
}
