//! Partition quality measurement.
//!
//! [`stats`] answers, for one placement of one graph: how even are the
//! vertex counts, how even is the *temporal* work, how many edges cross
//! workers, and what fraction of message traffic those crossings should
//! translate into. These are the quantities a partitioner can change;
//! engine result digests, by design, are not among them.

use graphite_bsp::partition::PartitionMap;
use graphite_tgraph::graph::TemporalGraph;

/// Quality report for one `(graph, PartitionMap)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// Worker count of the measured map.
    pub workers: usize,
    /// Vertices covered by the map.
    pub vertices: usize,
    /// Edges in the graph.
    pub edges: usize,
    /// Max-over-mean vertex count: 1.0 is perfect count balance.
    pub balance: f64,
    /// Max-over-mean interval-weighted load (vertex + out-edge lifespan
    /// lengths per worker): 1.0 is perfect temporal balance. This is the
    /// number `TemporalBalance` optimizes and hash partitioning leaves to
    /// chance.
    pub interval_balance: f64,
    /// Edges whose endpoints live on different workers.
    pub cut_edges: usize,
    /// `cut_edges / edges` (0.0 for edge-free graphs).
    pub cut_fraction: f64,
    /// Estimated fraction of message traffic that crosses workers:
    /// lifespan-weighted edge cut, i.e. cut-edge lifespan length over
    /// total edge lifespan length. Scatter emits along an edge for as
    /// long as the edge exists, so weighting the cut by lifespan tracks
    /// `remote_messages / messages_sent` far better than the raw cut.
    pub est_remote_fraction: f64,
}

impl PartitionStats {
    /// Renders the report as aligned `key value` lines (CLI use).
    pub fn render(&self) -> String {
        format!(
            "workers              {}\n\
             vertices             {}\n\
             edges                {}\n\
             balance              {:.4}\n\
             interval_balance     {:.4}\n\
             cut_edges            {}\n\
             cut_fraction         {:.4}\n\
             est_remote_fraction  {:.4}\n",
            self.workers,
            self.vertices,
            self.edges,
            self.balance,
            self.interval_balance,
            self.cut_edges,
            self.cut_fraction,
            self.est_remote_fraction,
        )
    }
}

/// Max-over-mean of a non-negative load vector; 1.0 when empty or zero.
fn max_over_mean(loads: &[u128]) -> f64 {
    let total: u128 = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 1.0;
    }
    let max = *loads.iter().max().unwrap_or(&0) as f64;
    let mean = total as f64 / loads.len() as f64;
    max / mean
}

/// Measures `map` against `graph`.
pub fn stats(graph: &TemporalGraph, map: &PartitionMap) -> PartitionStats {
    let counts: Vec<u128> = map.load().iter().map(|&c| c as u128).collect();
    let interval: Vec<u128> = crate::strategies::interval_loads(graph, map);
    let mut cut_edges = 0usize;
    let mut cut_span = 0u128;
    let mut total_span = 0u128;
    let mut edges = 0usize;
    for (_, e) in graph.edges() {
        edges += 1;
        let span = u128::from(e.lifespan.len().max(1) as u64);
        total_span += span;
        if map.worker_of(e.src) != map.worker_of(e.dst) {
            cut_edges += 1;
            cut_span += span;
        }
    }
    PartitionStats {
        workers: map.workers(),
        vertices: map.len(),
        edges,
        balance: max_over_mean(&counts),
        interval_balance: max_over_mean(&interval),
        cut_edges,
        cut_fraction: if edges == 0 {
            0.0
        } else {
            cut_edges as f64 / edges as f64
        },
        est_remote_fraction: if total_span == 0 {
            0.0
        } else {
            cut_span as f64 / total_span as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionStrategy;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::{EdgeId, VertexId};
    use graphite_tgraph::time::Interval;

    fn ring(n: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            b.add_vertex(VertexId(i), Interval::new(0, 10)).unwrap();
        }
        for i in 0..n {
            b.add_edge(
                EdgeId(i),
                VertexId(i),
                VertexId((i + 1) % n),
                Interval::new(0, 10),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn single_worker_has_perfect_stats() {
        let g = ring(16);
        let p = PartitionStrategy::Hash.build(&g, 1).unwrap();
        let s = stats(&g, &p);
        assert_eq!(s.workers, 1);
        assert_eq!(s.vertices, 16);
        assert_eq!(s.edges, 16);
        assert_eq!(s.cut_edges, 0);
        assert!((s.balance - 1.0).abs() < 1e-12);
        assert!((s.interval_balance - 1.0).abs() < 1e-12);
        assert!(s.est_remote_fraction == 0.0);
    }

    #[test]
    fn chunked_cuts_fewer_ring_edges_than_hash() {
        let g = ring(64);
        let hash = PartitionStrategy::Hash.build(&g, 4).unwrap();
        let chunk = PartitionStrategy::Chunked.build(&g, 4).unwrap();
        let sh = stats(&g, &hash);
        let sc = stats(&g, &chunk);
        // A ring chunked into 4 contiguous arcs cuts exactly 4 edges.
        assert_eq!(sc.cut_edges, 4);
        assert!(sc.cut_edges < sh.cut_edges, "hash cut {}", sh.cut_edges);
        assert!(sc.est_remote_fraction < sh.est_remote_fraction);
    }

    #[test]
    fn render_mentions_every_field() {
        let g = ring(8);
        let p = PartitionStrategy::Chunked.build(&g, 2).unwrap();
        let r = stats(&g, &p).render();
        for key in [
            "workers",
            "vertices",
            "edges",
            "balance",
            "interval_balance",
            "cut_edges",
            "cut_fraction",
            "est_remote_fraction",
        ] {
            assert!(r.contains(key), "missing {key} in:\n{r}");
        }
    }
}
