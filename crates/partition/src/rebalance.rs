//! Trace-driven repartitioning: turn observed per-worker compute skew
//! from a prior run into a better placement.
//!
//! The structured-trace layer (`graphite-trace/1`, DESIGN.md §12) records
//! per-worker compute nanoseconds every superstep. Summed over a run,
//! those totals say how the *actual* cost of the current placement was
//! distributed. [`rebalance`] spreads each worker's observed cost over
//! the vertices it owned — proportional to their temporal weight, which is
//! the best stationary predictor we have — and then re-packs vertices
//! greedily (heaviest first, onto the lightest worker). The result is a
//! recommendation, not a mandate: the caller decides whether to adopt it
//! for the next run.
//!
//! The procedure is seeded and deterministic: identical `(graph, current
//! placement, observed loads, seed)` always produce the identical
//! recommended assignment, so reports are reproducible and testable. The
//! seed only perturbs the order of *exactly tied* vertices.

use graphite_bsp::error::BspError;
use graphite_bsp::partition::{splitmix64, PartitionMap};
use graphite_tgraph::graph::TemporalGraph;

/// Recommends a new assignment over `workers` workers from the per-worker
/// cost observations of a prior run under `current`.
///
/// `observed` holds one non-negative cost per *current* worker (typically
/// summed compute-ns from a `graphite-trace/1` run; any consistent unit
/// works — only ratios matter). Each vertex inherits a share of its
/// worker's observed cost proportional to its temporal weight, and the
/// weighted vertices are re-packed by longest-processing-time greedy.
///
/// # Errors
///
/// [`BspError::Config`] when `observed` does not have one entry per
/// current worker, any entry is negative or non-finite, or `workers` is
/// out of range for a partition map.
pub fn rebalance(
    graph: &TemporalGraph,
    current: &PartitionMap,
    observed: &[f64],
    workers: usize,
    seed: u64,
) -> Result<PartitionMap, BspError> {
    if observed.len() != current.workers() {
        return Err(BspError::Config {
            detail: format!(
                "{} observed load(s) supplied for {} current worker(s)",
                observed.len(),
                current.workers()
            ),
        });
    }
    if let Some(bad) = observed.iter().find(|c| !c.is_finite() || **c < 0.0) {
        return Err(BspError::Config {
            detail: format!("observed loads must be finite and non-negative, got {bad}"),
        });
    }
    // Temporal weight of each current worker, to apportion observed cost.
    let mut worker_weight = vec![0u128; current.workers()];
    for v in graph.vertex_indices() {
        worker_weight[current.worker_of(v)] += u128::from(graph.vertex_temporal_weight(v));
    }
    // Estimated per-vertex cost under the observation. Workers that
    // reported zero cost (or owned nothing) fall back to temporal weight
    // alone so their vertices still pack sensibly.
    let mut costed: Vec<(f64, u64, u32)> = graph
        .vertex_indices()
        .map(|v| {
            let w = current.worker_of(v);
            let weight = graph.vertex_temporal_weight(v) as f64;
            let denom = worker_weight[w] as f64;
            let cost = if observed[w] > 0.0 && denom > 0.0 {
                observed[w] * weight / denom
            } else {
                weight
            };
            (cost, splitmix64(seed ^ u64::from(v.0)), v.0)
        })
        .collect();
    // Heaviest first; exact cost ties are ordered by the seeded hash (and
    // finally by index, so the full order is total and reproducible).
    costed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut loads = vec![0f64; workers];
    let mut assignment = vec![0u16; graph.num_vertices()];
    for (cost, _, v) in costed {
        let w = (0..workers)
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
            .unwrap_or_default();
        assignment[v as usize] = w as u16;
        loads[w] += cost;
    }
    PartitionMap::from_assignment(assignment, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::interval_loads;
    use crate::PartitionStrategy;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::{TemporalGraph, VertexId};
    use graphite_tgraph::time::Interval;

    fn graph(n: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            // Lifespans of wildly different lengths.
            let len = 1 + (i % 7) * (i % 7) * 10;
            b.add_vertex(VertexId(i), Interval::new(0, 1 + len as i64))
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn same_inputs_same_recommendation() {
        let g = graph(120);
        let current = PartitionStrategy::Hash.build(&g, 4).unwrap();
        let observed = vec![9.0e9, 1.0e9, 1.1e9, 0.9e9];
        let a = rebalance(&g, &current, &observed, 4, 42).unwrap();
        let b = rebalance(&g, &current, &observed, 4, 42).unwrap();
        for v in g.vertex_indices() {
            assert_eq!(a.worker_of(v), b.worker_of(v));
        }
    }

    #[test]
    fn rebalancing_skewed_observations_evens_the_load() {
        let g = graph(120);
        let current = PartitionStrategy::Hash.build(&g, 4).unwrap();
        // Worker 0 was observed 9x slower than the rest.
        let observed = vec![9.0e9, 1.0e9, 1.0e9, 1.0e9];
        let next = rebalance(&g, &current, &observed, 4, 7).unwrap();
        // The recommendation must spread worker 0's old vertices out:
        // projected cost spread under the model is near-uniform.
        let spread = |loads: &[u128]| {
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            (max - min) as f64 / max.max(1) as f64
        };
        // Interval loads are our cost proxy; they should not be worse
        // than the hash baseline's.
        assert!(spread(&interval_loads(&g, &next)) <= spread(&interval_loads(&g, &current)));
    }

    #[test]
    fn shape_mismatch_and_bad_loads_are_config_errors() {
        let g = graph(10);
        let current = PartitionStrategy::Hash.build(&g, 2).unwrap();
        assert!(rebalance(&g, &current, &[1.0], 2, 0).is_err());
        assert!(rebalance(&g, &current, &[1.0, f64::NAN], 2, 0).is_err());
        assert!(rebalance(&g, &current, &[1.0, -2.0], 2, 0).is_err());
        // Worker-count change is allowed: recommend for 3 from a 2-run.
        let widened = rebalance(&g, &current, &[1.0, 1.0], 3, 0).unwrap();
        assert_eq!(widened.workers(), 3);
    }
}
