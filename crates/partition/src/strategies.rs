//! The in-tree placement strategies.
//!
//! All strategies are deterministic functions of `(graph, workers)`:
//! vertices are streamed in dense `VIdx` order (load order is already
//! canonicalized by the builder), scores use integer arithmetic, and every
//! tie breaks toward the lowest worker index. No ambient randomness, no
//! unordered iteration. The [`ExplicitPartitioner`] is trivially
//! deterministic — it replays a pinned assignment.

use crate::Partitioner;
use graphite_bsp::error::BspError;
use graphite_bsp::partition::PartitionMap;
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::collections::BTreeMap;

/// Splitmix64 of the external vertex id, modulo workers — bit-identical
/// to the placement the BSP substrate has always used, so it is the
/// compatibility baseline every other strategy is measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        PartitionMap::hash(graph, workers)
    }
}

/// Contiguous `VIdx` ranges of near-equal size: the first `n % workers`
/// workers own one extra vertex. Perfect vertex-count balance and maximal
/// index locality, but oblivious to topology and lifespans — the locality
/// baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkedPartitioner;

impl Partitioner for ChunkedPartitioner {
    fn name(&self) -> &'static str {
        "chunked"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let n = graph.num_vertices();
        let mut assignment = Vec::with_capacity(n);
        let base = n / workers.max(1);
        let extra = n % workers.max(1);
        for w in 0..workers {
            let size = base + usize::from(w < extra);
            assignment.resize(assignment.len() + size, w as u16);
        }
        debug_assert_eq!(assignment.len(), n);
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// Linear deterministic greedy (LDG) streaming partitioner, after
/// Stanton & Kliot: each vertex goes to the worker that already holds the
/// most of its neighbors, discounted by how full that worker is. With
/// capacity `C = ceil(n / workers)` and `size_w` vertices already on `w`,
/// the (integer) score is `(neighbors_on_w + 1) * (C - size_w)`; the
/// lowest-indexed maximal worker wins. The `+ 1` makes isolated vertices
/// prefer emptier workers, which keeps counts balanced without a separate
/// fallback rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct LdgPartitioner;

impl Partitioner for LdgPartitioner {
    fn name(&self) -> &'static str {
        "ldg"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let n = graph.num_vertices();
        let capacity = n.div_ceil(workers.max(1)).max(1) as u64;
        let mut assignment: Vec<u16> = Vec::with_capacity(n);
        let mut sizes = vec![0u64; workers];
        let mut neighbor_hits = vec![0u64; workers];
        for v in graph.vertex_indices() {
            neighbor_hits.fill(0);
            // Both directions: messages flow along out-edges, but placing
            // a vertex near its in-neighbors cuts the same wires.
            for &e in graph.out_edges(v) {
                let u = graph.edge(e).dst;
                if u.idx() < assignment.len() {
                    neighbor_hits[assignment[u.idx()] as usize] += 1;
                }
            }
            for &e in graph.in_edges(v) {
                let u = graph.edge(e).src;
                if u.idx() < assignment.len() {
                    neighbor_hits[assignment[u.idx()] as usize] += 1;
                }
            }
            let mut best_w = 0usize;
            let mut best_score = 0u64;
            for w in 0..workers {
                let score = (neighbor_hits[w] + 1) * capacity.saturating_sub(sizes[w]);
                if score > best_score {
                    best_score = score;
                    best_w = w;
                }
            }
            if best_score == 0 {
                // All workers at capacity (only possible through rounding
                // at the very end of the stream): least-loaded wins.
                best_w = (0..workers).min_by_key(|&w| (sizes[w], w)).unwrap_or(0);
            }
            assignment.push(best_w as u16);
            sizes[best_w] += 1;
        }
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// Balances *interval-weighted* load: each vertex weighs its own lifespan
/// length plus the lifespan lengths of its out-edges
/// ([`TemporalGraph::vertex_temporal_weight`]), and vertices are placed by
/// longest-processing-time greedy — heaviest first, each onto the
/// currently lightest worker. Workers end up with equal temporal work,
/// not equal vertex counts, which is what an interval-centric engine's
/// compute time actually tracks under skewed (bursty, power-law)
/// lifespans.
#[derive(Clone, Copy, Debug, Default)]
pub struct TemporalBalancePartitioner;

impl Partitioner for TemporalBalancePartitioner {
    fn name(&self) -> &'static str {
        "temporal"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let n = graph.num_vertices();
        let mut order: Vec<(u64, u32)> = graph
            .vertex_indices()
            .map(|v| (graph.vertex_temporal_weight(v), v.0))
            .collect();
        // Heaviest first; equal weights keep dense-index order.
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut loads = vec![0u128; workers];
        let mut assignment = vec![0u16; n];
        for (weight, v) in order {
            let w = (0..workers)
                .min_by_key(|&w| (loads[w], w))
                .unwrap_or_default();
            assignment[v as usize] = w as u16;
            loads[w] += u128::from(weight);
        }
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// A pinned external-vid → worker table, the payload of
/// [`crate::PartitionStrategy::Explicit`]. This is how `partition_report
/// --trace` rebalancer output is fed back into a live run: the report
/// emits the recommended assignment as text (`--emit-assignment`), and
/// the CLI / serving layer parses it back into one of these.
///
/// The table may cover a superset of the graph (entries for vids the
/// graph does not contain are ignored at build time), but every vertex of
/// the graph must be covered — a partial table is a configuration error,
/// never a silent fallback placement.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ExplicitAssignment {
    by_vid: BTreeMap<u64, u16>,
}

impl ExplicitAssignment {
    /// Builds a table from `(vid, worker)` pairs; a vid listed twice keeps
    /// the last entry (rebalancer emissions append refinements).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VertexId, u16)>) -> Self {
        ExplicitAssignment {
            by_vid: pairs.into_iter().map(|(v, w)| (v.0, w)).collect(),
        }
    }

    /// Captures an existing [`PartitionMap`] over `graph` — e.g. the
    /// output of [`crate::rebalance::rebalance`] — as a reusable table.
    pub fn from_map(graph: &TemporalGraph, map: &PartitionMap) -> Self {
        ExplicitAssignment {
            by_vid: graph
                .vertex_indices()
                .map(|v| (graph.vertex(v).vid.0, map.worker_of(v) as u16))
                .collect(),
        }
    }

    /// Parses the `--emit-assignment` text format: one `vid worker` pair
    /// per line, `#` starts a comment, blank lines ignored.
    ///
    /// # Errors
    ///
    /// [`BspError::Config`] on any malformed line.
    pub fn parse(text: &str) -> Result<Self, BspError> {
        let mut by_vid = BTreeMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (vid, worker) = match (parts.next(), parts.next(), parts.next()) {
                (Some(v), Some(w), None) => (v, w),
                _ => {
                    return Err(BspError::Config {
                        detail: format!(
                            "assignment line {}: want `vid worker`, got {raw:?}",
                            ln + 1
                        ),
                    })
                }
            };
            let vid: u64 = vid.parse().map_err(|_| BspError::Config {
                detail: format!("assignment line {}: bad vid {vid:?}", ln + 1),
            })?;
            let worker: u16 = worker.parse().map_err(|_| BspError::Config {
                detail: format!("assignment line {}: bad worker {worker:?}", ln + 1),
            })?;
            by_vid.insert(vid, worker);
        }
        Ok(ExplicitAssignment { by_vid })
    }

    /// Renders the table in the format [`ExplicitAssignment::parse`]
    /// accepts, vids ascending.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# graphite explicit assignment: vid worker\n");
        for (vid, worker) in &self.by_vid {
            out.push_str(&format!("{vid} {worker}\n"));
        }
        out
    }

    /// Number of `(vid, worker)` entries.
    pub fn len(&self) -> usize {
        self.by_vid.len()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.by_vid.is_empty()
    }

    /// The minimum worker count this table requires (max worker index
    /// + 1); 0 for an empty table.
    pub fn workers_required(&self) -> usize {
        self.by_vid
            .values()
            .map(|&w| usize::from(w) + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Replays a pinned [`ExplicitAssignment`] — the feedback half of the
/// rebalancing loop (DESIGN.md §13): measure skew with `partition_report
/// --trace`, emit the recommended assignment, run under it.
#[derive(Clone, Debug, Default)]
pub struct ExplicitPartitioner {
    /// The pinned table to replay.
    pub assignment: ExplicitAssignment,
}

impl Partitioner for ExplicitPartitioner {
    fn name(&self) -> &'static str {
        "explicit"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let mut assignment = Vec::with_capacity(graph.num_vertices());
        for v in graph.vertex_indices() {
            let vid = graph.vertex(v).vid;
            let Some(&w) = self.assignment.by_vid.get(&vid.0) else {
                return Err(BspError::Config {
                    detail: format!(
                        "explicit assignment does not cover vertex {} ({} entries)",
                        vid.0,
                        self.assignment.len()
                    ),
                });
            };
            if usize::from(w) >= workers {
                return Err(BspError::Config {
                    detail: format!(
                        "explicit assignment places vertex {} on worker {w}, \
                         but the run has {workers} workers",
                        vid.0
                    ),
                });
            }
            assignment.push(w);
        }
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// Shared helper for tests and stats: per-worker interval weight under an
/// assignment.
pub(crate) fn interval_loads(graph: &TemporalGraph, map: &PartitionMap) -> Vec<u128> {
    let mut loads = vec![0u128; map.workers()];
    for v in graph.vertex_indices() {
        loads[map.worker_of(v)] += u128::from(graph.vertex_temporal_weight(v));
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionStrategy;
    use graphite_bsp::partition::hash_partition;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::{VIdx, VertexId};
    use graphite_tgraph::time::Interval;

    /// A star graph with one long-lived hub and many short-lived leaves:
    /// maximal temporal skew in a tiny package.
    fn skewed_star(leaves: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        b.add_vertex(VertexId(0), Interval::new(0, 1000)).unwrap();
        for i in 1..=leaves {
            b.add_vertex(VertexId(i), Interval::new(0, 2)).unwrap();
            b.add_edge(
                graphite_tgraph::graph::EdgeId(i),
                VertexId(0),
                VertexId(i),
                Interval::new(0, 2),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn every_strategy_is_total_and_deterministic() {
        let g = skewed_star(40);
        for s in PartitionStrategy::ALL {
            for workers in [1usize, 3, 7] {
                let a = s.build(&g, workers).unwrap();
                let b = s.build(&g, workers).unwrap();
                assert_eq!(a.workers(), workers);
                let owned: usize = (0..workers).map(|w| a.owned_count(w)).sum();
                assert_eq!(owned, g.num_vertices(), "{} loses vertices", s.name());
                for v in g.vertex_indices() {
                    assert_eq!(a.worker_of(v), b.worker_of(v), "{} not stable", s.name());
                }
            }
        }
    }

    #[test]
    fn hash_strategy_matches_legacy_placement() {
        let g = skewed_star(25);
        let p = PartitionStrategy::Hash.build(&g, 4).unwrap();
        for v in g.vertex_indices() {
            assert_eq!(p.worker_of(v), hash_partition(g.vertex(v).vid, 4));
        }
    }

    #[test]
    fn chunked_is_contiguous_and_exactly_balanced() {
        let g = skewed_star(10); // 11 vertices
        let p = PartitionStrategy::Chunked.build(&g, 4).unwrap();
        let mut load = p.load();
        // 11 over 4 => sizes 3,3,3,2.
        load.sort_unstable();
        assert_eq!(load, vec![2, 3, 3, 3]);
        // Worker index is non-decreasing in VIdx order (contiguity).
        let seq: Vec<usize> = g.vertex_indices().map(|v| p.worker_of(v)).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]), "{seq:?}");
    }

    #[test]
    fn ldg_respects_capacity_and_prefers_neighbors() {
        let g = skewed_star(39); // 40 vertices, capacity ceil(40/4)=10
        let p = PartitionStrategy::Ldg.build(&g, 4).unwrap();
        for w in 0..4 {
            assert!(p.owned_count(w) <= 10, "worker {w} over capacity");
        }
        // The hub's worker should hold a full share of its leaves.
        let hub_w = p.worker_of(VIdx(0));
        assert!(p.owned_count(hub_w) >= 9);
    }

    #[test]
    fn explicit_replays_pinned_assignments_and_rejects_bad_ones() {
        let g = skewed_star(10); // 11 vertices; LPT over 3 workers uses all 3
        let temporal = PartitionStrategy::TemporalBalance.build(&g, 3).unwrap();
        let table = ExplicitAssignment::from_map(&g, &temporal);
        assert_eq!(table.len(), g.num_vertices());
        assert_eq!(table.workers_required(), 3);

        // Text format round-trips, and the replayed map is bit-identical.
        let parsed = ExplicitAssignment::parse(&table.to_text()).unwrap();
        assert_eq!(table, parsed);
        let replay = PartitionStrategy::explicit(parsed).build(&g, 3).unwrap();
        for v in g.vertex_indices() {
            assert_eq!(replay.worker_of(v), temporal.worker_of(v));
        }

        // Partial coverage is a typed Config error, not a fallback.
        let partial = ExplicitAssignment::from_pairs([(VertexId(0), 0u16)]);
        assert!(matches!(
            PartitionStrategy::explicit(partial).build(&g, 3),
            Err(BspError::Config { .. })
        ));
        // A table needing more workers than the run has is rejected too.
        let oob = ExplicitAssignment::from_map(&g, &temporal);
        assert!(matches!(
            PartitionStrategy::explicit(oob).build(&g, 2),
            Err(BspError::Config { .. })
        ));

        // Malformed text is rejected; comments and blanks are not.
        assert!(ExplicitAssignment::parse("1 2 3").is_err());
        assert!(ExplicitAssignment::parse("x 1").is_err());
        assert!(ExplicitAssignment::parse("1 worker").is_err());
        let empty = ExplicitAssignment::parse("# comment only\n\n").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.workers_required(), 0);
    }

    #[test]
    fn temporal_balance_beats_hash_on_interval_weight() {
        let g = skewed_star(60);
        let workers = 4;
        let spread = |loads: &[u128]| {
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            max - min
        };
        let hash = PartitionStrategy::Hash.build(&g, workers).unwrap();
        let temporal = PartitionStrategy::TemporalBalance
            .build(&g, workers)
            .unwrap();
        let hash_spread = spread(&interval_loads(&g, &hash));
        let temporal_spread = spread(&interval_loads(&g, &temporal));
        assert!(
            temporal_spread < hash_spread,
            "temporal spread {temporal_spread} not better than hash {hash_spread}"
        );
    }
}
