//! The four in-tree placement strategies.
//!
//! All strategies are deterministic functions of `(graph, workers)`:
//! vertices are streamed in dense `VIdx` order (load order is already
//! canonicalized by the builder), scores use integer arithmetic, and every
//! tie breaks toward the lowest worker index. No ambient randomness, no
//! unordered iteration.

use crate::Partitioner;
use graphite_bsp::error::BspError;
use graphite_bsp::partition::PartitionMap;
use graphite_tgraph::graph::TemporalGraph;

/// Splitmix64 of the external vertex id, modulo workers — bit-identical
/// to the placement the BSP substrate has always used, so it is the
/// compatibility baseline every other strategy is measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        PartitionMap::hash(graph, workers)
    }
}

/// Contiguous `VIdx` ranges of near-equal size: the first `n % workers`
/// workers own one extra vertex. Perfect vertex-count balance and maximal
/// index locality, but oblivious to topology and lifespans — the locality
/// baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkedPartitioner;

impl Partitioner for ChunkedPartitioner {
    fn name(&self) -> &'static str {
        "chunked"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let n = graph.num_vertices();
        let mut assignment = Vec::with_capacity(n);
        let base = n / workers.max(1);
        let extra = n % workers.max(1);
        for w in 0..workers {
            let size = base + usize::from(w < extra);
            assignment.resize(assignment.len() + size, w as u16);
        }
        debug_assert_eq!(assignment.len(), n);
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// Linear deterministic greedy (LDG) streaming partitioner, after
/// Stanton & Kliot: each vertex goes to the worker that already holds the
/// most of its neighbors, discounted by how full that worker is. With
/// capacity `C = ceil(n / workers)` and `size_w` vertices already on `w`,
/// the (integer) score is `(neighbors_on_w + 1) * (C - size_w)`; the
/// lowest-indexed maximal worker wins. The `+ 1` makes isolated vertices
/// prefer emptier workers, which keeps counts balanced without a separate
/// fallback rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct LdgPartitioner;

impl Partitioner for LdgPartitioner {
    fn name(&self) -> &'static str {
        "ldg"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let n = graph.num_vertices();
        let capacity = n.div_ceil(workers.max(1)).max(1) as u64;
        let mut assignment: Vec<u16> = Vec::with_capacity(n);
        let mut sizes = vec![0u64; workers];
        let mut neighbor_hits = vec![0u64; workers];
        for v in graph.vertex_indices() {
            neighbor_hits.fill(0);
            // Both directions: messages flow along out-edges, but placing
            // a vertex near its in-neighbors cuts the same wires.
            for &e in graph.out_edges(v) {
                let u = graph.edge(e).dst;
                if u.idx() < assignment.len() {
                    neighbor_hits[assignment[u.idx()] as usize] += 1;
                }
            }
            for &e in graph.in_edges(v) {
                let u = graph.edge(e).src;
                if u.idx() < assignment.len() {
                    neighbor_hits[assignment[u.idx()] as usize] += 1;
                }
            }
            let mut best_w = 0usize;
            let mut best_score = 0u64;
            for w in 0..workers {
                let score = (neighbor_hits[w] + 1) * capacity.saturating_sub(sizes[w]);
                if score > best_score {
                    best_score = score;
                    best_w = w;
                }
            }
            if best_score == 0 {
                // All workers at capacity (only possible through rounding
                // at the very end of the stream): least-loaded wins.
                best_w = (0..workers).min_by_key(|&w| (sizes[w], w)).unwrap_or(0);
            }
            assignment.push(best_w as u16);
            sizes[best_w] += 1;
        }
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// Balances *interval-weighted* load: each vertex weighs its own lifespan
/// length plus the lifespan lengths of its out-edges
/// ([`TemporalGraph::vertex_temporal_weight`]), and vertices are placed by
/// longest-processing-time greedy — heaviest first, each onto the
/// currently lightest worker. Workers end up with equal temporal work,
/// not equal vertex counts, which is what an interval-centric engine's
/// compute time actually tracks under skewed (bursty, power-law)
/// lifespans.
#[derive(Clone, Copy, Debug, Default)]
pub struct TemporalBalancePartitioner;

impl Partitioner for TemporalBalancePartitioner {
    fn name(&self) -> &'static str {
        "temporal"
    }

    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        let n = graph.num_vertices();
        let mut order: Vec<(u64, u32)> = graph
            .vertex_indices()
            .map(|v| (graph.vertex_temporal_weight(v), v.0))
            .collect();
        // Heaviest first; equal weights keep dense-index order.
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut loads = vec![0u128; workers];
        let mut assignment = vec![0u16; n];
        for (weight, v) in order {
            let w = (0..workers)
                .min_by_key(|&w| (loads[w], w))
                .unwrap_or_default();
            assignment[v as usize] = w as u16;
            loads[w] += u128::from(weight);
        }
        PartitionMap::from_assignment(assignment, workers)
    }
}

/// Shared helper for tests and stats: per-worker interval weight under an
/// assignment.
pub(crate) fn interval_loads(graph: &TemporalGraph, map: &PartitionMap) -> Vec<u128> {
    let mut loads = vec![0u128; map.workers()];
    for v in graph.vertex_indices() {
        loads[map.worker_of(v)] += u128::from(graph.vertex_temporal_weight(v));
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionStrategy;
    use graphite_bsp::partition::hash_partition;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::{VIdx, VertexId};
    use graphite_tgraph::time::Interval;

    /// A star graph with one long-lived hub and many short-lived leaves:
    /// maximal temporal skew in a tiny package.
    fn skewed_star(leaves: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        b.add_vertex(VertexId(0), Interval::new(0, 1000)).unwrap();
        for i in 1..=leaves {
            b.add_vertex(VertexId(i), Interval::new(0, 2)).unwrap();
            b.add_edge(
                graphite_tgraph::graph::EdgeId(i),
                VertexId(0),
                VertexId(i),
                Interval::new(0, 2),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn every_strategy_is_total_and_deterministic() {
        let g = skewed_star(40);
        for s in PartitionStrategy::ALL {
            for workers in [1usize, 3, 7] {
                let a = s.build(&g, workers).unwrap();
                let b = s.build(&g, workers).unwrap();
                assert_eq!(a.workers(), workers);
                let owned: usize = (0..workers).map(|w| a.owned_count(w)).sum();
                assert_eq!(owned, g.num_vertices(), "{} loses vertices", s.name());
                for v in g.vertex_indices() {
                    assert_eq!(a.worker_of(v), b.worker_of(v), "{} not stable", s.name());
                }
            }
        }
    }

    #[test]
    fn hash_strategy_matches_legacy_placement() {
        let g = skewed_star(25);
        let p = PartitionStrategy::Hash.build(&g, 4).unwrap();
        for v in g.vertex_indices() {
            assert_eq!(p.worker_of(v), hash_partition(g.vertex(v).vid, 4));
        }
    }

    #[test]
    fn chunked_is_contiguous_and_exactly_balanced() {
        let g = skewed_star(10); // 11 vertices
        let p = PartitionStrategy::Chunked.build(&g, 4).unwrap();
        let mut load = p.load();
        // 11 over 4 => sizes 3,3,3,2.
        load.sort_unstable();
        assert_eq!(load, vec![2, 3, 3, 3]);
        // Worker index is non-decreasing in VIdx order (contiguity).
        let seq: Vec<usize> = g.vertex_indices().map(|v| p.worker_of(v)).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]), "{seq:?}");
    }

    #[test]
    fn ldg_respects_capacity_and_prefers_neighbors() {
        let g = skewed_star(39); // 40 vertices, capacity ceil(40/4)=10
        let p = PartitionStrategy::Ldg.build(&g, 4).unwrap();
        for w in 0..4 {
            assert!(p.owned_count(w) <= 10, "worker {w} over capacity");
        }
        // The hub's worker should hold a full share of its leaves.
        let hub_w = p.worker_of(VIdx(0));
        assert!(p.owned_count(hub_w) >= 9);
    }

    #[test]
    fn temporal_balance_beats_hash_on_interval_weight() {
        let g = skewed_star(60);
        let workers = 4;
        let spread = |loads: &[u128]| {
            let max = *loads.iter().max().unwrap();
            let min = *loads.iter().min().unwrap();
            max - min
        };
        let hash = PartitionStrategy::Hash.build(&g, workers).unwrap();
        let temporal = PartitionStrategy::TemporalBalance
            .build(&g, workers)
            .unwrap();
        let hash_spread = spread(&interval_loads(&g, &hash));
        let temporal_spread = spread(&interval_loads(&g, &temporal));
        assert!(
            temporal_spread < hash_spread,
            "temporal spread {temporal_spread} not better than hash {hash_spread}"
        );
    }
}
