//! `graphite-part`: pluggable temporal-aware vertex partitioning.
//!
//! The paper runs every platform under Giraph's default hash partitioner
//! (Sec. VII-A4), and that remains the default here — but placement is
//! now a subsystem, not a constant. A [`Partitioner`] produces the same
//! [`PartitionMap`] the BSP substrate has always consumed, so strategies
//! are swappable without touching the engines, and the engine results are
//! *placement-invariant by construction*: final states are keyed by
//! external [`graphite_tgraph::graph::VertexId`] in ordered maps, and
//! every deterministic counter folds commutatively across workers
//! (DESIGN.md §13).
//!
//! Four strategies ship in-tree:
//!
//! | strategy | balances | optimizes | use when |
//! |---|---|---|---|
//! | [`HashPartitioner`] | vertex count (statistically) | nothing | compatibility baseline |
//! | [`ChunkedPartitioner`] | vertex count (exactly) | index locality | locality baseline |
//! | [`LdgPartitioner`] | vertex count (capped) | neighbor affinity / edge cut | message-heavy workloads |
//! | [`TemporalBalancePartitioner`] | interval-weighted load | temporal skew | bursty / power-law lifespans |
//!
//! [`stats()`] measures what a placement actually achieved (balance
//! factor, edge cut, interval-weighted balance, estimated cross-worker
//! message fraction), and [`rebalance()`] closes the loop with the structured-trace
//! layer: observed per-worker compute skew from a `graphite-trace/1` run
//! drives a seeded, deterministic re-assignment.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod rebalance;
pub mod stats;
pub mod strategies;

pub use rebalance::rebalance;
pub use stats::{stats, PartitionStats};
use std::sync::Arc;
pub use strategies::{
    ChunkedPartitioner, ExplicitAssignment, ExplicitPartitioner, HashPartitioner, LdgPartitioner,
    TemporalBalancePartitioner,
};

use graphite_bsp::error::BspError;
use graphite_bsp::partition::PartitionMap;
use graphite_tgraph::graph::TemporalGraph;

/// A vertex-placement strategy: consumes a graph and a worker count,
/// produces the dense vertex → worker map the BSP substrate routes by.
///
/// Implementations must be deterministic: the same graph and worker count
/// always yield the same assignment (no ambient randomness, no iteration
/// over unordered containers). Engine result digests are independent of
/// *which* assignment is produced, but reproducible placement is what
/// makes recorded benchmarks and the digest-invariance matrix meaningful.
pub trait Partitioner {
    /// Stable lower-case name (CLI / env / bench labels).
    fn name(&self) -> &'static str;

    /// Computes the assignment.
    ///
    /// # Errors
    ///
    /// [`BspError::Config`] when `workers` is zero or exceeds the `u16`
    /// worker-index wire encoding.
    fn partition(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError>;
}

/// Strategy selector threaded through `IcmConfig`/`VcmConfig`, the
/// algorithm registry's `RunOpts`, and the CLI (`GRAPHITE_PARTITION`).
///
/// Not `Copy` since the [`PartitionStrategy::Explicit`] variant carries a
/// shared assignment table; configs clone it, which is an `Arc` bump at
/// worst.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionStrategy {
    /// Splitmix64 of the external vertex id, modulo workers — the paper's
    /// (and Giraph's) default, and the compatibility baseline.
    #[default]
    Hash,
    /// Contiguous `VIdx` ranges of near-equal size — the locality
    /// baseline.
    Chunked,
    /// Linear deterministic greedy streaming partitioner: each vertex goes
    /// to the worker holding most of its neighbors, discounted by how full
    /// that worker already is.
    Ldg,
    /// Balances *interval-weighted* load — the sum of vertex and out-edge
    /// lifespan lengths per worker — so workers receive equal temporal
    /// work, not equal vertex counts.
    TemporalBalance,
    /// Replays a pinned external-vid → worker table — typically the
    /// rebalancer recommendation emitted by `partition_report
    /// --emit-assignment` — closing the measure → rebalance → run loop.
    /// Excluded from [`PartitionStrategy::ALL`] (it needs a payload) and
    /// not constructible via [`PartitionStrategy::parse`]; load a table
    /// with [`ExplicitAssignment::parse`] instead.
    Explicit(Arc<ExplicitAssignment>),
}

impl PartitionStrategy {
    /// Every *parameter-free* strategy, in documentation order. `Explicit`
    /// is excluded: it carries a payload, so matrices that sweep `ALL`
    /// construct it separately from a concrete assignment.
    pub const ALL: [PartitionStrategy; 4] = [
        PartitionStrategy::Hash,
        PartitionStrategy::Chunked,
        PartitionStrategy::Ldg,
        PartitionStrategy::TemporalBalance,
    ];

    /// Stable lower-case name (CLI / env / bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::Chunked => "chunked",
            PartitionStrategy::Ldg => "ldg",
            PartitionStrategy::TemporalBalance => "temporal",
            PartitionStrategy::Explicit(_) => "explicit",
        }
    }

    /// Parses a strategy name as accepted by the CLI and
    /// `GRAPHITE_PARTITION` (case-insensitive; `temporal-balance` and
    /// `temporal_balance` are aliases for `temporal`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "hash" => Some(PartitionStrategy::Hash),
            "chunked" | "chunk" => Some(PartitionStrategy::Chunked),
            "ldg" => Some(PartitionStrategy::Ldg),
            "temporal" | "temporal-balance" | "temporal_balance" => {
                Some(PartitionStrategy::TemporalBalance)
            }
            _ => None,
        }
    }

    /// Reads `GRAPHITE_PARTITION` from the environment; unset, empty, or
    /// unrecognized values fall back to [`PartitionStrategy::Hash`] (the
    /// paper's default) so existing runs are unaffected.
    pub fn from_env() -> Self {
        std::env::var("GRAPHITE_PARTITION")
            .ok()
            .as_deref()
            .and_then(Self::parse)
            .unwrap_or_default()
    }

    /// The boxed [`Partitioner`] implementing this strategy.
    pub fn partitioner(&self) -> Box<dyn Partitioner> {
        match self {
            PartitionStrategy::Hash => Box::new(HashPartitioner),
            PartitionStrategy::Chunked => Box::new(ChunkedPartitioner),
            PartitionStrategy::Ldg => Box::new(LdgPartitioner),
            PartitionStrategy::TemporalBalance => Box::new(TemporalBalancePartitioner),
            PartitionStrategy::Explicit(table) => Box::new(ExplicitPartitioner {
                assignment: (**table).clone(),
            }),
        }
    }

    /// Wraps an assignment table as a strategy (convenience constructor).
    pub fn explicit(assignment: ExplicitAssignment) -> Self {
        PartitionStrategy::Explicit(Arc::new(assignment))
    }

    /// Computes the assignment for this strategy (dispatch convenience).
    ///
    /// # Errors
    ///
    /// See [`Partitioner::partition`].
    pub fn build(&self, graph: &TemporalGraph, workers: usize) -> Result<PartitionMap, BspError> {
        self.partitioner().partition(graph, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for s in PartitionStrategy::ALL {
            assert_eq!(PartitionStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(
            PartitionStrategy::parse("TEMPORAL-BALANCE"),
            Some(PartitionStrategy::TemporalBalance)
        );
        assert_eq!(PartitionStrategy::parse("metis"), None);
        assert_eq!(PartitionStrategy::default(), PartitionStrategy::Hash);
    }

    #[test]
    fn partitioner_names_match_enum_names() {
        for s in PartitionStrategy::ALL {
            assert_eq!(s.partitioner().name(), s.name());
        }
    }
}
