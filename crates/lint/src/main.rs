//! `graphite-lint` — repo-specific source-level lints (DESIGN.md §10).
//!
//! Six rules that rustc/clippy cannot express, each protecting one of the
//! reproduction's determinism or robustness invariants:
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(` in `bsp`/`icm` non-test
//!   code: engine failures must surface as [`BspError`]-style values, not
//!   panics inside the barrier protocol.
//! * `hash-iteration` — no iteration over `HashMap`/`HashSet` in
//!   `bsp`/`icm` non-test code: hasher-dependent order feeding message
//!   emission or result collection silently breaks bit-identical results.
//! * `no-raw-interval` — no `Interval { .. }` struct literals outside
//!   `tgraph::time`: construction must go through `Interval::new` /
//!   `try_new`, which enforce the half-open non-empty invariant.
//! * `wall-clock` — no `Instant::now()` / `SystemTime::now()` / a
//!   `time::Instant` import outside the blessed timing modules
//!   (`bsp::metrics`, the `bsp::trace` sink it feeds, and
//!   `bench::timing`): timing belongs to metrics; clock reads anywhere
//!   else are invisible nondeterminism.
//! * `fault-isolation` — no `cfg`-gating of fault-injection hooks in
//!   `bsp`/`icm` code: faults are `FaultPlan` *configuration*, evaluated
//!   by release and debug builds alike, so the recovery layer is tested
//!   against exactly the code that ships. A `#[cfg(test)]`-only hook
//!   would make fault tests exercise a different engine. Unlike the
//!   other rules this one is checked inside test-gated code too — that
//!   is where the leakage would hide.
//! * `worker-assignment` — no `% workers`-style vertex-to-worker
//!   arithmetic outside `graphite-part` and `bsp::partition`: placement
//!   is a pluggable subsystem (DESIGN.md §13), and an ad-hoc modulo in an
//!   engine or algorithm would silently bypass the configured
//!   `PartitionStrategy`, breaking the digest-invariance matrix's
//!   guarantee that strategy selection is the *only* placement input.
//!
//! A violation line (or the line directly above it) may carry a
//! `lint:allow(<rule>)` comment with a justification to opt out.
//!
//! Usage: `cargo run -p graphite-lint` from the workspace root scans
//! `src/` and every `crates/*/src/` with per-path rule scoping; passing
//! explicit file or directory arguments scans those with **all** rules
//! active (used by the negative-fixture test).
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on I/O
//! errors.
//!
//! [`BspError`]: ../graphite_bsp/error/enum.BspError.html

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rule {
    NoUnwrap,
    HashIteration,
    NoRawInterval,
    WallClock,
    FaultIsolation,
    WorkerAssignment,
}

impl Rule {
    const ALL: [Rule; 6] = [
        Rule::NoUnwrap,
        Rule::HashIteration,
        Rule::NoRawInterval,
        Rule::WallClock,
        Rule::FaultIsolation,
        Rule::WorkerAssignment,
    ];

    fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::HashIteration => "hash-iteration",
            Rule::NoRawInterval => "no-raw-interval",
            Rule::WallClock => "wall-clock",
            Rule::FaultIsolation => "fault-isolation",
            Rule::WorkerAssignment => "worker-assignment",
        }
    }

    fn message(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "unwrap()/expect() in engine code: surface failures as typed errors",
            Rule::HashIteration => {
                "iteration over a hash container: hasher order is nondeterministic"
            }
            Rule::NoRawInterval => {
                "raw `Interval { .. }` literal: construct via Interval::new/try_new"
            }
            Rule::WallClock => {
                "wall-clock access outside the blessed timing modules \
                 (bsp::metrics, bsp::trace, bench::timing): route through metrics::now()"
            }
            Rule::FaultIsolation => {
                "cfg-gated fault hook: fault injection is FaultPlan configuration, \
                 active in every build, never a compile-time feature"
            }
            Rule::WorkerAssignment => {
                "ad-hoc `% workers` placement arithmetic: vertex-to-worker \
                 assignment belongs to graphite-part / bsp::partition only"
            }
        }
    }

    /// Whether the rule also applies inside `#[cfg(test)]`-gated code.
    /// `fault-isolation` must: a `#[cfg(test)]`-gated fault hook is
    /// exactly the leakage it exists to catch.
    fn checks_test_code(self) -> bool {
        self == Rule::FaultIsolation
    }
}

struct Violation {
    path: PathBuf,
    line: usize,
    rule: Rule,
    snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.rule.message(),
            self.snippet.trim()
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<(PathBuf, Vec<Rule>)> = Vec::new();
    let mut io_error = false;

    if args.is_empty() {
        // Workspace mode: src/ plus every crates/*/src/, with per-path
        // rule scoping.
        let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut roots = vec![root.join("src")];
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            for e in entries.flatten() {
                roots.push(e.path().join("src"));
            }
        }
        for dir in roots {
            if dir.is_dir() {
                collect_rs_files(&dir, &mut |p| {
                    let rules = rules_for(&p);
                    if !rules.is_empty() {
                        files.push((p, rules));
                    }
                });
            }
        }
    } else {
        // Explicit-path mode: all rules on everything named.
        for a in &args {
            let p = PathBuf::from(a);
            if p.is_dir() {
                collect_rs_files(&p, &mut |f| files.push((f, Rule::ALL.to_vec())));
            } else if p.is_file() {
                files.push((p, Rule::ALL.to_vec()));
            } else {
                eprintln!("graphite-lint: no such path: {a}");
                io_error = true;
            }
        }
    }

    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for (path, rules) in files {
        match std::fs::read_to_string(&path) {
            Ok(source) => {
                scanned += 1;
                lint_file(&path, &source, &rules, &mut violations);
            }
            Err(e) => {
                eprintln!("graphite-lint: cannot read {}: {e}", path.display());
                io_error = true;
            }
        }
    }

    for v in &violations {
        println!("{v}");
    }
    if io_error {
        ExitCode::from(2)
    } else if violations.is_empty() {
        println!("graphite-lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "graphite-lint: {} violation(s) in {scanned} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Which rules apply to `path` in workspace mode.
fn rules_for(path: &Path) -> Vec<Rule> {
    let p = path.to_string_lossy().replace('\\', "/");
    let mut rules = Vec::new();
    if p.contains("crates/bsp/src/") || p.contains("crates/icm/src/") {
        rules.push(Rule::NoUnwrap);
        rules.push(Rule::HashIteration);
        rules.push(Rule::FaultIsolation);
    }
    if !p.ends_with("crates/tgraph/src/time.rs") {
        rules.push(Rule::NoRawInterval);
    }
    // Timing is confined to three blessed modules: bsp::metrics (the one
    // sanctioned clock read, marked with its own lint:allow), bsp::trace
    // (the span sink that consumes it), and bench::timing (the bench
    // harness built on it). Everything else is scanned.
    let timing_module = p.ends_with("crates/bsp/src/metrics.rs")
        || p.ends_with("crates/bsp/src/trace.rs")
        || p.ends_with("crates/bench/src/timing.rs");
    if !timing_module {
        rules.push(Rule::WallClock);
    }
    // Vertex placement is owned by two modules: the graphite-part crate
    // (the strategies) and bsp::partition (the map they produce). A
    // `% workers` anywhere else is a placement decision smuggled past the
    // configured strategy.
    let placement_module =
        p.contains("crates/partition/src/") || p.ends_with("crates/bsp/src/partition.rs");
    if !placement_module {
        rules.push(Rule::WorkerAssignment);
    }
    rules
}

fn collect_rs_files(dir: &Path, sink: &mut impl FnMut(PathBuf)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs_files(&p, sink);
        } else if p.extension().is_some_and(|x| x == "rs") {
            sink(p);
        }
    }
}

fn lint_file(path: &Path, source: &str, rules: &[Rule], out: &mut Vec<Violation>) {
    let raw: Vec<&str> = source.split('\n').collect();
    let code = strip_noncode(source);
    debug_assert_eq!(raw.len(), code.len());
    let in_test = test_mask(&code);

    // Pass 1: names bound to hash containers (fields and locals).
    let hash_names: Vec<String> = if rules.contains(&Rule::HashIteration) {
        collect_hash_names(&code)
    } else {
        Vec::new()
    };

    for (i, code_line) in code.iter().enumerate() {
        for &rule in rules {
            if in_test[i] && !rule.checks_test_code() {
                continue;
            }
            let hit = match rule {
                Rule::NoUnwrap => code_line.contains(".unwrap()") || code_line.contains(".expect("),
                Rule::HashIteration => iterates_hash(code_line, &hash_names),
                Rule::NoRawInterval => has_raw_interval_literal(code_line),
                Rule::WallClock => {
                    code_line.contains("Instant::now(")
                        || code_line.contains("SystemTime::now(")
                        || code_line.contains("time::Instant")
                }
                Rule::FaultIsolation => fault_gated(&code, i),
                Rule::WorkerAssignment => computes_worker_modulo(code_line),
            };
            if hit && !allowed(&raw, i, rule) {
                out.push(Violation {
                    path: path.to_path_buf(),
                    line: i + 1,
                    rule,
                    snippet: raw[i].to_string(),
                });
            }
        }
    }
}

/// `lint:allow(<rule>)` on the violation line, or anywhere in the
/// contiguous block of pure-comment lines directly above it (so a
/// justification can span several comment lines). A trailing allow on the
/// previous *code* line only excuses that line, not this one.
fn allowed(raw: &[&str], line: usize, rule: Rule) -> bool {
    let marker = format!("lint:allow({})", rule.name());
    if raw[line].contains(&marker) {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let above = raw[i].trim_start();
        if !above.starts_with("//") {
            return false;
        }
        if above.contains(&marker) {
            return true;
        }
    }
    false
}

/// `Interval` immediately followed by `{` (a struct literal or struct
/// pattern), with a word boundary on the left so `IntervalPartition {`
/// etc. don't match. Type positions that legitimately precede a body
/// brace — `-> Interval {` and `impl [Wire for] Interval {` — are
/// excluded.
fn has_raw_interval_literal(code_line: &str) -> bool {
    let bytes = code_line.as_bytes();
    let mut from = 0;
    while let Some(off) = code_line[from..].find("Interval") {
        let start = from + off;
        let end = start + "Interval".len();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let right = code_line[end..].trim_start();
        if left_ok && right.starts_with('{') {
            let before = code_line[..start].trim_end();
            let type_position =
                before.ends_with("->") || before.ends_with("for") || before.ends_with("impl");
            if !type_position {
                return true;
            }
        }
        from = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// A `%` whose right operand is a worker count: `% workers`,
/// `% self.workers`, `% config.workers.max(1)`, `% n_workers`, … — the
/// shape of ad-hoc vertex placement. Percent signs in stripped strings
/// and comments never reach this function.
fn computes_worker_modulo(code_line: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code_line[from..].find('%') {
        let at = from + off;
        from = at + 1;
        // Walk the path expression after the operator: identifiers
        // separated by `.`, any segment naming a worker count is a hit.
        let rest = code_line[at + 1..].trim_start();
        for segment in rest
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
            .next()
            .unwrap_or("")
            .split('.')
        {
            if segment == "workers" || segment.ends_with("_workers") {
                return true;
            }
        }
    }
    false
}

/// Identifiers that mark fault-injection hook code.
const FAULT_IDENTS: [&str; 7] = [
    "FaultPlan",
    "FaultInjector",
    "FaultKind",
    "FaultMode",
    "fault_plan",
    "arm_panic",
    "arm_corruption",
];

/// Is line `i` a fault hook placed behind conditional compilation? A hit
/// needs both: the line mentions a fault-injection identifier, and it is
/// gated — `cfg!(` on the line itself, or a `#[cfg(` attribute directly
/// above (looking past other attributes, blank lines and blanked-out
/// comments, which is how attribute stacks read).
fn fault_gated(code: &[String], i: usize) -> bool {
    let line = &code[i];
    if !FAULT_IDENTS.iter().any(|id| line.contains(id)) {
        return false;
    }
    if line.contains("cfg!(") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = code[j].trim();
        if above.starts_with("#[cfg(") {
            return true;
        }
        if above.is_empty() || above.starts_with("#[") {
            continue;
        }
        return false;
    }
    false
}

/// Names declared with a hash-container type in this file: struct fields
/// and `let` bindings of the form `name: HashMap<..>` / `name: HashSet<..>`
/// / `let [mut] name = HashMap::new()` etc.
fn collect_hash_names(code: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for line in code {
        for marker in ["HashMap", "HashSet"] {
            let Some(pos) = line.find(marker) else {
                continue;
            };
            let before = line[..pos].trim_end();
            let name = if let Some(stripped) = before.strip_suffix(':') {
                // `name: HashMap<...>` (field or typed let).
                last_ident(stripped)
            } else if let Some(stripped) = before.strip_suffix('=') {
                // `let [mut] name = HashMap::new()`.
                last_ident(stripped)
            } else {
                None
            };
            if let Some(n) = name {
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
    }
    names
}

fn last_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let end = s.len();
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let ident = &s[start..end];
    let first = ident.chars().next()?;
    (first.is_ascii_alphabetic() || first == '_').then(|| ident.to_string())
}

const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".values(",
    ".values_mut(",
    ".keys(",
    ".drain(",
    ".into_iter()",
    ".into_values(",
    ".into_keys(",
];

/// Does `code_line` iterate one of the hash-container names — either via
/// an iteration method call or as the tail expression of a `for … in` loop?
fn iterates_hash(code_line: &str, hash_names: &[String]) -> bool {
    for name in hash_names {
        // `name.iter()`, `self.name.values()`, …
        for m in ITER_METHODS {
            let needle = format!("{name}{m}");
            if code_line.contains(&needle) {
                return true;
            }
        }
        // `for x in name {` / `for (k, v) in self.name` / `in name.x` —
        // direct IntoIterator use of the container.
        if let Some(pos) = code_line.find(" in ") {
            let tail = &code_line[pos + 4..];
            if let Some(np) = tail.find(name.as_str()) {
                let bytes = tail.as_bytes();
                let left_ok = np == 0 || !is_ident_char(bytes[np - 1]);
                let after = np + name.len();
                let right_ok = after >= tail.len() || !is_ident_char(bytes[after]);
                // Method calls on the name were handled above; a bare use
                // (or `.clone()` etc.) of the container in a for-loop head
                // still iterates it.
                if left_ok && right_ok && code_line.trim_start().starts_with("for ") {
                    return true;
                }
            }
        }
    }
    false
}

/// Per-line flags: is the line inside a `#[cfg(test)]`-gated module?
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let line = code[i].trim_start();
        if line.starts_with("#[cfg(test)") || line.starts_with("#[cfg(all(test") {
            // Find the gated item; only `mod` bodies are skipped wholesale.
            let mut j = i;
            let mut depth = 0i64;
            let mut started = false;
            while j < code.len() {
                mask[j] = true;
                depth += brace_delta(&code[j]);
                if code[j].contains('{') {
                    started = true;
                }
                if started && depth <= 0 {
                    break;
                }
                // A gated `use`/expression without braces ends at `;`.
                if !started && code[j].contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn brace_delta(code_line: &str) -> i64 {
    let mut d = 0i64;
    for b in code_line.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Replaces comments, string literals and char literals with spaces,
/// preserving line structure, so rule patterns only ever match real code.
fn strip_noncode(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    let mut cur = String::new();
    let b = source.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    cur.push(' ');
                    i += 1;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    cur.push(' ');
                    i += 1;
                } else if c == b'"' {
                    st = St::Str;
                    cur.push(' ');
                } else if c == b'r' && matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')) {
                    // Possible raw string: r" or r#...#".
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        cur.push(' ');
                        i = j;
                    } else {
                        cur.push(c as char);
                    }
                } else if c == b'\'' {
                    // Char literal vs. lifetime: a lifetime is `'ident` not
                    // followed by a closing quote; a char literal closes
                    // within a few bytes.
                    let close = (1..=4).find(|&k| {
                        b.get(i + k) == Some(&b'\'') && !(k == 1 && b.get(i + 1) == Some(&b'\\'))
                    });
                    let escaped = b.get(i + 1) == Some(&b'\\');
                    if close.is_some() || escaped {
                        st = St::Char;
                        cur.push(' ');
                    } else {
                        cur.push(c as char); // lifetime tick
                    }
                } else {
                    cur.push(c as char);
                }
            }
            St::LineComment => cur.push(' '),
            St::BlockComment(depth) => {
                cur.push(' ');
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    cur.push(' ');
                    i += 1;
                    if depth == 1 {
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    cur.push(' ');
                    i += 1;
                    st = St::BlockComment(depth + 1);
                }
            }
            St::Str => {
                cur.push(' ');
                if c == b'\\' {
                    if b.get(i + 1) != Some(&b'\n') {
                        cur.push(' ');
                        i += 1;
                    }
                } else if c == b'"' {
                    st = St::Code;
                }
            }
            St::RawStr(hashes) => {
                cur.push(' ');
                if c == b'"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if b.get(i + 1 + k as usize) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            cur.push(' ');
                            i += 1;
                        }
                        st = St::Code;
                    }
                }
            }
            St::Char => {
                cur.push(' ');
                if c == b'\\' {
                    cur.push(' ');
                    i += 1;
                } else if c == b'\'' {
                    st = St::Code;
                }
            }
        }
        i += 1;
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip1(s: &str) -> String {
        strip_noncode(s).join("\n")
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = strip1("let x = \".unwrap()\"; // .expect(\nlet y = 1;");
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".expect("));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let s = strip1("a /* x /* y */ .unwrap() */ b\nc");
        assert!(!s.contains(".unwrap()"));
        assert!(s.starts_with("a "));
        assert!(s.ends_with("b\nc"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = strip1("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert!(s.contains("<'a>"));
        assert!(!s.contains('x') || !s.contains("'x'"));
    }

    #[test]
    fn raw_interval_literal_detection() {
        assert!(has_raw_interval_literal(
            "let iv = Interval { start: 1, end: 2 };"
        ));
        assert!(has_raw_interval_literal("Interval{start,end}"));
        assert!(!has_raw_interval_literal("IntervalPartition { lifespan }"));
        assert!(!has_raw_interval_literal("let iv = Interval::new(1, 2);"));
        assert!(!has_raw_interval_literal("MyInterval { a }"));
        assert!(!has_raw_interval_literal(
            "pub fn lifespan(&self) -> Interval {"
        ));
        assert!(!has_raw_interval_literal("impl Wire for Interval {"));
        assert!(!has_raw_interval_literal("impl Interval {"));
    }

    #[test]
    fn hash_names_and_iteration() {
        let code: Vec<String> = vec![
            "    states: HashMap<u32, State>,".into(),
            "    let mut cache = HashMap::new();".into(),
        ];
        let names = collect_hash_names(&code);
        assert_eq!(names, vec!["states".to_string(), "cache".to_string()]);
        assert!(iterates_hash("for (k, v) in self.states {", &names));
        assert!(iterates_hash(
            "let xs: Vec<_> = cache.iter().collect();",
            &names
        ));
        assert!(iterates_hash("for v in cache.values() {", &names));
        assert!(!iterates_hash("let x = states.get(&k);", &names));
        assert!(!iterates_hash("states.insert(k, v);", &names));
        assert!(!iterates_hash("for x in vec {", &names));
    }

    #[test]
    fn test_mask_skips_gated_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}";
        let code = strip_noncode(src);
        let mask = test_mask(&code);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn fault_gating_detection() {
        let gated: Vec<String> = vec!["#[cfg(test)]".into(), "fn hook(plan: &FaultPlan) {}".into()];
        assert!(fault_gated(&gated, 1));
        let stacked: Vec<String> = vec![
            "#[cfg(feature = \"faults\")]".into(),
            "#[inline]".into(),
            "".into(),
            "fn fire(inj: &mut FaultInjector) {}".into(),
        ];
        assert!(fault_gated(&stacked, 3));
        let inline: Vec<String> =
            vec!["let go = cfg!(debug_assertions) && fault_plan.is_some();".into()];
        assert!(fault_gated(&inline, 0));
        let clean: Vec<String> = vec![
            "fn run(config: &BspConfig) {".into(),
            "    let inj = FaultInjector::new(config.fault_plan.clone());".into(),
        ];
        assert!(!fault_gated(&clean, 1));
        let unrelated_gate: Vec<String> = vec![
            "#[cfg(test)]".into(),
            "mod tests {".into(),
            "    use super::*;".into(),
            "    fn t() { let p = FaultPlan::default(); }".into(),
        ];
        assert!(
            !fault_gated(&unrelated_gate, 3),
            "a test merely *using* a fault plan is not a gated hook"
        );
    }

    #[test]
    fn worker_modulo_detection() {
        assert!(computes_worker_modulo("let w = vid % workers;"));
        assert!(computes_worker_modulo("(splitmix64(v) % workers as u64)"));
        assert!(computes_worker_modulo("idx % self.workers"));
        assert!(computes_worker_modulo("h % config.workers.max(1)"));
        assert!(computes_worker_modulo("x % n_workers"));
        assert!(!computes_worker_modulo("let r = i % 7;"));
        assert!(!computes_worker_modulo("a % buckets"));
        assert!(!computes_worker_modulo("let workers = 4;"));
    }

    #[test]
    fn allow_comment_is_honored() {
        let raw = vec![
            "x.unwrap(); // lint:allow(no-unwrap) — justified",
            "y.unwrap();",
        ];
        assert!(allowed(&raw, 0, Rule::NoUnwrap));
        assert!(!allowed(&raw, 1, Rule::NoUnwrap));
        let above = vec![
            "// lint:allow(wall-clock) — the one sanctioned read",
            "now()",
        ];
        assert!(allowed(&above, 1, Rule::WallClock));
        let block = vec![
            "// lint:allow(no-unwrap) — justification that",
            "// spans several comment lines.",
            "x.expect(\"covered\")",
        ];
        assert!(allowed(&block, 2, Rule::NoUnwrap));
        let trailing = vec![
            "a.unwrap(); // lint:allow(no-unwrap) — for this line",
            "b.unwrap();",
        ];
        assert!(!allowed(&trailing, 1, Rule::NoUnwrap));
    }
}
