//! Negative fixture for the graphite-lint integration test. This file is
//! never compiled — it lives outside any `src/` tree and exists only to
//! be scanned by the linter, which must flag every block below except the
//! explicitly allowed ones.

use std::collections::{HashMap, HashSet};
use std::time::Instant; // violation: wall-clock (clock-type import)

struct Holder {
    counts: HashMap<u32, u64>,
}

fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // violation: no-unwrap
}

fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") // violation: no-unwrap
}

fn allowed_unwrap(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap) — fixture-sanctioned escape hatch.
    x.unwrap()
}

fn bad_hash_iteration(h: &Holder) -> u64 {
    let mut seen = HashSet::new();
    seen.insert(1u32);
    let mut total = 0;
    for (_, v) in h.counts.iter() {
        // violation: hash-iteration
        total += v;
    }
    for s in seen {
        // violation: hash-iteration
        total += u64::from(s);
    }
    total
}

fn bad_interval_literal() -> Interval {
    Interval { start: 0, end: 1 } // violation: no-raw-interval
}

fn bad_wall_clock() -> Instant {
    Instant::now() // violation: wall-clock
}

fn bad_worker_assignment(vid: u64, workers: usize) -> usize {
    (vid % workers as u64) as usize // violation: worker-assignment
}

fn allowed_worker_modulo(token: u64, n_workers: usize) -> usize {
    // lint:allow(worker-assignment) — fixture-sanctioned escape hatch.
    (token % n_workers as u64) as usize
}

fn string_mention_is_fine() -> &'static str {
    // The rule patterns inside this literal must NOT fire:
    "call .unwrap() and Instant::now() and Interval { start }"
}

#[cfg(test)]
fn gated_fault_hook(plan: &FaultPlan) -> bool {
    // The fn line above is a violation: fault-isolation (a fault hook
    // compiled only under cfg(test) — release builds would run an engine
    // the fault tests never exercised).
    plan.faults.is_empty()
}

fn inline_gated_fault_check(fault_plan: &Option<FaultPlan>) -> bool {
    cfg!(debug_assertions) && fault_plan.is_some() // violation: fault-isolation
}

fn allowed_fault_mention(fault_plan: &Option<FaultPlan>) -> bool {
    // lint:allow(fault-isolation) — fixture-sanctioned escape hatch.
    cfg!(test) || fault_plan.is_none()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1); // exempt: inside #[cfg(test)]
    }
}
