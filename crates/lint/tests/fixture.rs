//! Integration test: the built `graphite-lint` binary must flag every
//! seeded violation in the negative fixture (exit 1) and report the real
//! workspace clean (exit 0).

use std::path::Path;
use std::process::Command;

fn run_lint(args: &[&str], cwd: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_graphite-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn graphite-lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn fixture_trips_every_rule() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = manifest.join("fixtures/violations.rs");
    let (code, text) = run_lint(&[fixture.to_str().unwrap()], manifest);
    assert_eq!(code, 1, "fixture must fail the lint, output:\n{text}");

    for rule in [
        "no-unwrap",
        "hash-iteration",
        "no-raw-interval",
        "wall-clock",
        "fault-isolation",
        "worker-assignment",
    ] {
        assert!(
            text.contains(&format!("[{rule}]")),
            "missing rule {rule} in:\n{text}"
        );
    }

    // Exactly the seeded violations: 2 unwrap/expect (the allowed one is
    // excused), 2 hash iterations, 1 raw interval literal, 2 wall-clock
    // hits (the `time::Instant` import and the `Instant::now()` call),
    // 2 cfg-gated fault hooks (the allowed one is excused), 1 worker
    // modulo placement (the allowed one is excused).
    assert!(
        text.contains("10 violation(s)"),
        "expected 10 violations in:\n{text}"
    );

    // The escaped line and the test-module unwrap must not be flagged.
    let unwrap_hits = text.matches("[no-unwrap]").count();
    assert_eq!(
        unwrap_hits, 2,
        "allow-escape or test exemption failed:\n{text}"
    );
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, text) = run_lint(&[], &root);
    assert_eq!(code, 0, "workspace must lint clean, output:\n{text}");
    assert!(text.contains("clean"), "unexpected output:\n{text}");
}
