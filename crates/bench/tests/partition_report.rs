//! End-to-end tests of the `partition_report` and `trace_report` binaries:
//! the offline partition-quality report must be deterministic (identical
//! inputs → byte-identical output, including the recommended assignment's
//! digest), and the `--balance` trace view must render worker shares.

use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_tgraph::io;
use std::path::PathBuf;
use std::process::{Command, Output};

/// A skew-shaped graph small enough for the test budget.
fn small_skew() -> GenParams {
    GenParams {
        vertices: 80,
        edges: 400,
        snapshots: 24,
        topology: Topology::PowerLaw {
            edges_per_vertex: 5,
        },
        vertex_lifespans: LifespanModel::Bursty {
            heavy_fraction: 0.1,
            heavy_mean: 18.0,
            burst_mean: 2.0,
        },
        edge_lifespans: LifespanModel::Bursty {
            heavy_fraction: 0.1,
            heavy_mean: 14.0,
            burst_mean: 1.5,
        },
        props: PropModel::default(),
        seed: 5,
    }
}

/// A minimal `graphite-trace/1` stream: one superstep over 4 workers with
/// a deliberately skewed compute distribution (worker 0 did ~70 %).
fn synthetic_trace() -> String {
    let mut out = String::from("{\"schema\":\"graphite-trace/1\",\"label\":\"bfs/icm\"}\n");
    for (worker, ns) in [(0u64, 7_000u64), (1, 1_000), (2, 1_000), (3, 1_000)] {
        out.push_str(&format!(
            "{{\"ev\":\"worker_step\",\"step\":1,\"worker\":{worker},\"active\":5,\
             \"msgs_in\":10,\"compute_calls\":5,\"scatter_calls\":3,\"msgs_out\":8,\"remote_msgs\":4,\
             \"bytes_out\":64,\"warp_invocations\":1,\"warp_suppressions\":0,\
             \"compute_ns\":{ns}}}\n"
        ));
    }
    out.push_str(
        "{\"ev\":\"step_end\",\"step\":1,\"sent\":40,\"halted\":true,\
         \"compute_ns\":7000,\"messaging_ns\":100,\"barrier_ns\":10}\n",
    );
    out
}

/// Per-test scratch directory (unique per test name; created fresh).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphite-partrep-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_partition_report"))
        .args(args)
        .output()
        .expect("partition_report spawns")
}

#[test]
fn report_is_deterministic_and_covers_all_strategies() {
    let dir = scratch("det");
    let graph_path = dir.join("skew.tg");
    io::save(&generate(&small_skew()), &graph_path).expect("save graph");
    let trace_path = dir.join("trace.jsonl");
    std::fs::write(&trace_path, synthetic_trace()).expect("write trace");

    let args = [
        graph_path.to_str().expect("utf-8 path"),
        "--workers",
        "4",
        "--trace",
        trace_path.to_str().expect("utf-8 path"),
        "--seed",
        "7",
    ];
    let first = run_report(&args);
    let second = run_report(&args);
    assert!(first.status.success(), "{first:?}");
    assert_eq!(
        first.stdout, second.stdout,
        "identical inputs must produce byte-identical reports"
    );
    let text = String::from_utf8(first.stdout).expect("utf-8 report");
    for strategy in ["hash", "chunked", "ldg", "temporal"] {
        assert!(text.contains(&format!("strategy {strategy}")), "{text}");
    }
    assert!(text.contains("interval_balance"), "{text}");
    assert!(text.contains("est_remote_fraction"), "{text}");
    assert!(text.contains("rebalance from trace bfs/icm"), "{text}");
    assert!(text.contains("recommended assignment"), "{text}");
    // Digest lines are 0x-prefixed 16-digit values; one per strategy plus
    // one for the recommendation.
    assert_eq!(text.matches("digest").count(), 5, "{text}");
}

#[test]
fn bad_strategy_and_missing_graph_fail_cleanly() {
    let out = run_report(&["/nonexistent/graph.tg"]);
    assert!(!out.status.success());
    let dir = scratch("bad");
    let graph_path = dir.join("skew.tg");
    io::save(&generate(&small_skew()), &graph_path).expect("save graph");
    let out = run_report(&[
        graph_path.to_str().expect("utf-8 path"),
        "--strategy",
        "metis",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown strategy is a usage error"
    );
}

#[test]
fn trace_report_balance_renders_worker_shares() {
    let dir = scratch("balance");
    let trace_path = dir.join("trace.jsonl");
    std::fs::write(&trace_path, synthetic_trace()).expect("write trace");
    let out = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .args([trace_path.to_str().expect("utf-8 path"), "--balance"])
        .output()
        .expect("trace_report spawns");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(text.contains("balance: bfs/icm"), "{text}");
    // Worker 0 holds 7000 of 10000 compute-ns.
    assert!(text.contains("70.0%"), "{text}");
    assert!(text.contains("run totals:"), "{text}");
}
