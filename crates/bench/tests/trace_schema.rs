//! End-to-end schema validation: a Full-trace ICM run emitted through
//! `RunTrace::write_jsonl` must round-trip through `tracefmt::parse`, and
//! the parsed per-superstep rows must sum to *exactly* the run's
//! `RunMetrics` totals — the JSONL file is a faithful, lossless view of
//! the deterministic counters.

use graphite_algorithms::bfs::IcmBfs;
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_bench::tracefmt;
use graphite_bsp::metrics::RunMetrics;
use graphite_bsp::trace::{RunTrace, TraceConfig};
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, IcmConfig};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::sync::Arc;

fn small_graph() -> Arc<TemporalGraph> {
    let params = GenParams {
        vertices: 120,
        edges: 700,
        snapshots: 12,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 9.0 },
        props: PropModel {
            mean_segment: 5.0,
            max_cost: 10,
            max_travel_time: 3,
        },
        seed: 21,
    };
    Arc::new(generate(&params))
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

fn full_trace_cfg() -> IcmConfig {
    IcmConfig {
        workers: 3,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: None,
        trace: TraceConfig::full(),
        fault_plan: None,
        partition: Default::default(),
    }
}

/// Writes the trace to a temp file, parses it back, and removes the file.
fn round_trip(trace: &RunTrace, label: &str) -> tracefmt::TraceDoc {
    let path = std::env::temp_dir().join(format!(
        "graphite-trace-schema-{}-{}.jsonl",
        std::process::id(),
        label.replace('/', "-"),
    ));
    trace.write_jsonl(&path, label).expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace read back");
    let _ = std::fs::remove_file(&path);
    tracefmt::parse(&text).expect("emitted trace must be schema-valid")
}

fn assert_reconciles(doc: &tracefmt::TraceDoc, metrics: &RunMetrics, label: &str) {
    assert_eq!(doc.label, label);
    assert_eq!(
        doc.steps().count() as u64,
        metrics.supersteps,
        "{label}: one step block per superstep"
    );
    assert_eq!(
        doc.sum(|w| w.msgs_out),
        metrics.counters.messages_sent,
        "{label}: per-step message sums must equal the RunMetrics total"
    );
    assert_eq!(
        doc.sum(|w| w.remote_msgs),
        metrics.counters.remote_messages,
        "{label}: remote-message sums must equal the RunMetrics total"
    );
    assert_eq!(
        doc.sum(|w| w.bytes_out),
        metrics.counters.bytes_sent,
        "{label}: byte sums must equal the RunMetrics total"
    );
    assert_eq!(
        doc.sum(|w| w.compute_calls),
        metrics.counters.compute_calls,
        "{label}: compute-call sums must equal the RunMetrics total"
    );
    assert_eq!(
        doc.sum(|w| w.warp_invocations),
        metrics.counters.warp_invocations,
        "{label}: warp-invocation sums must equal the RunMetrics total"
    );
    let last = doc.steps().last().expect("at least one step");
    assert!(
        last.halted,
        "{label}: the final step must carry halted=true"
    );
}

#[test]
fn bfs_full_trace_round_trips_and_reconciles() {
    let graph = small_graph();
    let program = Arc::new(IcmBfs {
        source: source(&graph),
    });
    let r = try_run_icm(&graph, program, &full_trace_cfg()).expect("traced BFS run succeeds");
    let doc = round_trip(&r.metrics.trace, "bfs/icm");
    assert_reconciles(&doc, &r.metrics, "bfs/icm");
    // A rendered report mentions every superstep and the totals line.
    let report = tracefmt::render(&doc, 3);
    assert!(report.contains("trace: bfs/icm"));
    assert!(report.contains(&format!("total: {} step(s)", r.metrics.supersteps)));
}

#[test]
fn eat_full_trace_carries_warp_extras() {
    let graph = small_graph();
    let program = Arc::new(IcmEat {
        source: source(&graph),
        start: 0,
        labels: AlgLabels::resolve(&graph),
    });
    let r = try_run_icm(&graph, program, &full_trace_cfg()).expect("traced EAT run succeeds");
    let doc = round_trip(&r.metrics.trace, "eat/icm");
    assert_reconciles(&doc, &r.metrics, "eat/icm");
    // EAT exercises warp: the extras must survive serialization, and at
    // least one step must have a computable amplification factor.
    assert!(
        doc.sum(|w| w.warp_tuples) > 0,
        "EAT must produce warp tuples"
    );
    assert!(
        doc.steps().any(|s| s.warp_amplification().is_some()),
        "some step must report warp amplification"
    );
}
