//! Micro-bench: checkpoint/rollback overhead. ICM BFS and EAT on the
//! small long-lifespan graph, fault-free, with recovery off vs. the
//! recoverable driver at checkpoint intervals 16 and 4. The interval-16
//! column is the headline number — EXPERIMENTS.md documents the budget
//! (≤15% makespan overhead vs. off); interval 4 shows how the cost
//! scales as checkpoints get denser. The recorded counters include the
//! recovery block, so the committed BENCH_recovery.json also documents
//! checkpoint sizes.

use graphite_algorithms::bfs::IcmBfs;
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_bsp::recover::RecoveryConfig;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, try_run_icm_recoverable, IcmConfig};
use graphite_icm::program::IntervalProgram;
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::hint::black_box;
use std::sync::Arc;

fn small_long_lifespan() -> Arc<TemporalGraph> {
    let params = GenParams {
        vertices: 300,
        edges: 2400,
        snapshots: 24,
        topology: Topology::PowerLaw {
            edges_per_vertex: 8,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 18.0 },
        props: PropModel {
            mean_segment: 9.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed: 99,
    };
    Arc::new(generate(&params))
}

fn cfg() -> IcmConfig {
    IcmConfig {
        workers: 2,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: None,
        trace: graphite_bsp::trace::TraceConfig::default(),
        fault_plan: None,
        partition: Default::default(),
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

/// Benchmarks one (program, checkpoint interval) cell; `interval` 0 means
/// the plain, non-recoverable driver.
fn case<P>(
    rec: &mut Recorder,
    label: &str,
    graph: &Arc<TemporalGraph>,
    program: &Arc<P>,
    interval: u64,
) where
    P: IntervalProgram<State = i64>,
{
    let mut last_metrics = None;
    let result = bench(label, || {
        let outcome = if interval == 0 {
            try_run_icm(graph, Arc::clone(program), &cfg())
        } else {
            try_run_icm_recoverable(
                graph,
                Arc::clone(program),
                &cfg(),
                &RecoveryConfig::every(interval),
            )
        }
        .expect("bench run must succeed");
        last_metrics = Some(outcome.metrics.clone());
        black_box(outcome)
    });
    let metrics = last_metrics.expect("bench ran at least once");
    rec.push_with_metrics(result, &metrics);
}

fn main() {
    let mut rec = Recorder::new("recovery");
    let graph = small_long_lifespan();
    let bfs = Arc::new(IcmBfs {
        source: source(&graph),
    });
    let eat = Arc::new(IcmEat {
        source: source(&graph),
        start: 0,
        labels: AlgLabels::resolve(&graph),
    });

    case(&mut rec, "recovery/bfs/off", &graph, &bfs, 0);
    case(&mut rec, "recovery/bfs/ckpt16", &graph, &bfs, 16);
    case(&mut rec, "recovery/bfs/ckpt4", &graph, &bfs, 4);

    case(&mut rec, "recovery/eat/off", &graph, &eat, 0);
    case(&mut rec, "recovery/eat/ckpt16", &graph, &eat, 16);
    case(&mut rec, "recovery/eat/ckpt4", &graph, &eat, 4);

    rec.finish();
}
