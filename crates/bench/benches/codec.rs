//! Micro-bench: the interval wire codec — the paper's variable-length
//! interval encoding vs. the naive fixed 16-byte pair (Sec. VI reports a
//! 59-78% message-size drop; this measures the cpu cost and verifies the
//! size ratio stays in that band for a workload-like mixture).

use graphite_bench::record::Recorder;
use graphite_bench::timing::bench_throughput;
use graphite_bsp::codec::{
    decode_batch, encode_batch, get_interval, get_interval_fixed, put_interval, put_interval_fixed,
};
use graphite_tgraph::graph::VIdx;
use graphite_tgraph::time::Interval;
use std::hint::black_box;

/// A workload-like interval mixture: mostly unit and right-unbounded.
fn workload(n: usize) -> Vec<Interval> {
    (0..n as i64)
        .map(|i| match i % 4 {
            0 => Interval::point(i),
            1 => Interval::from_start(i),
            2 => Interval::new(i, i + 5),
            _ => Interval::new(i, i + 40),
        })
        .collect()
}

fn main() {
    let mut rec = Recorder::new("codec");
    let ivs = workload(1024);
    let n = ivs.len() as u64;

    rec.push(bench_throughput("codec/encode/varint", n, || {
        let mut buf = Vec::with_capacity(ivs.len() * 4);
        for &iv in &ivs {
            put_interval(black_box(iv), &mut buf);
        }
        buf
    }));
    rec.push(bench_throughput("codec/encode/fixed", n, || {
        let mut buf = Vec::with_capacity(ivs.len() * 16);
        for &iv in &ivs {
            put_interval_fixed(black_box(iv), &mut buf);
        }
        buf
    }));

    let mut compact = Vec::new();
    let mut fixed = Vec::new();
    for &iv in &ivs {
        put_interval(iv, &mut compact);
        put_interval_fixed(iv, &mut fixed);
    }
    // The paper's headline claim: 59-78% smaller messages.
    let reduction = 1.0 - compact.len() as f64 / fixed.len() as f64;
    assert!(reduction > 0.59, "size reduction {reduction}");
    println!(
        "codec/size-reduction {:.1}% (paper: 59-78%)",
        reduction * 100.0
    );

    rec.push(bench_throughput("codec/decode/varint", n, || {
        let mut s = compact.as_slice();
        let mut count = 0usize;
        while !s.is_empty() {
            black_box(get_interval(&mut s).unwrap());
            count += 1;
        }
        count
    }));
    rec.push(bench_throughput("codec/decode/fixed", n, || {
        let mut s = fixed.as_slice();
        let mut count = 0usize;
        while !s.is_empty() {
            black_box(get_interval_fixed(&mut s).unwrap());
            count += 1;
        }
        count
    }));

    // The routing hot path: whole-batch encode/decode with a reused wire
    // buffer, exactly as the BSP exchange performs it.
    let batch: Vec<(VIdx, Interval)> = ivs
        .iter()
        .enumerate()
        .map(|(i, &iv)| (VIdx(i as u32 % 64), iv))
        .collect();
    let mut wire = Vec::new();
    rec.push(bench_throughput("codec/batch/encode", n, || {
        wire.clear();
        encode_batch(black_box(&batch), &mut wire);
        wire.len()
    }));
    wire.clear();
    encode_batch(&batch, &mut wire);
    rec.push(bench_throughput("codec/batch/decode", n, || {
        let mut count = 0usize;
        decode_batch::<Interval>(black_box(&wire), batch.len(), |_, iv| {
            black_box(iv);
            count += 1;
        })
        .unwrap();
        count
    }));

    rec.finish();
}
