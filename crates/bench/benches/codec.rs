//! Criterion bench: the interval wire codec — the paper's variable-length
//! interval encoding vs. the naive fixed 16-byte pair (Sec. VI reports a
//! 59-78% message-size drop; this measures the cpu cost and verifies the
//! size ratio stays in that band for a workload-like mixture).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphite_bsp::codec::{
    get_interval, get_interval_fixed, put_interval, put_interval_fixed,
};
use graphite_tgraph::time::Interval;
use std::hint::black_box;

/// A workload-like interval mixture: mostly unit and right-unbounded.
fn workload(n: usize) -> Vec<Interval> {
    (0..n as i64)
        .map(|i| match i % 4 {
            0 => Interval::point(i),
            1 => Interval::from_start(i),
            2 => Interval::new(i, i + 5),
            _ => Interval::new(i, i + 40),
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let ivs = workload(1024);
    let mut g = c.benchmark_group("codec/encode");
    g.throughput(Throughput::Elements(ivs.len() as u64));
    g.bench_function("varint", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(ivs.len() * 4);
            for &iv in &ivs {
                put_interval(black_box(iv), &mut buf);
            }
            black_box(buf)
        })
    });
    g.bench_function("fixed", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(ivs.len() * 16);
            for &iv in &ivs {
                put_interval_fixed(black_box(iv), &mut buf);
            }
            black_box(buf)
        })
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let ivs = workload(1024);
    let mut compact = Vec::new();
    let mut fixed = Vec::new();
    for &iv in &ivs {
        put_interval(iv, &mut compact);
        put_interval_fixed(iv, &mut fixed);
    }
    // The paper's headline claim: 59-78% smaller messages.
    let reduction = 1.0 - compact.len() as f64 / fixed.len() as f64;
    assert!(reduction > 0.59, "size reduction {reduction}");

    let mut g = c.benchmark_group("codec/decode");
    g.throughput(Throughput::Elements(ivs.len() as u64));
    g.bench_function("varint", |b| {
        b.iter(|| {
            let mut s = compact.as_slice();
            let mut n = 0usize;
            while !s.is_empty() {
                black_box(get_interval(&mut s).unwrap());
                n += 1;
            }
            black_box(n)
        })
    });
    g.bench_function("fixed", |b| {
        b.iter(|| {
            let mut s = fixed.as_slice();
            let mut n = 0usize;
            while !s.is_empty() {
                black_box(get_interval_fixed(&mut s).unwrap());
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
