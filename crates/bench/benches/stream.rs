//! Streaming-maintenance bench: incremental recomputation against
//! from-scratch recomputation over the same sparse update batches.
//!
//! Two rows, one shared workload — a settled power-law graph plus eight
//! sparse batches, each hanging a few fresh vertices and edges off
//! existing ones (the serving-layer "live updates" shape, where a batch
//! touches a handful of vertices in a graph of hundreds):
//!
//! * `stream/incremental` — the `graphite-stream` path: a resident
//!   `StreamEngine` registers BFS, EAT and Reachability (paying their
//!   initial from-scratch runs once), then ingests every batch, applying
//!   the delta through the overlay and re-converging each algorithm from
//!   its carried fixpoint with only the dirty vertices re-seeded.
//! * `stream/full` — the status-quo path: the same initial runs, then
//!   after every batch a from-scratch recomputation of all three
//!   algorithms. The refreshed graphs are pre-applied *outside* the
//!   measured region, so this row pays recomputation only — the
//!   comparison is conservative in full recompute's favor.
//!
//! `bench_validate` enforces the >= 2x gate on the recorded file: on
//! sparse batches the incremental row must finish at least twice as fast
//! as the full-recompute row. The differential test suite
//! (`crates/stream/tests/differential.rs`) pins that the two paths
//! produce bit-identical result digests, so the speedup is not bought
//! with approximation.

use graphite_algorithms::registry::{self, Algo, Platform, RunOpts};
use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_bsp::metrics::RunMetrics;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_stream::prelude::*;
use graphite_tgraph::graph::{EdgeId, TemporalGraph, VertexId};
use std::hint::black_box;
use std::sync::Arc;

/// The settled base graph: full-lifespan vertices and long-lived edges,
/// so batches change little of the warp alignment they touch.
fn workload() -> GenParams {
    GenParams {
        vertices: 300,
        edges: 2400,
        snapshots: 24,
        topology: Topology::PowerLaw {
            edges_per_vertex: 8,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 18.0 },
        props: PropModel {
            mean_segment: 9.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed: 99,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

/// Deterministic sparse batches: each hangs `per_batch` fresh vertices
/// off existing full-lifespan vertices, with `travel-time` props so the
/// temporal-path algorithms treat the new edges like generated ones.
fn sparse_batches(base: &TemporalGraph, batches: u64, per_batch: u64) -> Vec<GraphDelta> {
    let n = base.num_vertices() as u64;
    let max_vid = base.vertices().map(|(_, v)| v.vid.0).max().unwrap_or(0);
    let max_eid = base
        .edge_indices()
        .map(|e| base.edge(e).eid.0)
        .max()
        .unwrap_or(0);
    // Any full-lifespan vertex works as an attachment point; with
    // `LifespanModel::Full` that is every vertex, so a fixed-stride walk
    // over the id space spreads the updates deterministically.
    let vids: Vec<VertexId> = base.vertices().map(|(_, v)| v.vid).collect();
    let vid_at = |row: u64| vids[(row % n) as usize];
    (0..batches)
        .map(|b| {
            let mut delta = GraphDelta::new();
            for j in 0..per_batch {
                let k = b * per_batch + j;
                let anchor = vid_at(k.wrapping_mul(7919).wrapping_add(17));
                let span = base
                    .vertex_index(anchor)
                    .map(|v| base.vertex_lifespan(v))
                    .expect("anchor exists");
                let vid = VertexId(max_vid + 1 + k);
                let eid = EdgeId(max_eid + 1 + k);
                delta.insert_vertex(vid, span);
                delta.insert_edge(eid, anchor, vid, span);
                delta.edge_property(eid, "travel-time", span, 1i64.into());
            }
            delta
        })
        .collect()
}

fn algo_mix(src: VertexId) -> [AlgoSpec; 3] {
    [
        AlgoSpec::Bfs { source: src },
        AlgoSpec::Eat {
            source: src,
            start: 0,
        },
        AlgoSpec::Reach {
            source: src,
            start: 0,
        },
    ]
}

fn main() {
    let mut rec = Recorder::new("stream");
    let base = Arc::new(generate(&workload()));
    let src = source(&base);
    let deltas = sparse_batches(&base, 8, 6);
    let total_ops: u64 = deltas.iter().map(|d| d.len() as u64).sum();

    // Incremental path: initial runs once at registration, then every
    // batch is applied and maintained from the carried fixpoints.
    let mut last_reports: Vec<BatchReport> = Vec::new();
    let result = bench("stream/incremental", || {
        let mut engine = StreamEngine::new(
            Arc::clone(&base),
            StreamConfig {
                workers: 2,
                compact_every: 4,
                check_every: 0,
                ..StreamConfig::default()
            },
        );
        for spec in algo_mix(src) {
            engine.register(spec).expect("initial run succeeds");
        }
        last_reports.clear();
        for delta in &deltas {
            last_reports.push(engine.ingest(delta).expect("batch applies cleanly"));
        }
        black_box(engine.structure_digest());
    });
    let dirty: u64 = last_reports.iter().map(|r| r.dirty as u64).sum();
    let inc_compute: u64 = last_reports
        .iter()
        .flat_map(|r| r.algos.iter())
        .map(|a| a.compute_calls)
        .sum();
    rec.push_with_metrics_and(
        result,
        &RunMetrics::default(),
        vec![
            ("batches", deltas.len() as u64),
            ("ops", total_ops),
            ("dirty_vertices", dirty),
            ("inc_compute_calls", inc_compute),
        ],
    );

    // Full-recompute path: the same initial runs, then after every batch
    // all three algorithms from scratch on the refreshed graph. Deltas
    // are pre-applied here, outside the measured region.
    let mut refreshed = Vec::with_capacity(deltas.len());
    let mut g = (*base).clone();
    for delta in &deltas {
        g = g.apply_delta(delta).expect("batch applies cleanly");
        refreshed.push(Arc::new(g.clone()));
    }
    let opts = RunOpts {
        workers: 2,
        source: Some(src),
        digest: false,
        ..RunOpts::default()
    };
    let algos = [Algo::Bfs, Algo::Eat, Algo::Reach];
    let mut last_metrics: Vec<RunMetrics> = Vec::new();
    let result = bench("stream/full", || {
        last_metrics.clear();
        for graph in std::iter::once(&base).chain(refreshed.iter()) {
            for algo in algos {
                let outcome = registry::run(algo, Platform::Icm, graph, None, &opts)
                    .expect("from-scratch run succeeds");
                last_metrics.push(outcome.metrics.clone());
                black_box(outcome);
            }
        }
    });
    let full_compute: u64 = last_metrics
        .iter()
        // The initial runs (first three) are common to both rows; the
        // per-batch recompute cost is what the counter describes.
        .skip(algos.len())
        .map(|m| m.counters.compute_calls)
        .sum();
    let mut merged = RunMetrics::default();
    for m in last_metrics.drain(..) {
        merged.merge(&m);
    }
    rec.push_with_metrics_and(
        result,
        &merged,
        vec![
            ("batches", deltas.len() as u64),
            ("ops", total_ops),
            ("full_compute_calls", full_compute),
        ],
    );

    rec.finish();
}
