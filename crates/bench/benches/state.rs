//! Micro-bench: dynamically partitioned vertex state — the cost of
//! interval repartitioning (`set`), point lookups, and coalescing as the
//! partition fragments (Sec. IV-A1's worst case is one partition per
//! time-point).

use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_tgraph::iset::IntervalPartition;
use graphite_tgraph::time::Interval;
use std::hint::black_box;

fn fragmented(n: i64) -> IntervalPartition<i64> {
    let mut p = IntervalPartition::new(Interval::new(0, n), 0i64);
    for i in (0..n).step_by(2) {
        p.set(Interval::new(i, i + 1), i);
    }
    p
}

fn main() {
    let mut rec = Recorder::new("state");
    for n in [16i64, 256, 4096] {
        rec.push(bench(&format!("state/set/{n}"), || {
            let mut p = IntervalPartition::new(Interval::new(0, n), 0i64);
            for i in (0..n).step_by(4) {
                p.set(Interval::new(i, i + 2), i);
            }
            black_box(p)
        }));
    }

    for n in [16i64, 256, 4096] {
        let p = fragmented(n);
        rec.push(bench(&format!("state/value_at/{n}"), || {
            let mut acc = 0i64;
            for t in (0..n).step_by(7) {
                acc += *p.value_at(black_box(t)).unwrap();
            }
            black_box(acc)
        }));
    }

    for n in [256i64, 4096] {
        rec.push(bench(&format!("state/coalesce/{n}"), || {
            // Adjacent equal values: maximal coalescing work. The setup
            // dominates the timing here, so this row measures the full
            // fragment-then-coalesce cycle the engine actually performs.
            let mut p = IntervalPartition::new(Interval::new(0, n), 0i64);
            for i in 0..n {
                p.set(Interval::new(i, i + 1), i / 8);
            }
            p.coalesce();
            black_box(p)
        }));
    }

    rec.finish();
}
