//! Criterion bench: dynamically partitioned vertex state — the cost of
//! interval repartitioning (`set`), point lookups, and coalescing as the
//! partition fragments (Sec. IV-A1's worst case is one partition per
//! time-point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphite_tgraph::iset::IntervalPartition;
use graphite_tgraph::time::Interval;
use std::hint::black_box;

fn fragmented(n: i64) -> IntervalPartition<i64> {
    let mut p = IntervalPartition::new(Interval::new(0, n), 0i64);
    for i in (0..n).step_by(2) {
        p.set(Interval::new(i, i + 1), i);
    }
    p
}

fn bench_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("state/set");
    for n in [16i64, 256, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || IntervalPartition::new(Interval::new(0, n), 0i64),
                |mut p| {
                    for i in (0..n).step_by(4) {
                        p.set(Interval::new(i, i + 2), i);
                    }
                    black_box(p)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("state/value_at");
    for n in [16i64, 256, 4096] {
        let p = fragmented(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| {
                let mut acc = 0i64;
                for t in (0..n).step_by(7) {
                    acc += *p.value_at(black_box(t)).unwrap();
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let mut g = c.benchmark_group("state/coalesce");
    for n in [256i64, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    // Adjacent equal values: maximal coalescing work.
                    let mut p = IntervalPartition::new(Interval::new(0, n), 0i64);
                    for i in 0..n {
                        p.set(Interval::new(i, i + 1), i / 8);
                    }
                    p
                },
                |mut p| {
                    p.coalesce();
                    black_box(p)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_set, bench_lookup, bench_coalesce);
criterion_main!(benches);
