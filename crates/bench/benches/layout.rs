//! Micro-bench: the storage-layout pass (DESIGN.md §16).
//!
//! Re-measures the ICM rows of the engine bench on the exact same
//! dataset, seeds, and run options, and additionally pins each case's
//! *result digest* into the recording (as `result_digest_hi`/`_lo`
//! counter halves), so a before/after pair proves the layout change is
//! purely physical: identical deterministic counters, identical
//! digests, different wall-clock.
//!
//! Phases: `GRAPHITE_LAYOUT_PHASE=pre` records `BENCH_layout-pre.json`
//! (run against the pre-layout engine); the default records
//! `BENCH_layout.json`, typically with `GRAPHITE_BENCH_BASELINE`
//! pointing at the pre recording so every row carries a speedup.
//! `bench_validate` enforces the ≥1.5× geo-mean floor and the
//! counters/digest-identical cross-check.

use graphite_algorithms::registry::{run, Algo, Platform, RunOpts};
use graphite_bench::engine_dataset;
use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use std::hint::black_box;

fn opts() -> RunOpts {
    RunOpts {
        workers: 2,
        digest: false,
        ..Default::default()
    }
}

fn main() {
    let phase = std::env::var("GRAPHITE_LAYOUT_PHASE").unwrap_or_default();
    let name = if phase == "pre" {
        "layout-pre"
    } else {
        "layout"
    };
    let mut rec = Recorder::new(name);
    let dataset = engine_dataset();

    for (label, algo) in [
        ("engine/sssp/icm", Algo::Sssp),
        ("engine/bfs/icm", Algo::Bfs),
        ("engine/eat/icm", Algo::Eat),
    ] {
        // One untimed run with digesting on: the digest is pinned into
        // the recording, but digest folding stays off the timed path
        // (matching the engine bench's run options exactly).
        let digest_opts = RunOpts {
            digest: true,
            ..opts()
        };
        let outcome =
            run(algo, Platform::Icm, &dataset.graph, None, &digest_opts).expect("ICM run succeeds");
        let digest = outcome.digest.expect("digest requested").0;

        let mut last_metrics = None;
        let result = bench(label, || {
            let outcome = run(algo, Platform::Icm, &dataset.graph, None, &opts()).unwrap();
            last_metrics = Some(outcome.metrics.clone());
            black_box(outcome)
        });
        let metrics = last_metrics.expect("bench ran at least once");
        rec.push_with_metrics_and(
            result,
            &metrics,
            vec![
                ("result_digest_hi", digest >> 32),
                ("result_digest_lo", digest & 0xffff_ffff),
            ],
        );
    }

    rec.finish();
}
