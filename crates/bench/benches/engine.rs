//! Micro-bench: end-to-end engine comparison — temporal SSSP under
//! ICM vs. the per-snapshot and transformed-graph baselines on a small
//! long-lifespan graph (the regime where warp's sharing pays), and BFS
//! under ICM vs. MSB. These are the microscale versions of Fig. 5.

use graphite_algorithms::registry::{run, Algo, Platform, RunOpts};
use graphite_bench::engine_dataset;
use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_tgraph::graph::TemporalGraph;
use graphite_tgraph::transform::TransformedGraph;
use std::hint::black_box;
use std::sync::Arc;

fn opts() -> RunOpts {
    RunOpts {
        workers: 2,
        digest: false,
        ..Default::default()
    }
}

/// Benchmarks one (algo, platform) cell and records it together with the
/// run's deterministic counters.
fn case(
    rec: &mut Recorder,
    label: &str,
    algo: Algo,
    platform: Platform,
    graph: &Arc<TemporalGraph>,
    transformed: Option<&Arc<TransformedGraph>>,
) {
    let mut last_metrics = None;
    let result = bench(label, || {
        let outcome = run(algo, platform, graph, transformed, &opts()).unwrap();
        last_metrics = Some(outcome.metrics.clone());
        black_box(outcome)
    });
    let metrics = last_metrics.expect("bench ran at least once");
    rec.push_with_metrics(result, &metrics);
}

fn main() {
    let mut rec = Recorder::new("engine");
    let dataset = engine_dataset();
    let transformed = dataset.transformed();

    case(
        &mut rec,
        "engine/sssp/icm",
        Algo::Sssp,
        Platform::Icm,
        &dataset.graph,
        None,
    );
    case(
        &mut rec,
        "engine/sssp/goffish",
        Algo::Sssp,
        Platform::Goffish,
        &dataset.graph,
        None,
    );
    case(
        &mut rec,
        "engine/sssp/tgb",
        Algo::Sssp,
        Platform::Tgb,
        &dataset.graph,
        Some(&transformed),
    );

    case(
        &mut rec,
        "engine/bfs/icm",
        Algo::Bfs,
        Platform::Icm,
        &dataset.graph,
        None,
    );
    case(
        &mut rec,
        "engine/bfs/msb",
        Algo::Bfs,
        Platform::Msb,
        &dataset.graph,
        None,
    );
    case(
        &mut rec,
        "engine/bfs/chlonos",
        Algo::Bfs,
        Platform::Chlonos,
        &dataset.graph,
        None,
    );

    rec.finish();
}
