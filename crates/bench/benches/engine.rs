//! Micro-bench: end-to-end engine comparison — temporal SSSP under
//! ICM vs. the per-snapshot and transformed-graph baselines on a small
//! long-lifespan graph (the regime where warp's sharing pays), and BFS
//! under ICM vs. MSB. These are the microscale versions of Fig. 5.

use graphite_algorithms::registry::{run, Algo, Platform, RunOpts};
use graphite_bench::timing::bench;
use graphite_bench::Dataset;
use graphite_datagen::{GenParams, LifespanModel, Profile, PropModel, Topology};
use std::hint::black_box;
use std::sync::Arc;

fn small_long_lifespan() -> Dataset {
    let params = GenParams {
        vertices: 300,
        edges: 2400,
        snapshots: 24,
        topology: Topology::PowerLaw {
            edges_per_vertex: 8,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 18.0 },
        props: PropModel {
            mean_segment: 9.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed: 99,
    };
    Dataset::from_graph(
        Profile::Twitter,
        Arc::new(graphite_datagen::generate(&params)),
    )
}

fn opts() -> RunOpts {
    RunOpts {
        workers: 2,
        digest: false,
        ..Default::default()
    }
}

fn main() {
    let dataset = small_long_lifespan();
    let transformed = dataset.transformed();

    bench("engine/sssp/icm", || {
        black_box(
            run(
                Algo::Sssp,
                Platform::Icm,
                Arc::clone(&dataset.graph),
                None,
                &opts(),
            )
            .unwrap(),
        )
    });
    bench("engine/sssp/goffish", || {
        black_box(
            run(
                Algo::Sssp,
                Platform::Goffish,
                Arc::clone(&dataset.graph),
                None,
                &opts(),
            )
            .unwrap(),
        )
    });
    bench("engine/sssp/tgb", || {
        black_box(
            run(
                Algo::Sssp,
                Platform::Tgb,
                Arc::clone(&dataset.graph),
                Some(Arc::clone(&transformed)),
                &opts(),
            )
            .unwrap(),
        )
    });

    bench("engine/bfs/icm", || {
        black_box(
            run(
                Algo::Bfs,
                Platform::Icm,
                Arc::clone(&dataset.graph),
                None,
                &opts(),
            )
            .unwrap(),
        )
    });
    bench("engine/bfs/msb", || {
        black_box(
            run(
                Algo::Bfs,
                Platform::Msb,
                Arc::clone(&dataset.graph),
                None,
                &opts(),
            )
            .unwrap(),
        )
    });
    bench("engine/bfs/chlonos", || {
        black_box(
            run(
                Algo::Bfs,
                Platform::Chlonos,
                Arc::clone(&dataset.graph),
                None,
                &opts(),
            )
            .unwrap(),
        )
    });
}
