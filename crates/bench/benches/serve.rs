//! Serving-throughput bench: the resident `ServeEngine` against the
//! status-quo batch pipeline on the engine bench workload.
//!
//! Three rows, one shared query mix (four distinct registry queries,
//! three repeats each, interleaved):
//!
//! * `serve/sequential` — the pre-serve workflow: every query pays the
//!   dominant cost of temporal analytics again, rebuilding the graph
//!   before running solo against the registry. No sharing, no cache.
//! * `serve/inflight1` — the resident engine with one executor: the
//!   graph is loaded once and borrowed by every query, repeats hit the
//!   deterministic result cache.
//! * `serve/inflight4` — the same engine with four queries in flight,
//!   the configuration the serving-layer acceptance gate compares
//!   against sequential submission (`bench_validate` enforces the >= 2x
//!   throughput ratio on the recorded file).
//!
//! On a single-core host the win is load amortization plus caching, not
//! CPU parallelism — see EXPERIMENTS.md §"Serving throughput
//! methodology" before reading anything into inflight4 vs inflight1.

use graphite_algorithms::registry::{self, Algo, Platform};
use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_bsp::fault::FaultPlan;
use graphite_bsp::metrics::RunMetrics;
use graphite_bsp::recover::RecoveryConfig;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_serve::{QuerySpec, ServeConfig, ServeEngine, ServeStats};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

/// The engine bench workload (`benches/engine.rs::small_long_lifespan`).
fn workload() -> GenParams {
    GenParams {
        vertices: 300,
        edges: 2400,
        snapshots: 24,
        topology: Topology::PowerLaw {
            edges_per_vertex: 8,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 18.0 },
        props: PropModel {
            mean_segment: 9.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed: 99,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

/// The query mix: four distinct queries, three repeats each, interleaved
/// so repeats arrive after other work (the realistic cache-hit pattern).
fn batch(src: VertexId) -> Vec<QuerySpec> {
    let base = QuerySpec {
        workers: 2,
        source: Some(src),
        ..QuerySpec::default()
    };
    let distinct = [
        QuerySpec {
            algo: Algo::Bfs,
            platform: Platform::Icm,
            ..base.clone()
        },
        QuerySpec {
            algo: Algo::Eat,
            platform: Platform::Icm,
            ..base.clone()
        },
        QuerySpec {
            algo: Algo::Reach,
            platform: Platform::Icm,
            ..base.clone()
        },
        QuerySpec {
            algo: Algo::Bfs,
            platform: Platform::Msb,
            ..base
        },
    ];
    (0..3).flat_map(|_| distinct.iter().cloned()).collect()
}

/// Sums the deterministic engine counters over one batch's outcomes, so a
/// row's counters describe the work of a whole iteration.
fn merged(metrics: impl IntoIterator<Item = RunMetrics>) -> RunMetrics {
    let mut total = RunMetrics::default();
    for m in metrics {
        total.merge(&m);
    }
    total
}

/// Milli-queries-per-second derived from the measured mean: the
/// throughput figure `bench_validate` compares across rows.
fn qps_milli(queries: usize, mean_ns: f64) -> u64 {
    if mean_ns <= 0.0 {
        return 0;
    }
    (queries as f64 * 1e12 / mean_ns) as u64
}

fn main() {
    let mut rec = Recorder::new("serve");
    let params = workload();
    let graph = Arc::new(generate(&params));
    let src = source(&graph);
    let queries = batch(src);
    let n = queries.len();

    // Status quo: every query is its own batch job — rebuild the graph,
    // run solo, throw the load away. No resident state, no cache.
    let mut last = Vec::new();
    let result = bench("serve/sequential", || {
        last.clear();
        for spec in &queries {
            let fresh = Arc::new(generate(&params));
            let outcome = registry::run(spec.algo, spec.platform, &fresh, None, &spec.to_opts())
                .expect("sequential run succeeds");
            last.push(outcome.metrics.clone());
            black_box(outcome);
        }
    });
    let mean_latency = (result.mean_ns / n as f64 / 1000.0) as u64;
    let extras = vec![
        ("queries", n as u64),
        ("accepted", n as u64),
        ("rejected", 0),
        ("cache_hits", 0),
        ("queries_per_sec_milli", qps_milli(n, result.mean_ns)),
        ("mean_latency_micros", mean_latency),
    ];
    rec.push_with_metrics_and(result, &merged(last.drain(..)), extras);

    // Resident engine: graph loaded once, borrowed by every query;
    // repeats hit the result cache. One row per in-flight budget.
    for in_flight in [1usize, 4] {
        let mut last_metrics = Vec::new();
        let mut last_stats = ServeStats::default();
        let mut last_micros = 0u64;
        let result = bench(&format!("serve/inflight{in_flight}"), || {
            let engine = ServeEngine::new(
                Arc::clone(&graph),
                ServeConfig {
                    max_in_flight: in_flight,
                    ..ServeConfig::default()
                },
            );
            let outcomes = engine.serve_batch(&queries);
            last_metrics.clear();
            last_micros = 0;
            for outcome in outcomes {
                let outcome = outcome.expect("served query succeeds");
                last_micros += outcome.micros;
                last_metrics.push(outcome.metrics.clone());
                black_box(outcome.digest);
            }
            last_stats = engine.stats();
        });
        let extras = vec![
            ("queries", n as u64),
            ("accepted", last_stats.accepted),
            ("rejected", last_stats.rejected),
            ("cache_hits", last_stats.cache_hits),
            ("queries_per_sec_milli", qps_milli(n, result.mean_ns)),
            ("mean_latency_micros", last_micros / n as u64),
        ];
        rec.push_with_metrics_and(result, &merged(last_metrics.drain(..)), extras);
    }

    // Fault-domain rows: the same mix at four in flight, with 0%, 5%
    // (1 of 12) and 15% (2 of 12) of queries carrying seeded transient
    // fault plans plus checkpoint-every-2 recovery. `serve/faults0` is
    // the clean baseline for the validator's 0.7x throughput gate;
    // `digest_mismatches` counts recovered queries whose result digest
    // drifted from the clean solo pin — recovery that changes answers
    // is not recovery, so the validator requires it present and zero.
    let pins: BTreeMap<u64, u64> = queries
        .iter()
        .map(|spec| {
            let digest = registry::run(spec.algo, spec.platform, &graph, None, &spec.to_opts())
                .expect("clean pin run succeeds")
                .digest
                .expect("digests always computed")
                .0;
            (spec.params_digest(), digest)
        })
        .collect();
    // Faulted slots are spread through the mix so recovery overlaps
    // clean traffic; seeds differ per slot so the plans do too.
    let fault_slots: [(usize, u64); 2] = [(2, 11), (7, 23)];
    for (rate, faulted) in [(0u32, 0usize), (5, 1), (15, 2)] {
        let mut mix = queries.clone();
        for &(slot, seed) in &fault_slots[..faulted] {
            let spec = &mut mix[slot];
            spec.fault_plan = Some(FaultPlan::seeded(seed, spec.workers, 6, 2));
            spec.recovery = Some(RecoveryConfig::every(2));
        }
        let mut last_metrics = Vec::new();
        let mut last_stats = ServeStats::default();
        let mut last_micros = 0u64;
        let mut last_mismatches = 0u64;
        let result = bench(&format!("serve/faults{rate}"), || {
            let engine = ServeEngine::new(
                Arc::clone(&graph),
                ServeConfig {
                    max_in_flight: 4,
                    ..ServeConfig::default()
                },
            );
            let outcomes = engine.serve_batch(&mix);
            last_metrics.clear();
            last_micros = 0;
            last_mismatches = 0;
            for (spec, outcome) in mix.iter().zip(outcomes) {
                let outcome = outcome.expect("faulted query recovers");
                let digest = outcome.digest.expect("digests always computed").0;
                if digest != pins[&spec.params_digest()] {
                    last_mismatches += 1;
                }
                last_micros += outcome.micros;
                last_metrics.push(outcome.metrics.clone());
                black_box(digest);
            }
            last_stats = engine.stats();
        });
        let extras = vec![
            ("queries", n as u64),
            ("accepted", last_stats.accepted),
            ("rejected", last_stats.rejected),
            ("cache_hits", last_stats.cache_hits),
            ("retries", last_stats.retries),
            ("recovered", last_stats.recovered),
            ("shed", last_stats.shed),
            ("quarantined", last_stats.quarantined),
            ("budget_exceeded", last_stats.budget_exceeded),
            ("failed", last_stats.failed),
            ("digest_mismatches", last_mismatches),
            ("queries_per_sec_milli", qps_milli(n, result.mean_ns)),
            ("mean_latency_micros", last_micros / n as u64),
        ];
        rec.push_with_metrics_and(result, &merged(last_metrics.drain(..)), extras);
    }

    rec.finish();
}
