//! Criterion bench: the time-warp operator's scaling in message count,
//! partition count and overlap structure — the merge-based aggregation the
//! paper adopts is O(m log m) in the inner-set size (Sec. VI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphite_icm::warp::time_warp_spans;
use graphite_tgraph::time::Interval;
use std::hint::black_box;

fn partition(n: usize, horizon: i64) -> Vec<Interval> {
    let step = (horizon / n as i64).max(1);
    (0..n as i64)
        .map(|i| {
            let start = i * step;
            let end = if i as usize == n - 1 { horizon } else { (i + 1) * step };
            Interval::new(start, end)
        })
        .collect()
}

/// Messages with pseudo-random placement and the given mean length.
fn messages(m: usize, horizon: i64, len: i64) -> Vec<Interval> {
    (0..m as i64)
        .map(|i| {
            let start = (i.wrapping_mul(2654435761) % (horizon - len).max(1)).abs();
            Interval::new(start, start + len)
        })
        .collect()
}

fn bench_message_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp/messages");
    let outer = partition(8, 1024);
    for m in [16usize, 64, 256, 1024, 4096] {
        let inner = messages(m, 1024, 32);
        g.throughput(Throughput::Elements(m as u64));
        g.bench_with_input(BenchmarkId::from_parameter(m), &inner, |b, inner| {
            b.iter(|| black_box(time_warp_spans(black_box(&outer), black_box(inner))))
        });
    }
    g.finish();
}

fn bench_partition_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp/partitions");
    let inner = messages(256, 1024, 32);
    for n in [1usize, 8, 64, 512] {
        let outer = partition(n, 1024);
        g.bench_with_input(BenchmarkId::from_parameter(n), &outer, |b, outer| {
            b.iter(|| black_box(time_warp_spans(black_box(outer), black_box(&inner))))
        });
    }
    g.finish();
}

fn bench_overlap_regimes(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp/overlap");
    let outer = partition(8, 1024);
    // Unit-length messages: the regime warp suppression exists for.
    let unit = messages(1024, 1024, 1);
    g.bench_function("unit", |b| {
        b.iter(|| black_box(time_warp_spans(black_box(&outer), black_box(&unit))))
    });
    // Long messages: heavy overlap, few output tuples per group.
    let long = messages(1024, 1024, 512);
    g.bench_function("long", |b| {
        b.iter(|| black_box(time_warp_spans(black_box(&outer), black_box(&long))))
    });
    // Right-unbounded messages (the SSSP pattern).
    let unbounded: Vec<Interval> =
        (0..1024i64).map(|i| Interval::from_start(i % 1024)).collect();
    g.bench_function("unbounded", |b| {
        b.iter(|| black_box(time_warp_spans(black_box(&outer), black_box(&unbounded))))
    });
    g.finish();
}

criterion_group!(benches, bench_message_scaling, bench_partition_scaling, bench_overlap_regimes);
criterion_main!(benches);
