//! Micro-bench: the time-warp operator's scaling in message count,
//! partition count and overlap structure — the merge-based aggregation the
//! paper adopts is O(m log m) in the inner-set size (Sec. VI).
//!
//! Cases exercise the scratch-reuse entry point (`time_warp_spans_into`
//! with one long-lived [`WarpScratch`]): that is the engine's hot path,
//! where the arena amortizes all per-call allocation across supersteps.

use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_icm::warp::{time_warp_spans_into, WarpScratch};
use graphite_tgraph::time::Interval;
use std::hint::black_box;

fn partition(n: usize, horizon: i64) -> Vec<Interval> {
    let step = (horizon / n as i64).max(1);
    (0..n as i64)
        .map(|i| {
            let start = i * step;
            let end = if i as usize == n - 1 {
                horizon
            } else {
                (i + 1) * step
            };
            Interval::new(start, end)
        })
        .collect()
}

/// Messages with pseudo-random placement and the given mean length.
fn messages(m: usize, horizon: i64, len: i64) -> Vec<Interval> {
    (0..m as i64)
        .map(|i| {
            let start = (i.wrapping_mul(2654435761) % (horizon - len).max(1)).abs();
            Interval::new(start, start + len)
        })
        .collect()
}

fn main() {
    let mut rec = Recorder::new("warp");
    let mut scratch = WarpScratch::new();

    // Message-count scaling.
    let outer = partition(8, 1024);
    for m in [16usize, 64, 256, 1024, 4096] {
        let inner = messages(m, 1024, 32);
        rec.push(bench(&format!("warp/messages/{m}"), || {
            black_box(time_warp_spans_into(
                black_box(&outer),
                black_box(&inner),
                &mut scratch,
            ))
            .len()
        }));
    }

    // Partition-count scaling.
    let inner = messages(256, 1024, 32);
    for n in [1usize, 8, 64, 512] {
        let outer = partition(n, 1024);
        rec.push(bench(&format!("warp/partitions/{n}"), || {
            black_box(time_warp_spans_into(
                black_box(&outer),
                black_box(&inner),
                &mut scratch,
            ))
            .len()
        }));
    }

    // Overlap regimes.
    let outer = partition(8, 1024);
    // Unit-length messages: the regime warp suppression exists for.
    let unit = messages(1024, 1024, 1);
    rec.push(bench("warp/overlap/unit", || {
        black_box(time_warp_spans_into(
            black_box(&outer),
            black_box(&unit),
            &mut scratch,
        ))
        .len()
    }));
    // Long messages: heavy overlap, few output tuples per group.
    let long = messages(1024, 1024, 512);
    rec.push(bench("warp/overlap/long", || {
        black_box(time_warp_spans_into(
            black_box(&outer),
            black_box(&long),
            &mut scratch,
        ))
        .len()
    }));
    // Right-unbounded messages (the SSSP pattern).
    let unbounded: Vec<Interval> = (0..1024i64)
        .map(|i| Interval::from_start(i % 1024))
        .collect();
    rec.push(bench("warp/overlap/unbounded", || {
        black_box(time_warp_spans_into(
            black_box(&outer),
            black_box(&unbounded),
            &mut scratch,
        ))
        .len()
    }));

    rec.finish();
}
