//! Bench: partitioning strategies under temporal skew. ICM BFS on a
//! skew-shaped graph (power-law degree, bursty bimodal lifespans — the
//! `skew` datagen profile at bench scale), once per strategy. Each row
//! records the run's wall time and `RunMetrics` counters (`bytes_sent`
//! legitimately varies with placement) plus the placement's quality
//! figures milli-scaled into integer counters — `interval_balance_milli`
//! is the headline: the committed BENCH_partition.json must show
//! temporal-balance strictly below hash there, and `bench_validate`
//! enforces exactly that.

use graphite_algorithms::bfs::IcmBfs;
use graphite_bench::record::Recorder;
use graphite_bench::timing::bench;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, IcmConfig};
use graphite_part::{stats, PartitionStrategy};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::hint::black_box;
use std::sync::Arc;

const WORKERS: usize = 4;

/// The `skew` profile's shape at bench scale: heavy-tailed per-vertex
/// interval weight, so placements genuinely differ in temporal balance.
fn skew_graph() -> Arc<TemporalGraph> {
    let params = GenParams {
        vertices: 500,
        edges: 5_000,
        snapshots: 32,
        topology: Topology::PowerLaw {
            edges_per_vertex: 10,
        },
        vertex_lifespans: LifespanModel::Bursty {
            heavy_fraction: 0.08,
            heavy_mean: 28.0,
            burst_mean: 2.0,
        },
        edge_lifespans: LifespanModel::Bursty {
            heavy_fraction: 0.10,
            heavy_mean: 24.0,
            burst_mean: 1.5,
        },
        props: PropModel {
            mean_segment: 4.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed: 99,
    };
    Arc::new(generate(&params))
}

fn cfg(strategy: PartitionStrategy) -> IcmConfig {
    IcmConfig {
        workers: WORKERS,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: None,
        trace: graphite_bsp::trace::TraceConfig::default(),
        fault_plan: None,
        partition: strategy,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

/// `0.0..` ratio → integer milli-units (1.000 ≡ 1000), for the recorder's
/// u64 counters.
fn milli(v: f64) -> u64 {
    (v * 1000.0).round() as u64
}

fn main() {
    let mut rec = Recorder::new("partition");
    let graph = skew_graph();
    let bfs = Arc::new(IcmBfs {
        source: source(&graph),
    });
    for strategy in PartitionStrategy::ALL {
        let map = strategy
            .build(&graph, WORKERS)
            .expect("bench placement must build");
        let quality = stats(&graph, &map);
        let mut last_metrics = None;
        let result = bench(&format!("skew/{}", strategy.name()), || {
            let outcome = try_run_icm(&graph, Arc::clone(&bfs), &cfg(strategy.clone()))
                .expect("bench run must succeed");
            last_metrics = Some(outcome.metrics.clone());
            black_box(outcome)
        });
        let metrics = last_metrics.expect("bench ran at least once");
        rec.push_with_metrics_and(
            result,
            &metrics,
            vec![
                ("balance_milli", milli(quality.balance)),
                ("interval_balance_milli", milli(quality.interval_balance)),
                ("cut_edges", quality.cut_edges as u64),
                ("est_remote_milli", milli(quality.est_remote_fraction)),
            ],
        );
    }
    rec.finish();
}
