//! The recorded benchmark pipeline: collects [`BenchResult`]s (plus
//! optional [`RunMetrics`] counters) and emits a machine-readable
//! `BENCH_<name>.json` perf trajectory.
//!
//! Emission is opt-in via `GRAPHITE_BENCH_JSON`: unset, bench targets stay
//! print-only; `1` writes into the current directory; any other value is
//! treated as the output directory. When `GRAPHITE_BENCH_BASELINE` names a
//! prior recording (a `BENCH_<name>.json` file, or a directory containing
//! one for this report's name), each emitted entry also carries the
//! baseline's `mean_ns` and the resulting speedup factor, so a committed
//! file documents before *and* after. See EXPERIMENTS.md §"Recorded
//! benchmark pipeline".

use crate::json::Json;
use crate::timing::BenchResult;
use graphite_bsp::metrics::RunMetrics;
use std::path::PathBuf;

/// Schema tag carried by every emitted file.
pub const SCHEMA: &str = "graphite-bench/1";

/// One recorded case: the measurement plus optional run counters.
#[derive(Clone, Debug)]
pub struct RecordedCase {
    /// The measurement.
    pub result: BenchResult,
    /// Deterministic counters of the measured run, when it was a full
    /// engine run (empty for pure micro-benches).
    pub counters: Vec<(&'static str, u64)>,
}

/// Collects a bench target's cases and writes `BENCH_<name>.json`.
#[derive(Debug)]
pub struct Recorder {
    name: String,
    cases: Vec<RecordedCase>,
}

impl Recorder {
    /// A recorder for the bench target `name` (emits `BENCH_<name>.json`).
    pub fn new(name: &str) -> Self {
        Recorder {
            name: name.to_string(),
            cases: Vec::new(),
        }
    }

    /// Records a plain measurement.
    pub fn push(&mut self, result: BenchResult) {
        self.cases.push(RecordedCase {
            result,
            counters: Vec::new(),
        });
    }

    /// Records a measurement backed by a full engine run, attaching its
    /// deterministic compute/message counters.
    pub fn push_with_metrics(&mut self, result: BenchResult, metrics: &RunMetrics) {
        self.cases.push(RecordedCase {
            result,
            counters: counter_pairs(metrics),
        });
    }

    /// Like [`Recorder::push_with_metrics`], with caller-supplied extra
    /// counters appended — e.g. the partition bench's milli-scaled quality
    /// figures, which are not part of [`RunMetrics`].
    pub fn push_with_metrics_and(
        &mut self,
        result: BenchResult,
        metrics: &RunMetrics,
        extras: Vec<(&'static str, u64)>,
    ) {
        let mut counters = counter_pairs(metrics);
        counters.extend(extras);
        self.cases.push(RecordedCase { result, counters });
    }

    /// Writes `BENCH_<name>.json` when `GRAPHITE_BENCH_JSON` asks for it;
    /// a no-op otherwise. Returns the path written to, if any.
    ///
    /// # Panics
    ///
    /// Panics when the destination is not writable or a configured
    /// baseline file is malformed — bench emission is an explicit request,
    /// and a silently dropped recording would poison the perf trajectory.
    pub fn finish(self) -> Option<PathBuf> {
        let dest = std::env::var("GRAPHITE_BENCH_JSON").ok()?;
        let dir = if dest == "1" || dest.is_empty() {
            PathBuf::from(".")
        } else {
            PathBuf::from(dest)
        };
        let baseline = baseline_means(&self.name);
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let doc = self.to_json(baseline.as_deref());
        std::fs::write(&path, doc.to_pretty())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("bench-json {}", path.display());
        Some(path)
    }

    /// The report as a JSON document; `baseline` maps labels to the prior
    /// recording's mean.
    fn to_json(&self, baseline: Option<&[(String, f64)]>) -> Json {
        let results = self
            .cases
            .iter()
            .map(|case| {
                let mut pairs = vec![
                    ("label".to_string(), Json::Str(case.result.label.clone())),
                    ("mean_ns".to_string(), Json::Num(case.result.mean_ns)),
                    ("best_ns".to_string(), Json::Num(case.result.best_ns)),
                    ("iters".to_string(), Json::Num(case.result.iters as f64)),
                ];
                if !case.counters.is_empty() {
                    let counters = case
                        .counters
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect();
                    pairs.push(("counters".to_string(), Json::Obj(counters)));
                }
                let prior = baseline.and_then(|b| {
                    b.iter()
                        .find(|(label, _)| *label == case.result.label)
                        .map(|&(_, mean)| mean)
                });
                if let Some(mean) = prior {
                    pairs.push(("baseline_mean_ns".to_string(), Json::Num(mean)));
                    if case.result.mean_ns > 0.0 {
                        pairs.push(("speedup".to_string(), Json::Num(mean / case.result.mean_ns)));
                    }
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("results".to_string(), Json::Arr(results)),
        ])
    }
}

/// The `RunMetrics` counters a recorded engine run carries.
fn counter_pairs(m: &RunMetrics) -> Vec<(&'static str, u64)> {
    vec![
        ("supersteps", m.supersteps),
        ("compute_calls", m.counters.compute_calls),
        ("scatter_calls", m.counters.scatter_calls),
        ("messages_sent", m.counters.messages_sent),
        ("remote_messages", m.counters.remote_messages),
        ("bytes_sent", m.counters.bytes_sent),
        ("warp_invocations", m.counters.warp_invocations),
        ("warp_suppressions", m.counters.warp_suppressions),
        ("routing_growths", m.routing_growths),
        ("checkpoints_taken", m.recovery.checkpoints_taken),
        ("checkpoint_bytes", m.recovery.checkpoint_bytes),
        ("rollbacks", m.recovery.rollbacks),
        ("supersteps_replayed", m.recovery.supersteps_replayed),
    ]
}

/// Loads the baseline recording configured for report `name`, as
/// `(label, mean_ns)` pairs.
///
/// # Panics
///
/// Panics when `GRAPHITE_BENCH_BASELINE` is set but names a missing or
/// malformed recording: comparing against garbage silently is worse than
/// failing the bench run.
fn baseline_means(name: &str) -> Option<Vec<(String, f64)>> {
    let configured = std::env::var("GRAPHITE_BENCH_BASELINE").ok()?;
    let base = PathBuf::from(&configured);
    let path = if base.is_dir() {
        base.join(format!("BENCH_{name}.json"))
    } else {
        base
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| panic!("malformed baseline {}: {e}", path.display()));
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("baseline {} has no results array", path.display()));
    Some(
        results
            .iter()
            .filter_map(|entry| {
                let label = entry.get("label")?.as_str()?.to_string();
                let mean = entry.get("mean_ns")?.as_f64()?;
                Some((label, mean))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(label: &str, mean: f64) -> BenchResult {
        BenchResult {
            label: label.to_string(),
            mean_ns: mean,
            best_ns: mean * 0.9,
            iters: 100,
        }
    }

    #[test]
    fn report_serializes_with_counters_and_baseline() {
        let mut rec = Recorder::new("unit");
        rec.push(result("a/b", 200.0));
        let mut metrics = RunMetrics {
            supersteps: 3,
            ..Default::default()
        };
        metrics.counters.compute_calls = 42;
        rec.push_with_metrics(result("c/d", 50.0), &metrics);
        let doc = rec.to_json(Some(&[("a/b".to_string(), 400.0)]));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let results = doc.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("baseline_mean_ns").and_then(Json::as_f64),
            Some(400.0)
        );
        assert_eq!(results[0].get("speedup").and_then(Json::as_f64), Some(2.0));
        let counters = results[1].get("counters").expect("counters");
        assert_eq!(
            counters.get("compute_calls").and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(counters.get("supersteps").and_then(Json::as_f64), Some(3.0));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&doc.to_pretty()).expect("parses"), doc);
    }
}
