//! Validates recorded `BENCH_<name>.json` files: checks the schema tag,
//! that every result row has a label, positive timings and iteration
//! counts, and that attached counters are not all zero (a dead engine run
//! would otherwise look like a very fast one). Used by the CI bench-smoke
//! job after a short-budget pass over every bench target.
//!
//! Usage: `bench_validate FILE...` — exits nonzero on the first invalid
//! file, printing every problem found.

use graphite_bench::json::Json;
use graphite_bench::record::SCHEMA;
use std::process::ExitCode;

/// All problems found in one recorded file.
fn problems(doc: &Json) -> Vec<String> {
    let mut out = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => out.push(format!("unknown schema {s:?} (want {SCHEMA:?})")),
        None => out.push("missing schema tag".to_string()),
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        out.push("missing or empty name".to_string());
    }
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        out.push("missing results array".to_string());
        return out;
    };
    if results.is_empty() {
        out.push("empty results array".to_string());
    }
    for (i, row) in results.iter().enumerate() {
        let label = row
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        if label.is_empty() {
            out.push(format!("results[{i}]: missing label"));
        }
        for field in ["mean_ns", "best_ns", "iters"] {
            match row.get(field).and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                Some(v) => out.push(format!("results[{i}] {label}: {field} = {v} (want > 0)")),
                None => out.push(format!("results[{i}] {label}: missing {field}")),
            }
        }
        if let Some(counters) = row.get("counters") {
            let Some(pairs) = counters.as_obj() else {
                out.push(format!("results[{i}] {label}: counters is not an object"));
                continue;
            };
            let any_nonzero = pairs
                .iter()
                .any(|(_, v)| v.as_f64().is_some_and(|n| n > 0.0));
            if !any_nonzero {
                out.push(format!(
                    "results[{i}] {label}: all counters zero (dead run?)"
                ));
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: bench_validate BENCH_<name>.json ...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failed = true;
                continue;
            }
        };
        let errs = problems(&doc);
        if errs.is_empty() {
            let rows = doc
                .get("results")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!("ok   {file}: {rows} results");
        } else {
            failed = true;
            for e in &errs {
                eprintln!("FAIL {file}: {e}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_recorder_emission() {
        let text = r#"{"schema": "graphite-bench/1", "name": "x", "results": [
            {"label": "a", "mean_ns": 10, "best_ns": 9, "iters": 5,
             "counters": {"messages_sent": 3}}]}"#;
        assert!(problems(&Json::parse(text).expect("parses")).is_empty());
    }

    #[test]
    fn rejects_zero_counters_and_bad_fields() {
        let text = r#"{"schema": "graphite-bench/1", "name": "x", "results": [
            {"label": "a", "mean_ns": 0, "best_ns": 9, "iters": 5,
             "counters": {"messages_sent": 0}}]}"#;
        let errs = problems(&Json::parse(text).expect("parses"));
        assert!(errs.iter().any(|e| e.contains("mean_ns")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("counters zero")), "{errs:?}");
    }

    #[test]
    fn rejects_wrong_schema_and_empty_results() {
        let text = r#"{"schema": "nope", "name": "", "results": []}"#;
        let errs = problems(&Json::parse(text).expect("parses"));
        assert_eq!(errs.len(), 3, "{errs:?}");
    }
}
