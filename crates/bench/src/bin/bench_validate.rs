//! Validates recorded `BENCH_<name>.json` files: checks the schema tag,
//! that every result row has a label, positive timings and iteration
//! counts, and that attached counters are not all zero (a dead engine run
//! would otherwise look like a very fast one). Used by the CI bench-smoke
//! job after a short-budget pass over every bench target.
//!
//! Usage: `bench_validate FILE...` — exits nonzero on the first invalid
//! file, printing every problem found. When the file set contains the
//! `layout` recording together with its `layout-pre` baseline and/or the
//! `engine` recording, shared labels are also cross-checked: the layout
//! pass must be purely physical, so deterministic counters and result
//! digests must be bit-identical across recordings.

use graphite_bench::json::Json;
use graphite_bench::record::SCHEMA;
use std::process::ExitCode;

/// Every counter key a producer may attach to a result row: the engine
/// metrics flattened by `Recorder::push_with_metrics` plus the partition
/// report's quality extras. A key outside this list means the producer
/// and this validator have drifted apart — fail loudly instead of
/// silently ignoring a metric nobody will ever look at.
const KNOWN_COUNTERS: [&str; 37] = [
    "supersteps",
    "compute_calls",
    "scatter_calls",
    "messages_sent",
    "remote_messages",
    "bytes_sent",
    "warp_invocations",
    "warp_suppressions",
    "routing_growths",
    "checkpoints_taken",
    "checkpoint_bytes",
    "rollbacks",
    "supersteps_replayed",
    "balance_milli",
    "interval_balance_milli",
    "cut_edges",
    "est_remote_milli",
    "queries",
    "accepted",
    "rejected",
    "cache_hits",
    "queries_per_sec_milli",
    "mean_latency_micros",
    "retries",
    "recovered",
    "shed",
    "quarantined",
    "budget_exceeded",
    "failed",
    "digest_mismatches",
    "result_digest_hi",
    "result_digest_lo",
    "batches",
    "ops",
    "dirty_vertices",
    "inc_compute_calls",
    "full_compute_calls",
];

/// Counters that must be bit-identical across the storage-layout pass:
/// the deterministic engine counters plus the result-digest halves the
/// layout bench pins. `routing_growths` is deliberately excluded — it
/// counts peak-buffer growth events, which depend on message arrival
/// order, and the layout pass is allowed to reorder sends within a
/// superstep (the digest is an order-independent fold, so correctness
/// is unaffected).
const LAYOUT_PINNED: [&str; 10] = [
    "supersteps",
    "compute_calls",
    "scatter_calls",
    "messages_sent",
    "remote_messages",
    "bytes_sent",
    "warp_invocations",
    "warp_suppressions",
    "result_digest_hi",
    "result_digest_lo",
];

/// The geo-mean speedup the committed layout recording must clear.
const LAYOUT_SPEEDUP_FLOOR: f64 = 1.5;

/// All problems found in one recorded file.
fn problems(doc: &Json) -> Vec<String> {
    let mut out = Vec::new();
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => out.push(format!("unknown schema {s:?} (want {SCHEMA:?})")),
        None => out.push("missing schema tag".to_string()),
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        out.push("missing or empty name".to_string());
    }
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        out.push("missing results array".to_string());
        return out;
    };
    if results.is_empty() {
        out.push("empty results array".to_string());
    }
    for (i, row) in results.iter().enumerate() {
        let label = row
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        if label.is_empty() {
            out.push(format!("results[{i}]: missing label"));
        }
        for field in ["mean_ns", "best_ns", "iters"] {
            match row.get(field).and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                Some(v) => out.push(format!("results[{i}] {label}: {field} = {v} (want > 0)")),
                None => out.push(format!("results[{i}] {label}: missing {field}")),
            }
        }
        if let Some(counters) = row.get("counters") {
            let Some(pairs) = counters.as_obj() else {
                out.push(format!("results[{i}] {label}: counters is not an object"));
                continue;
            };
            let any_nonzero = pairs
                .iter()
                .any(|(_, v)| v.as_f64().is_some_and(|n| n > 0.0));
            if !any_nonzero {
                out.push(format!(
                    "results[{i}] {label}: all counters zero (dead run?)"
                ));
            }
            for (k, _) in pairs {
                if !KNOWN_COUNTERS.contains(&k.as_str()) {
                    out.push(format!("results[{i}] {label}: unknown counter {k:?}"));
                }
            }
        }
        // A row with a baseline attached must carry a speedup consistent
        // with it (the Recorder derives one from the other).
        let baseline = row.get("baseline_mean_ns").and_then(Json::as_f64);
        let speedup = row.get("speedup").and_then(Json::as_f64);
        match (baseline, speedup) {
            (None, None) => {}
            (Some(base), Some(sp)) => {
                let mean = row.get("mean_ns").and_then(Json::as_f64).unwrap_or(0.0);
                if mean > 0.0 && (sp - base / mean).abs() > sp.abs() * 1e-6 + 1e-9 {
                    out.push(format!(
                        "results[{i}] {label}: speedup {sp} inconsistent with \
                         baseline_mean_ns {base} / mean_ns {mean}"
                    ));
                }
            }
            _ => out.push(format!(
                "results[{i}] {label}: baseline_mean_ns and speedup must appear together"
            )),
        }
    }
    if doc.get("name").and_then(Json::as_str) == Some("partition") {
        out.extend(partition_problems(results));
    }
    if doc.get("name").and_then(Json::as_str) == Some("serve") {
        out.extend(serve_problems(results));
    }
    if doc.get("name").and_then(Json::as_str) == Some("stream") {
        out.extend(stream_problems(results));
    }
    if matches!(
        doc.get("name").and_then(Json::as_str),
        Some("layout") | Some("layout-pre")
    ) {
        out.extend(layout_problems(results));
    }
    out
}

/// Extra checks for the layout recordings (`layout` and its `layout-pre`
/// baseline): every ICM row must be present and carry a nonzero pinned
/// result digest, and when the rows carry speedups (i.e. the recording
/// was taken against a baseline) their geo-mean must clear the ≥1.5×
/// floor the storage-layout pass claims.
fn layout_problems(results: &[Json]) -> Vec<String> {
    let mut out = Vec::new();
    for label in ["engine/sssp/icm", "engine/bfs/icm", "engine/eat/icm"] {
        if !results
            .iter()
            .any(|r| r.get("label").and_then(Json::as_str) == Some(label))
        {
            out.push(format!("layout: missing {label} row"));
        }
    }
    for row in results {
        let label = row.get("label").and_then(Json::as_str).unwrap_or_default();
        let half = |key: &str| {
            row.get("counters")
                .and_then(|c| c.get(key))
                .and_then(Json::as_f64)
        };
        match (half("result_digest_hi"), half("result_digest_lo")) {
            (Some(hi), Some(lo)) if hi > 0.0 || lo > 0.0 => {}
            (Some(_), Some(_)) => out.push(format!("layout: {label} result digest is zero")),
            _ => out.push(format!(
                "layout: {label} row carries no result_digest_hi/_lo counters"
            )),
        }
    }
    let speedups: Vec<f64> = results
        .iter()
        .filter_map(|r| r.get("speedup").and_then(Json::as_f64))
        .collect();
    if !speedups.is_empty() {
        if speedups.len() != results.len() {
            out.push(
                "layout: some rows carry a speedup and some do not \
                 (the baseline must cover every label)"
                    .to_string(),
            );
        }
        let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        if geo < LAYOUT_SPEEDUP_FLOOR {
            out.push(format!(
                "layout: geo-mean speedup {geo:.3} is below the \
                 {LAYOUT_SPEEDUP_FLOOR}x floor"
            ));
        }
    }
    out
}

/// Cross-recording checks over every file passed in one invocation: the
/// layout pass claims to be purely physical, so whenever the `layout`
/// recording is validated together with `layout-pre` (digests + engine
/// counters) or `engine` (engine counters), every shared label's pinned
/// counters must be bit-identical.
fn cross_problems(docs: &[Json]) -> Vec<String> {
    let mut out = Vec::new();
    let find = |name: &str| {
        docs.iter()
            .find(|d| d.get("name").and_then(Json::as_str) == Some(name))
    };
    let Some(layout) = find("layout") else {
        return out;
    };
    if let Some(pre) = find("layout-pre") {
        out.extend(counters_identical(
            layout,
            pre,
            "layout-pre",
            &LAYOUT_PINNED,
        ));
    }
    if let Some(engine) = find("engine") {
        // The engine recording carries no digest halves, so compare the
        // engine-counter prefix of the pinned set only.
        out.extend(counters_identical(
            layout,
            engine,
            "engine",
            &LAYOUT_PINNED[..8],
        ));
    }
    out
}

/// Compares the `keys` counters of every label present in both
/// recordings; they must match exactly.
fn counters_identical(a: &Json, b: &Json, b_name: &str, keys: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    fn rows(d: &Json) -> &[Json] {
        d.get("results").and_then(Json::as_arr).unwrap_or(&[])
    }
    let counter = |row: &Json, key: &str| {
        row.get("counters")
            .and_then(|c| c.get(key))
            .and_then(Json::as_f64)
    };
    let mut shared = 0usize;
    for row in rows(a) {
        let Some(label) = row.get("label").and_then(Json::as_str) else {
            continue;
        };
        let Some(other) = rows(b)
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some(label))
        else {
            continue;
        };
        shared += 1;
        for &key in keys {
            let (av, bv) = (counter(row, key), counter(other, key));
            if av != bv {
                out.push(format!(
                    "layout vs {b_name}: {label} counter {key:?} differs ({av:?} vs {bv:?})"
                ));
            }
        }
    }
    if shared == 0 {
        out.push(format!(
            "layout vs {b_name}: no shared labels to cross-check"
        ));
    }
    out
}

/// Extra checks for the partition report: it exists to substantiate one
/// claim — temporal-balance beats hash on interval-weighted balance under
/// skew — so a recording that does not carry (or does not support) that
/// claim is invalid.
fn partition_problems(results: &[Json]) -> Vec<String> {
    let mut out = Vec::new();
    let balance = |label: &str| {
        results
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some(label))
            .map(|r| {
                r.get("counters")
                    .and_then(|c| c.get("interval_balance_milli"))
                    .and_then(Json::as_f64)
            })
    };
    match (balance("skew/hash"), balance("skew/temporal")) {
        (Some(Some(hash)), Some(Some(temporal))) => {
            if temporal >= hash {
                out.push(format!(
                    "partition: skew/temporal interval_balance_milli {temporal} is not \
                     strictly better (lower) than skew/hash's {hash}"
                ));
            }
        }
        (Some(None), _) | (_, Some(None)) => out.push(
            "partition: skew/hash or skew/temporal row carries no interval_balance_milli counter"
                .to_string(),
        ),
        _ => out.push("partition: missing skew/hash and/or skew/temporal rows".to_string()),
    }
    out
}

/// Extra checks for the serving bench: it substantiates the serving
/// layer's acceptance claim — a resident engine with four queries in
/// flight delivers at least twice the throughput of sequential
/// per-query submission (graph rebuilt every time, no cache) — so a
/// recording that does not carry that ratio is invalid.
fn serve_problems(results: &[Json]) -> Vec<String> {
    let mut out = Vec::new();
    let counter = |label: &str, key: &str| {
        results
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some(label))
            .map(|r| {
                r.get("counters")
                    .and_then(|c| c.get(key))
                    .and_then(Json::as_f64)
            })
    };
    match (
        counter("serve/sequential", "queries_per_sec_milli"),
        counter("serve/inflight4", "queries_per_sec_milli"),
    ) {
        (Some(Some(seq)), Some(Some(conc))) => {
            if seq <= 0.0 || conc < 2.0 * seq {
                out.push(format!(
                    "serve: inflight4 queries_per_sec_milli {conc} is not >= 2x \
                     sequential's {seq}"
                ));
            }
        }
        (Some(None), _) | (_, Some(None)) => out.push(
            "serve: serve/sequential or serve/inflight4 row carries no \
             queries_per_sec_milli counter"
                .to_string(),
        ),
        _ => out.push("serve: missing serve/sequential and/or serve/inflight4 rows".to_string()),
    }
    match counter("serve/inflight4", "cache_hits") {
        Some(Some(hits)) if hits > 0.0 => {}
        Some(Some(_)) | Some(None) => out.push(
            "serve: serve/inflight4 recorded no cache hits (the query mix \
             must exercise the result cache)"
                .to_string(),
        ),
        None => {} // missing row already reported above
    }
    // Fault-domain gate: under a 5% injected-fault rate the engine must
    // keep at least 70% of its clean throughput, and every recovered
    // query must still produce the clean run's digest. A recording that
    // recovers fast by returning wrong answers is worse than one that
    // fails — `digest_mismatches` must be present and zero on every
    // fault row.
    match (
        counter("serve/faults0", "queries_per_sec_milli"),
        counter("serve/faults5", "queries_per_sec_milli"),
    ) {
        (Some(Some(clean)), Some(Some(faulted))) => {
            if clean <= 0.0 || faulted < 0.7 * clean {
                out.push(format!(
                    "serve: faults5 queries_per_sec_milli {faulted} is below 0.7x \
                     clean faults0's {clean} (fault recovery too expensive)"
                ));
            }
        }
        (Some(None), _) | (_, Some(None)) => out.push(
            "serve: serve/faults0 or serve/faults5 row carries no \
             queries_per_sec_milli counter"
                .to_string(),
        ),
        _ => out.push("serve: missing serve/faults0 and/or serve/faults5 rows".to_string()),
    }
    for label in ["serve/faults0", "serve/faults5", "serve/faults15"] {
        match counter(label, "digest_mismatches") {
            Some(Some(0.0)) => {}
            Some(Some(n)) => out.push(format!(
                "serve: {label} recorded {n} digest mismatch(es) — recovered \
                 queries must be bit-identical to clean runs"
            )),
            Some(None) => out.push(format!(
                "serve: {label} row carries no digest_mismatches counter"
            )),
            None => {} // faults15 is optional depth; faults0/faults5 absence reported above
        }
    }
    out
}

/// Extra checks for the `stream` recording: both rows present over the
/// same batch sequence, and the incremental path at least 2x faster than
/// full recomputation — the streaming subsystem's headline claim. The
/// differential test suite pins bit-identical results, so a recording
/// that fails this gate is slow, not wrong — but it still fails, because
/// an incremental engine without the speedup is pure complexity.
const STREAM_SPEEDUP_FLOOR: f64 = 2.0;

fn stream_problems(results: &[Json]) -> Vec<String> {
    let mut out = Vec::new();
    let row = |label: &str| {
        results
            .iter()
            .find(|r| r.get("label").and_then(Json::as_str) == Some(label))
    };
    let counter = |label: &str, key: &str| {
        row(label).map(|r| {
            r.get("counters")
                .and_then(|c| c.get(key))
                .and_then(Json::as_f64)
        })
    };
    let (Some(inc), Some(full)) = (row("stream/incremental"), row("stream/full")) else {
        out.push("stream: missing stream/incremental and/or stream/full rows".to_string());
        return out;
    };
    match (
        inc.get("mean_ns").and_then(Json::as_f64),
        full.get("mean_ns").and_then(Json::as_f64),
    ) {
        (Some(i), Some(f)) if i > 0.0 => {
            if f < STREAM_SPEEDUP_FLOOR * i {
                out.push(format!(
                    "stream: incremental mean_ns {i} is not >= {STREAM_SPEEDUP_FLOOR}x \
                     faster than full recompute's {f} (ratio {:.2})",
                    f / i
                ));
            }
        }
        _ => out.push("stream: rows missing positive mean_ns".to_string()),
    }
    match (
        counter("stream/incremental", "batches"),
        counter("stream/full", "batches"),
    ) {
        (Some(Some(a)), Some(Some(b))) if a == b && a > 0.0 => {}
        (Some(Some(a)), Some(Some(b))) => out.push(format!(
            "stream: rows measure different batch sequences ({a} vs {b} batches)"
        )),
        _ => out.push("stream: rows carry no batches counter".to_string()),
    }
    match counter("stream/incremental", "dirty_vertices") {
        Some(Some(d)) if d > 0.0 => {}
        _ => out.push(
            "stream: stream/incremental recorded no dirty_vertices (the \
             batches must exercise the warm-start path)"
                .to_string(),
        ),
    }
    match (
        counter("stream/incremental", "inc_compute_calls"),
        counter("stream/full", "full_compute_calls"),
    ) {
        (Some(Some(i)), Some(Some(f))) if i > 0.0 && f > 0.0 => {
            if i >= f {
                out.push(format!(
                    "stream: incremental compute calls {i} not below full \
                     recompute's {f} — the warm start is not reusing fixpoints"
                ));
            }
        }
        _ => out.push(
            "stream: rows carry no inc_compute_calls / full_compute_calls counters".to_string(),
        ),
    }
    out
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: bench_validate BENCH_<name>.json ...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    let mut parsed = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failed = true;
                continue;
            }
        };
        let errs = problems(&doc);
        if errs.is_empty() {
            let rows = doc
                .get("results")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!("ok   {file}: {rows} results");
        } else {
            failed = true;
            for e in &errs {
                eprintln!("FAIL {file}: {e}");
            }
        }
        parsed.push(doc);
    }
    for e in cross_problems(&parsed) {
        eprintln!("FAIL cross-check: {e}");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_recorder_emission() {
        let text = r#"{"schema": "graphite-bench/1", "name": "x", "results": [
            {"label": "a", "mean_ns": 10, "best_ns": 9, "iters": 5,
             "counters": {"messages_sent": 3}}]}"#;
        assert!(problems(&Json::parse(text).expect("parses")).is_empty());
    }

    #[test]
    fn rejects_zero_counters_and_bad_fields() {
        let text = r#"{"schema": "graphite-bench/1", "name": "x", "results": [
            {"label": "a", "mean_ns": 0, "best_ns": 9, "iters": 5,
             "counters": {"messages_sent": 0}}]}"#;
        let errs = problems(&Json::parse(text).expect("parses"));
        assert!(errs.iter().any(|e| e.contains("mean_ns")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("counters zero")), "{errs:?}");
    }

    #[test]
    fn partition_reports_must_prove_the_balance_claim() {
        let row = |label: &str, milli: u64| {
            format!(
                r#"{{"label": "{label}", "mean_ns": 10, "best_ns": 9, "iters": 5,
                 "counters": {{"interval_balance_milli": {milli}}}}}"#
            )
        };
        let doc = |rows: &str| {
            Json::parse(&format!(
                r#"{{"schema": "graphite-bench/1", "name": "partition", "results": [{rows}]}}"#
            ))
            .expect("parses")
        };
        // temporal strictly better than hash: valid.
        let good = format!("{}, {}", row("skew/hash", 1800), row("skew/temporal", 1100));
        assert!(problems(&doc(&good)).is_empty());
        // temporal not better: rejected.
        let tied = format!("{}, {}", row("skew/hash", 1100), row("skew/temporal", 1100));
        assert!(problems(&doc(&tied))
            .iter()
            .any(|e| e.contains("not strictly better")));
        // Missing the temporal row entirely: rejected.
        let partial = row("skew/hash", 1800);
        assert!(problems(&doc(&partial))
            .iter()
            .any(|e| e.contains("missing skew/hash and/or skew/temporal")));
        // Other report names are not subject to the partition rule.
        let other = Json::parse(&format!(
            r#"{{"schema": "graphite-bench/1", "name": "engine", "results": [{}]}}"#,
            row("skew/hash", 1800)
        ))
        .expect("parses");
        assert!(problems(&other).is_empty());
    }

    #[test]
    fn serve_reports_must_prove_the_throughput_claim() {
        let row = |label: &str, qps: u64, hits: u64| {
            format!(
                r#"{{"label": "{label}", "mean_ns": 10, "best_ns": 9, "iters": 5,
                 "counters": {{"queries_per_sec_milli": {qps}, "cache_hits": {hits},
                               "queries": 12}}}}"#
            )
        };
        let fault_row = |label: &str, qps: u64, mismatches: u64| {
            format!(
                r#"{{"label": "{label}", "mean_ns": 10, "best_ns": 9, "iters": 5,
                 "counters": {{"queries_per_sec_milli": {qps}, "queries": 12,
                               "digest_mismatches": {mismatches}}}}}"#
            )
        };
        let fault_rows = format!(
            "{}, {}",
            fault_row("serve/faults0", 200_000, 0),
            fault_row("serve/faults5", 180_000, 0)
        );
        let doc = |rows: &str| {
            Json::parse(&format!(
                r#"{{"schema": "graphite-bench/1", "name": "serve", "results": [{rows}]}}"#
            ))
            .expect("parses")
        };
        // inflight4 at >= 2x sequential throughput, with cache traffic: valid.
        let good = format!(
            "{}, {}, {fault_rows}",
            row("serve/sequential", 80_000, 0),
            row("serve/inflight4", 280_000, 8)
        );
        assert!(problems(&doc(&good)).is_empty());
        // Below the 2x ratio: rejected.
        let slow = format!(
            "{}, {}, {fault_rows}",
            row("serve/sequential", 80_000, 0),
            row("serve/inflight4", 120_000, 8)
        );
        assert!(problems(&doc(&slow))
            .iter()
            .any(|e| e.contains("not >= 2x")));
        // A cold cache cannot substantiate the serving claim: rejected.
        let cold = format!(
            "{}, {}, {fault_rows}",
            row("serve/sequential", 80_000, 0),
            row("serve/inflight4", 280_000, 0)
        );
        assert!(problems(&doc(&cold))
            .iter()
            .any(|e| e.contains("no cache hits")));
        // Missing the concurrent row entirely: rejected.
        let partial = row("serve/sequential", 80_000, 0);
        assert!(problems(&doc(&partial))
            .iter()
            .any(|e| e.contains("missing serve/sequential and/or serve/inflight4")));
    }

    #[test]
    fn serve_reports_must_prove_the_fault_tolerance_claim() {
        let fault_row = |label: &str, qps: u64, mismatches: u64| {
            format!(
                r#"{{"label": "{label}", "mean_ns": 10, "best_ns": 9, "iters": 5,
                 "counters": {{"queries_per_sec_milli": {qps}, "queries": 12,
                               "digest_mismatches": {mismatches}}}}}"#
            )
        };
        let throughput_rows = r#"{"label": "serve/sequential", "mean_ns": 10, "best_ns": 9,
                "iters": 5, "counters": {"queries_per_sec_milli": 80000, "cache_hits": 0}},
               {"label": "serve/inflight4", "mean_ns": 10, "best_ns": 9, "iters": 5,
                "counters": {"queries_per_sec_milli": 280000, "cache_hits": 8}}"#;
        let doc = |fault_rows: &str| {
            Json::parse(&format!(
                r#"{{"schema": "graphite-bench/1", "name": "serve",
                     "results": [{throughput_rows}, {fault_rows}]}}"#
            ))
            .expect("parses")
        };
        // 5%-fault throughput within 0.7x of clean, no mismatches: valid.
        let good = format!(
            "{}, {}, {}",
            fault_row("serve/faults0", 200_000, 0),
            fault_row("serve/faults5", 150_000, 0),
            fault_row("serve/faults15", 90_000, 0)
        );
        assert!(
            problems(&doc(&good)).is_empty(),
            "{:?}",
            problems(&doc(&good))
        );
        // Recovery costing more than 30% of clean throughput: rejected.
        let slow = format!(
            "{}, {}",
            fault_row("serve/faults0", 200_000, 0),
            fault_row("serve/faults5", 120_000, 0)
        );
        assert!(problems(&doc(&slow))
            .iter()
            .any(|e| e.contains("below 0.7x")));
        // A recovered query that drifted from the clean digest: rejected.
        let wrong = format!(
            "{}, {}",
            fault_row("serve/faults0", 200_000, 0),
            fault_row("serve/faults5", 190_000, 1)
        );
        assert!(problems(&doc(&wrong))
            .iter()
            .any(|e| e.contains("digest mismatch")));
        // Missing the fault rows entirely: rejected.
        assert!(problems(&doc(&fault_row("serve/faults0", 200_000, 0)))
            .iter()
            .any(|e| e.contains("missing serve/faults0 and/or serve/faults5")));
    }

    /// A layout-bench row with the given digest/speedup shape.
    fn layout_row(label: &str, digest_lo: u64, speedup: Option<f64>) -> String {
        let speedup_fields = speedup.map_or(String::new(), |s| {
            format!(r#", "baseline_mean_ns": {}, "speedup": {s}"#, 10.0 * s)
        });
        format!(
            r#"{{"label": "{label}", "mean_ns": 10, "best_ns": 9, "iters": 5{speedup_fields},
             "counters": {{"supersteps": 7, "messages_sent": 3,
                           "result_digest_hi": 1, "result_digest_lo": {digest_lo}}}}}"#
        )
    }

    fn layout_doc(name: &str, rows: &str) -> Json {
        Json::parse(&format!(
            r#"{{"schema": "graphite-bench/1", "name": "{name}", "results": [{rows}]}}"#
        ))
        .expect("parses")
    }

    #[test]
    fn layout_reports_must_pin_digests_and_clear_the_floor() {
        let all = |speedup: Option<f64>| {
            format!(
                "{}, {}, {}",
                layout_row("engine/sssp/icm", 11, speedup),
                layout_row("engine/bfs/icm", 22, speedup),
                layout_row("engine/eat/icm", 33, speedup)
            )
        };
        // No speedups (smoke emission without a baseline): structurally valid.
        assert!(problems(&layout_doc("layout", &all(None))).is_empty());
        // Speedups clearing the 1.5x geo-mean floor: valid.
        assert!(problems(&layout_doc("layout", &all(Some(1.6)))).is_empty());
        // Below the floor: rejected.
        let errs = problems(&layout_doc("layout", &all(Some(1.2))));
        assert!(
            errs.iter().any(|e| e.contains("below the 1.5x floor")),
            "{errs:?}"
        );
        // Missing a required ICM row: rejected.
        let errs = problems(&layout_doc(
            "layout",
            &layout_row("engine/sssp/icm", 11, None),
        ));
        assert!(
            errs.iter().any(|e| e.contains("missing engine/bfs/icm")),
            "{errs:?}"
        );
        // A row without the pinned digest halves: rejected.
        let bare = r#"{"label": "engine/sssp/icm", "mean_ns": 10, "best_ns": 9, "iters": 5,
             "counters": {"supersteps": 7}}"#;
        let rows = format!(
            "{bare}, {}, {}",
            layout_row("engine/bfs/icm", 22, None),
            layout_row("engine/eat/icm", 33, None)
        );
        let errs = problems(&layout_doc("layout", &rows));
        assert!(
            errs.iter()
                .any(|e| e.contains("no result_digest_hi/_lo counters")),
            "{errs:?}"
        );
    }

    #[test]
    fn layout_cross_check_pins_counters_and_digests() {
        let post = layout_doc(
            "layout",
            &format!(
                "{}, {}",
                layout_row("engine/sssp/icm", 11, None),
                layout_row("engine/bfs/icm", 22, None)
            ),
        );
        let pre_same = layout_doc(
            "layout-pre",
            &format!(
                "{}, {}",
                layout_row("engine/sssp/icm", 11, None),
                layout_row("engine/bfs/icm", 22, None)
            ),
        );
        assert!(cross_problems(&[post.clone(), pre_same]).is_empty());
        // A digest that drifted between pre and post: rejected.
        let pre_drift = layout_doc("layout-pre", &layout_row("engine/sssp/icm", 99, None));
        let errs = cross_problems(&[post.clone(), pre_drift]);
        assert!(
            errs.iter()
                .any(|e| e.contains("result_digest_lo") && e.contains("differs")),
            "{errs:?}"
        );
        // An engine recording whose shared label disagrees on a counter.
        let engine = layout_doc(
            "engine",
            r#"{"label": "engine/sssp/icm", "mean_ns": 10, "best_ns": 9, "iters": 5,
                "counters": {"supersteps": 8, "messages_sent": 3}}"#,
        );
        let errs = cross_problems(&[post.clone(), engine]);
        assert!(
            errs.iter()
                .any(|e| e.contains("supersteps") && e.contains("engine")),
            "{errs:?}"
        );
        // No layout doc in the set: nothing to cross-check.
        assert!(cross_problems(&[layout_doc("engine", &layout_row("a", 1, None))]).is_empty());
        // Disjoint labels cannot substantiate the claim: rejected.
        let disjoint = layout_doc("layout-pre", &layout_row("engine/wcc/icm", 11, None));
        let errs = cross_problems(&[post, disjoint]);
        assert!(
            errs.iter().any(|e| e.contains("no shared labels")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_counters_the_validator_does_not_know() {
        let text = r#"{"schema": "graphite-bench/1", "name": "x", "results": [
            {"label": "a", "mean_ns": 10, "best_ns": 9, "iters": 5,
             "counters": {"messages_sent": 3, "mystery_metric": 7}}]}"#;
        let errs = problems(&Json::parse(text).expect("parses"));
        assert!(
            errs.iter()
                .any(|e| e.contains("unknown counter \"mystery_metric\"")),
            "{errs:?}"
        );
    }

    #[test]
    fn baseline_and_speedup_must_agree() {
        let doc = |extra: &str| {
            Json::parse(&format!(
                r#"{{"schema": "graphite-bench/1", "name": "x", "results": [
                    {{"label": "a", "mean_ns": 10, "best_ns": 9, "iters": 5{extra}}}]}}"#
            ))
            .expect("parses")
        };
        assert!(problems(&doc(r#", "baseline_mean_ns": 30, "speedup": 3"#)).is_empty());
        let errs = problems(&doc(r#", "baseline_mean_ns": 30, "speedup": 2"#));
        assert!(errs.iter().any(|e| e.contains("inconsistent")), "{errs:?}");
        let errs = problems(&doc(r#", "baseline_mean_ns": 30"#));
        assert!(
            errs.iter().any(|e| e.contains("must appear together")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_wrong_schema_and_empty_results() {
        let text = r#"{"schema": "nope", "name": "", "results": []}"#;
        let errs = problems(&Json::parse(text).expect("parses"));
        assert_eq!(errs.len(), 3, "{errs:?}");
    }
}
