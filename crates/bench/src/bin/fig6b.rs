//! Fig. 6(b) reproduction: the inline warp-combiner ablation on the
//! MAG-like profile — compute+ time and makespan with the combiner
//! enabled vs. disabled, per algorithm (the paper reports 17–25 % lower
//! compute time and 1.2–1.5× lower makespan with it on).

use graphite_algorithms::registry::{Algo, Platform};
use graphite_bench::{fmt_dur, run_cell, Dataset, HarnessConfig};
use graphite_datagen::Profile;

fn main() {
    let config = HarnessConfig::from_env();
    let dataset = Dataset::new(Profile::Mag, &config);
    // The combiner matters for commutative-associative algorithms; LCC/TC
    // define none (paper Sec. VII-B4).
    let algos = [
        Algo::Bfs,
        Algo::Wcc,
        Algo::Pr,
        Algo::Sssp,
        Algo::Eat,
        Algo::Reach,
        Algo::Tmst,
    ];
    println!(
        "# Fig. 6(b) — warp combiner ablation on MAG profile (scale={}, workers={})",
        config.scale, config.workers
    );
    println!(
        "{:<5} {:>11} {:>11} {:>9} | {:>11} {:>11} {:>9}",
        "algo", "comp+ on", "comp+ off", "ratio", "mksp on", "mksp off", "ratio"
    );
    for algo in algos {
        let mut opts = config.run_opts();
        opts.digest = false;
        opts.combiner = true;
        let on = run_cell(&dataset, algo, Platform::Icm, &opts).expect("icm supports all");
        opts.combiner = false;
        let off = run_cell(&dataset, algo, Platform::Icm, &opts).expect("icm supports all");
        let c_on = on.metrics.compute_plus.as_secs_f64();
        let c_off = off.metrics.compute_plus.as_secs_f64();
        let m_on = on.makespan_s();
        let m_off = off.makespan_s();
        println!(
            "{:<5} {:>11} {:>11} {:>8.2}x | {:>11} {:>11} {:>8.2}x",
            algo.name(),
            fmt_dur(on.metrics.compute_plus),
            fmt_dur(off.metrics.compute_plus),
            c_off / c_on.max(1e-9),
            fmt_dur(on.metrics.makespan),
            fmt_dur(off.metrics.makespan),
            m_off / m_on.max(1e-9),
        );
    }
    println!();
    println!("# Paper shape (Fig. 6b): enabling the combiner folds each warped");
    println!("# message group to one message before compute, cutting compute time");
    println!("# 17-25% and makespan 1.2-1.5x on MAG. Gains grow with the number of");
    println!("# messages received per interval vertex.");
}
