//! Sec. VII-B8 reproduction: user-logic lines of code per algorithm and
//! per programming model, counted from the `graphite-algorithms` sources.
//! The paper reports ICM programs at 15–47 % fewer LoC than Chlonos,
//! 19–44 % fewer than GoFFish and 46–152 % fewer than TGB, and within 3
//! lines of MSB.

use std::path::PathBuf;

/// Counts the non-blank, non-comment lines of the `impl <trait> for
/// <name>` block in `source` (brace-matched).
fn impl_loc(source: &str, trait_name: &str, name: &str) -> Option<usize> {
    let needle = format!("impl {trait_name} for {name} ");
    let start = source.find(&needle)?;
    let mut depth = 0usize;
    let mut end = start;
    for (i, ch) in source[start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &source[start..=end];
    Some(
        body.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("///"))
            .count(),
    )
}

/// Counts the lines of a free function `fn <name>(` (the baselines'
/// per-algorithm result-extraction helpers — user logic the paper charges
/// to those models).
fn fn_loc(source: &str, name: &str) -> Option<usize> {
    let needle = format!("fn {name}(");
    let start = source.find(&needle)?;
    let mut depth = 0usize;
    let mut end = start;
    let mut seen_open = false;
    for (i, ch) in source[start..].char_indices() {
        match ch {
            '{' => {
                depth += 1;
                seen_open = true;
            }
            '}' => {
                depth -= 1;
                if depth == 0 && seen_open {
                    end = start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &source[start..=end];
    Some(
        body.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("///"))
            .count(),
    )
}

fn src(file: &str) -> String {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../algorithms/src");
    std::fs::read_to_string(root.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"))
}

fn main() {
    println!("# Sec. VII-B8 — user-logic LoC per algorithm and model");
    println!("# TGB counts include the model's per-algorithm result-extraction");
    println!("# helpers (replica-to-vertex projections), which are user logic");
    println!("# that model forces the programmer to write.");
    println!(
        "{:<6} {:>6} {:>9} {:>6} {:>6}",
        "algo", "ICM", "VCM/MSB", "GOF", "TGB"
    );
    type Row = (
        &'static str,
        &'static str,
        &'static str,
        Option<&'static str>,
        Option<(&'static str, &'static str)>,
        Option<(&'static str, &'static str, Option<&'static str>)>,
    );
    // (algo, file, ICM impl, VCM impl, GOF (file, impl), TGB (file, impl, helper fn))
    let rows: Vec<Row> = vec![
        ("BFS", "bfs.rs", "IcmBfs", Some("VcmBfs"), None, None),
        ("WCC", "wcc.rs", "IcmWcc", Some("VcmWcc"), None, None),
        ("SCC", "scc.rs", "IcmScc", Some("VcmScc"), None, None),
        (
            "PR",
            "pagerank.rs",
            "IcmPageRank",
            Some("VcmPageRank"),
            None,
            None,
        ),
        (
            "SSSP",
            "td_paths.rs",
            "IcmSssp",
            None,
            Some(("gof_paths.rs", "GofSssp")),
            Some(("tgb_paths.rs", "TgbSssp", None)),
        ),
        (
            "EAT",
            "td_paths.rs",
            "IcmEat",
            None,
            Some(("gof_paths.rs", "GofEat")),
            Some(("tgb_paths.rs", "TgbReach", Some("tgb_earliest_arrivals"))),
        ),
        (
            "FAST",
            "td_paths.rs",
            "IcmFast",
            None,
            Some(("gof_paths.rs", "GofFast")),
            Some(("tgb_paths.rs", "TgbFast", Some("tgb_fastest_durations"))),
        ),
        (
            "LD",
            "td_paths.rs",
            "IcmLd",
            None,
            Some(("gof_paths.rs", "GofLd")),
            Some(("tgb_paths.rs", "TgbLd", Some("tgb_latest_departures"))),
        ),
        (
            "TMST",
            "td_paths.rs",
            "IcmTmst",
            None,
            Some(("gof_paths.rs", "GofTmst")),
            Some(("tgb_paths.rs", "TgbTmst", Some("tgb_tmst_parents"))),
        ),
        (
            "RH",
            "td_paths.rs",
            "IcmReach",
            None,
            Some(("gof_paths.rs", "GofReach")),
            Some(("tgb_paths.rs", "TgbReach", None)),
        ),
        (
            "LCC",
            "lcc.rs",
            "IcmLcc",
            None,
            Some(("gof_cluster.rs", "GofLcc")),
            None,
        ),
        (
            "TC",
            "tc.rs",
            "IcmTc",
            None,
            Some(("gof_cluster.rs", "GofTc")),
            None,
        ),
    ];
    let fmt = |v: Option<usize>| v.map_or("-".to_owned(), |n| n.to_string());
    for (algo, file, icm, vcm, gof, tgb) in rows {
        let source = src(file);
        let icm_loc = impl_loc(&source, "IntervalProgram", icm);
        let vcm_loc = vcm.and_then(|n| impl_loc(&source, "VcmProgram", n));
        let gof_loc = gof.and_then(|(f, n)| impl_loc(&src(f), "GofProgram", n));
        let tgb_loc = tgb.and_then(|(f, n, helper)| {
            let text = src(f);
            let base = impl_loc(&text, "VcmProgram", n)?;
            let extra = helper.and_then(|h| fn_loc(&text, h)).unwrap_or(0);
            Some(base + extra)
        });
        println!(
            "{:<6} {:>6} {:>9} {:>6} {:>6}",
            algo,
            fmt(icm_loc),
            fmt(vcm_loc),
            fmt(gof_loc),
            fmt(tgb_loc)
        );
    }
    println!();
    println!("# Paper shape (Sec. VII-B8): ICM programs are concise — near MSB's");
    println!("# VCM size for TI algorithms (a few extra interval-API lines) and");
    println!("# substantially shorter than the GoFFish and TGB forms for TD ones,");
    println!("# since warp absorbs the temporal bookkeeping the baselines spell out");
    println!("# (per-snapshot carries, replica plumbing, departure-time checks).");
}
