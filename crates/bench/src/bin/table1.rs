//! Table 1 reproduction: dataset characteristics for the six profiles —
//! snapshot count, sizes of the largest snapshot / interval graph /
//! transformed graph / cumulative multi-snapshot representation, and the
//! average lifespans of vertices, edges and properties.

use graphite_bench::{Dataset, HarnessConfig};
use graphite_tgraph::stats::dataset_stats;

fn main() {
    let config = HarnessConfig::from_env();
    println!(
        "# Table 1 — dataset characteristics (scale={})",
        config.scale
    );
    println!(
        "{:<8} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>10} {:>10} | {:>10} {:>10} | {:>6} {:>6} {:>6}",
        "graph", "snaps", "snapV", "snapE", "intV", "intE", "transV", "transE", "multiV",
        "multiE", "lifeV", "lifeE", "lifeP"
    );
    for dataset in Dataset::all(&config) {
        let s = dataset_stats(&dataset.graph, None);
        println!(
            "{:<8} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>10} {:>10} | {:>10} {:>10} | {:>6.2} {:>6.2} {:>6.2}",
            dataset.profile.name(),
            s.snapshots,
            s.largest_snapshot.vertices,
            s.largest_snapshot.edges,
            s.interval.vertices,
            s.interval.edges,
            s.transformed.vertices,
            s.transformed.edges,
            s.multi_snapshot.vertices,
            s.multi_snapshot.edges,
            s.avg_vertex_lifespan,
            s.avg_edge_lifespan,
            s.avg_property_lifespan,
        );
    }
    println!();
    println!("# Paper shape: the transformed graph dwarfs the interval graph on");
    println!("# long-lifespan datasets (MAG, Twitter) and stays ~1:1 on unit-");
    println!("# lifespan ones (GPlus); the multi-snapshot representation grows");
    println!("# with lifespan × snapshots.");
}
