//! Fig. 5 reproduction: per-algorithm makespan (split into compute+,
//! exclusive messaging and barrier time) plus compute-call and message
//! counts, for every dataset and platform.
//!
//! Pass `--quick` to run a 4-algorithm subset.

use graphite_bench::record::Recorder;
use graphite_bench::timing::BenchResult;
use graphite_bench::{algos_from_args, fmt_dur, run_matrix, Dataset, HarnessConfig};

fn main() {
    let config = HarnessConfig::from_env();
    let algos = algos_from_args();
    let mut rec = Recorder::new("fig5");
    println!(
        "# Fig. 5 — makespan, time splits, and primitive counts (scale={}, workers={})",
        config.scale, config.workers
    );
    println!(
        "{:<8} {:<5} {:<4} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12} {:>7}",
        "graph",
        "algo",
        "plat",
        "makespan",
        "compute+",
        "messaging",
        "barrier",
        "computeCalls",
        "messages",
        "bytes",
        "steps"
    );
    for dataset in Dataset::all(&config) {
        eprintln!("running {} ...", dataset.profile.name());
        for cell in run_matrix(&dataset, &algos, &config.run_opts()) {
            let m = &cell.metrics;
            println!(
                "{:<8} {:<5} {:<4} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12} {:>7}",
                cell.dataset,
                cell.algo.name(),
                cell.platform.name(),
                fmt_dur(m.makespan),
                fmt_dur(m.compute_plus),
                fmt_dur(m.messaging),
                fmt_dur(m.barrier),
                m.counters.compute_calls,
                m.counters.messages_sent,
                m.counters.bytes_sent,
                m.supersteps,
            );
            let ns = m.makespan.as_nanos() as f64;
            rec.push_with_metrics(
                BenchResult {
                    label: format!(
                        "fig5/{}/{}/{}",
                        cell.dataset,
                        cell.algo.name(),
                        cell.platform.name()
                    ),
                    mean_ns: ns,
                    best_ns: ns,
                    iters: 1,
                },
                m,
            );
        }
    }
    rec.finish();
    println!();
    println!("# Paper shape (Fig. 5): ICM's compute-call and message counts drop by");
    println!("# the average lifespan factor vs. the per-snapshot platforms on long-");
    println!("# lifespan graphs, and match them exactly on unit-lifespan graphs.");
    println!("# Barrier time dominates on the large-diameter USRN.");
}
