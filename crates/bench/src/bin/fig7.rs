//! Fig. 7 reproduction: weak scaling of GRAPHITE — the LDBC-style graph
//! grows proportionally with the worker count (fixed per-worker load)
//! over 1, 2, 4, 8 and 10 workers, running all 12 algorithms.
//!
//! Hardware note: the paper's workers are cluster *nodes*; ours are
//! threads multiplexed onto however many cores this machine has. On a
//! single core, ideal weak scaling shows makespans growing linearly with
//! the worker count (total work grows, compute power doesn't), so we also
//! report the core-normalized makespan `T_m / m`, whose flatness is the
//! available weak-scaling signal; with >= 10 real cores the raw makespan
//! itself should stay flat, as in the paper.

use graphite_algorithms::registry::Platform;
use graphite_bench::{algos_from_args, fmt_dur, run_cell, Dataset, HarnessConfig};
use graphite_datagen::{weak_scaling_graph, Profile};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let config = HarnessConfig::from_env();
    let algos = algos_from_args();
    // Per-worker budget (vertices); the paper uses 10M/worker.
    let per_worker = 250 * config.scale;
    println!(
        "# Fig. 7 — weak scaling, {} algorithms, {} vertices/worker",
        algos.len(),
        per_worker
    );
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>12}",
        "workers", "makespan", "normalized", "efficiency", "calls"
    );
    let mut base_norm: Option<f64> = None;
    for m in [1usize, 2, 4, 8, 10] {
        let graph = Arc::new(weak_scaling_graph(m, per_worker, config.seed));
        let dataset = Dataset::from_graph(Profile::Twitter, graph);
        let mut total = Duration::ZERO;
        let mut calls = 0u64;
        let mut opts = config.run_opts();
        opts.workers = m;
        opts.digest = false;
        for &algo in &algos {
            if let Some(cell) = run_cell(&dataset, algo, Platform::Icm, &opts) {
                total += cell.metrics.makespan;
                calls += cell.metrics.counters.compute_calls;
            }
        }
        let norm = total.as_secs_f64() / m as f64;
        let eff = base_norm.get_or_insert(norm);
        println!(
            "{:<8} {:>10} {:>13.3}s {:>11.0}% {:>12}",
            m,
            fmt_dur(total),
            norm,
            100.0 * *eff / norm.max(1e-9),
            calls,
        );
    }
    println!();
    println!("# Paper shape (Fig. 7): near-ideal weak scaling, 95-106% efficiency —");
    println!("# the makespan stays flat as workers and load grow together. Here the");
    println!("# normalized column plays that role when cores < workers.");
}
