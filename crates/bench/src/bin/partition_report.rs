//! `partition_report` — offline partition-quality report and trace-driven
//! rebalancing recommendation (DESIGN.md §13).
//!
//! ```text
//! partition_report GRAPH.tg [--workers N] [--strategy NAME|all]
//!                  [--trace TRACE.jsonl] [--seed N]
//!                  [--emit-assignment FILE]
//! ```
//!
//! Without `--trace`, prints the [`graphite_part::PartitionStats`] quality
//! report of each requested strategy on the graph: balance factor,
//! interval-weighted balance, edge cut, and the estimated cross-worker
//! message fraction.
//!
//! With `--trace`, additionally ingests a `graphite-trace/1` JSONL stream
//! from a prior run (produced via `GRAPHITE_TRACE_JSON`), sums the
//! observed per-worker compute load, and prints the seeded deterministic
//! rebalancing recommendation of [`graphite_part::rebalance()`] — its
//! quality report plus an assignment digest, so two invocations over the
//! same inputs are trivially comparable.
//!
//! `--emit-assignment FILE` writes the recommended placement (the
//! rebalanced map when `--trace` is given, otherwise the first requested
//! strategy's map) in the `ExplicitAssignment` text format, ready to be
//! replayed in a live run via [`PartitionStrategy::Explicit`] — closing
//! the measure → rebalance → run loop.

use graphite_bench::tracefmt;
use graphite_part::{rebalance, stats, ExplicitAssignment, PartitionStrategy};
use graphite_tgraph::graph::TemporalGraph;
use graphite_tgraph::io;
use std::process::ExitCode;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a dense assignment: two maps agree iff the digests agree.
fn assignment_digest(graph: &TemporalGraph, map: &graphite_bsp::partition::PartitionMap) -> u64 {
    let mut bytes = Vec::with_capacity(2 * graph.num_vertices());
    for v in graph.vertex_indices() {
        bytes.extend_from_slice(&(map.worker_of(v) as u16).to_le_bytes());
    }
    fnv1a(&bytes)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: partition_report GRAPH.tg [--workers N] [--strategy \
         hash|chunked|ldg|temporal|all] [--trace TRACE.jsonl] [--seed N] \
         [--emit-assignment FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut workers = 4usize;
    let mut strategy = String::from("all");
    let mut trace: Option<String> = None;
    let mut emit: Option<String> = None;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(w) => workers = w,
                None => return usage(),
            },
            "--strategy" => match args.next() {
                Some(s) => strategy = s,
                None => return usage(),
            },
            "--trace" => match args.next() {
                Some(t) => trace = Some(t),
                None => return usage(),
            },
            "--emit-assignment" => match args.next() {
                Some(f) => emit = Some(f),
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if path.is_none() => path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let graph = match io::load(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let strategies: Vec<PartitionStrategy> = if strategy.eq_ignore_ascii_case("all") {
        PartitionStrategy::ALL.to_vec()
    } else {
        match PartitionStrategy::parse(&strategy) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown partition strategy {strategy:?}");
                return usage();
            }
        }
    };

    let mut first_map = None;
    for s in &strategies {
        let map = match s.build(&graph, workers) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{}: {e}", s.name());
                return ExitCode::FAILURE;
            }
        };
        println!("strategy {}", s.name());
        println!(
            "digest               {:#018x}",
            assignment_digest(&graph, &map)
        );
        print!("{}", stats(&graph, &map).render());
        println!();
        if first_map.is_none() {
            first_map = Some(map);
        }
    }
    // Without --trace, the emitted assignment is the first strategy's map.
    let mut recommended = first_map;

    if let Some(trace_path) = trace {
        let text = match std::fs::read_to_string(&trace_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match tracefmt::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let observed = tracefmt::observed_loads(&doc);
        // The trace was recorded under the *first* requested strategy
        // (hash, unless --strategy narrowed it) — that is the placement
        // whose observed skew we are correcting.
        let current_strategy = strategies.first().cloned().unwrap_or_default();
        let current = match current_strategy.build(&graph, observed.len().max(1)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("current placement: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "rebalance from trace {} ({} worker(s) observed, seed {seed})",
            doc.label,
            observed.len()
        );
        match rebalance(&graph, &current, &observed, workers, seed) {
            Ok(next) => {
                println!("recommended assignment (over {} worker(s)):", workers);
                println!(
                    "digest               {:#018x}",
                    assignment_digest(&graph, &next)
                );
                print!("{}", stats(&graph, &next).render());
                recommended = Some(next);
            }
            Err(e) => {
                eprintln!("rebalance: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(file) = emit {
        let Some(map) = recommended.as_ref() else {
            eprintln!("--emit-assignment: no placement was computed");
            return ExitCode::FAILURE;
        };
        let text = ExplicitAssignment::from_map(&graph, map).to_text();
        if let Err(e) = std::fs::write(&file, text) {
            eprintln!("cannot write {file}: {e}");
            return ExitCode::FAILURE;
        }
        println!("assignment written to {file}");
    }
    ExitCode::SUCCESS
}
