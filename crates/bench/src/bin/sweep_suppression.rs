//! Ablation sweep: the warp-suppression threshold (DESIGN.md §9 — a
//! generalization of Fig. 6(c)). The paper fixes the threshold at 70 %;
//! this sweeps it from "never suppress" to "always suppress" on the
//! unit-lifespan GPlus profile and on the mixed Reddit profile, showing
//! where the crossover between warp overhead and per-point explosion
//! sits.

use graphite_algorithms::registry::{Algo, Platform};
use graphite_bench::{fmt_dur, run_cell, Dataset, HarnessConfig};
use graphite_datagen::Profile;

fn main() {
    let config = HarnessConfig::from_env();
    println!(
        "# Suppression-threshold sweep (scale={}, workers={})",
        config.scale, config.workers
    );
    for profile in [Profile::GPlus, Profile::Reddit] {
        let dataset = Dataset::new(profile, &config);
        println!("\n## {} (BFS + SSSP makespans)", profile.name());
        println!(
            "{:<10} {:>10} {:>10} {:>12} {:>12}",
            "threshold", "BFS", "SSSP", "suppressed", "warped"
        );
        for threshold in [
            None,
            Some(1.0),
            Some(0.9),
            Some(0.7),
            Some(0.5),
            Some(0.3),
            Some(0.0),
        ] {
            let mut opts = config.run_opts();
            opts.digest = false;
            opts.suppression = threshold;
            let bfs = run_cell(&dataset, Algo::Bfs, Platform::Icm, &opts).expect("icm");
            let sssp = run_cell(&dataset, Algo::Sssp, Platform::Icm, &opts).expect("icm");
            let label = threshold.map_or("off".to_owned(), |t| format!("{t:.1}"));
            println!(
                "{:<10} {:>10} {:>10} {:>12} {:>12}",
                label,
                fmt_dur(bfs.metrics.makespan),
                fmt_dur(sssp.metrics.makespan),
                bfs.metrics.counters.warp_suppressions + sssp.metrics.counters.warp_suppressions,
                bfs.metrics.counters.warp_invocations + sssp.metrics.counters.warp_invocations,
            );
        }
    }
    println!();
    println!("# Expectation: on GPlus (all-unit messages) any threshold <= 1.0");
    println!("# suppresses everything and beats 'off'; on Reddit (96% unit) the");
    println!("# default 0.7 still suppresses most vertices. Results are identical");
    println!("# at every setting — suppression is a pure execution-path choice.");
}
