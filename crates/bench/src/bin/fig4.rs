//! Fig. 4 reproduction: log-log scatter of (a) compute calls vs. compute+
//! time and (b) messages vs. messaging time across the whole
//! (dataset × algorithm × platform) corpus, with the R² correlation the
//! paper reports (0.80 for compute+, 0.95 for messaging).
//!
//! Pass `--quick` to run a 4-algorithm subset.

use graphite_bench::record::Recorder;
use graphite_bench::timing::BenchResult;
use graphite_bench::{algos_from_args, log_log_r2, run_matrix, Dataset, HarnessConfig};

fn main() {
    let config = HarnessConfig::from_env();
    let algos = algos_from_args();
    let mut rec = Recorder::new("fig4");
    println!(
        "# Fig. 4 — primitive counts vs. time, log-log (scale={}, workers={})",
        config.scale, config.workers
    );
    let mut compute_pts = Vec::new();
    let mut message_pts = Vec::new();
    println!(
        "{:<8} {:<5} {:<4} {:>12} {:>12} {:>12} {:>12}",
        "graph", "algo", "plat", "computeCalls", "compute+_s", "messages", "messaging_s"
    );
    for dataset in Dataset::all(&config) {
        eprintln!("running {} ...", dataset.profile.name());
        for cell in run_matrix(&dataset, &algos, &config.run_opts()) {
            let m = &cell.metrics;
            let cp = m.compute_plus.as_secs_f64();
            let ms = m.messaging.as_secs_f64();
            println!(
                "{:<8} {:<5} {:<4} {:>12} {:>12.6} {:>12} {:>12.6}",
                cell.dataset,
                cell.algo.name(),
                cell.platform.name(),
                m.counters.compute_calls,
                cp,
                m.counters.messages_sent,
                ms,
            );
            compute_pts.push((m.counters.compute_calls as f64, cp));
            message_pts.push((m.counters.messages_sent as f64, ms));
            let ns = m.makespan.as_nanos() as f64;
            rec.push_with_metrics(
                BenchResult {
                    label: format!(
                        "fig4/{}/{}/{}",
                        cell.dataset,
                        cell.algo.name(),
                        cell.platform.name()
                    ),
                    mean_ns: ns,
                    best_ns: ns,
                    iters: 1,
                },
                m,
            );
        }
    }
    rec.finish();
    println!();
    println!("points: {}", compute_pts.len());
    println!(
        "R^2 (compute calls vs compute+ time):   {:.3}",
        log_log_r2(&compute_pts)
    );
    println!(
        "R^2 (messages vs messaging time):       {:.3}",
        log_log_r2(&message_pts)
    );
    println!();
    println!("# Paper shape (Fig. 4): high correlation for both factors");
    println!("# (paper: R^2 = 0.80 compute+, 0.95 messaging) — platform time is");
    println!("# explained by the primitives, not engineering artifacts.");
}
