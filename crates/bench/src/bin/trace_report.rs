//! `trace_report` — render a `graphite-trace/1` JSONL file as a
//! per-superstep profile, or compare two traces.
//!
//! ```text
//! trace_report TRACE.jsonl [--top K]        per-step profile
//! trace_report TRACE.jsonl --balance        per-worker load shares
//! trace_report A.jsonl B.jsonl              side-by-side comparison
//! ```
//!
//! `--balance` prints each worker's share of active interval-vertices
//! and compute time per superstep plus run totals — the observed-skew
//! view that feeds `partition_report`'s rebalancing (DESIGN.md §13).
//!
//! Produce a trace with e.g.
//! `GRAPHITE_TRACE=full GRAPHITE_TRACE_JSON=trace.jsonl graphite run bfs icm ...`
//! — see EXPERIMENTS.md "Reading a trace" for a worked example.

use graphite_bench::tracefmt;
use std::process::ExitCode;

fn load(path: &str) -> Result<tracefmt::TraceDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    tracefmt::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut top_k = 4usize;
    let mut balance = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                top_k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(top_k)
                    .max(1)
            }
            "--balance" => balance = true,
            "--help" | "-h" => {
                eprintln!("usage: trace_report TRACE.jsonl [SECOND.jsonl] [--top K] [--balance]");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }

    let result = match (paths.as_slice(), balance) {
        ([one], false) => load(one).map(|doc| tracefmt::render(&doc, top_k)),
        ([one], true) => load(one).map(|doc| tracefmt::render_balance(&doc)),
        ([a, b], false) => {
            load(a).and_then(|da| load(b).map(|db| tracefmt::render_compare(&da, &db)))
        }
        _ => {
            Err("usage: trace_report TRACE.jsonl [SECOND.jsonl] [--top K] [--balance]".to_string())
        }
    };
    match result {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_report: {e}");
            ExitCode::FAILURE
        }
    }
}
