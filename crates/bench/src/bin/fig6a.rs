//! Fig. 6(a) reproduction: estimated in-memory footprint of each graph
//! representation — the interval graph (GRAPHITE), the transformed graph
//! (TGB), the largest single snapshot (MSB / GoFFish), and a Chlonos
//! batch.

use graphite_bench::{Dataset, HarnessConfig};
use graphite_tgraph::stats::memory_footprint;

const CHLONOS_BATCH: u64 = 8;

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KiB", bytes as f64 / (1 << 10) as f64)
    }
}

fn main() {
    let config = HarnessConfig::from_env();
    println!(
        "# Fig. 6(a) — representation memory footprints (scale={}, batch={})",
        config.scale, CHLONOS_BATCH
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "graph", "interval", "transformed", "snapshot", "chl-batch", "T/I"
    );
    for dataset in Dataset::all(&config) {
        let f = memory_footprint(&dataset.graph, None, CHLONOS_BATCH);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>7.1}x",
            dataset.profile.name(),
            human(f.interval_bytes),
            human(f.transformed_bytes),
            human(f.largest_snapshot_bytes),
            human(f.snapshot_batch_bytes),
            f.transformed_bytes as f64 / f.interval_bytes.max(1) as f64,
        );
    }
    println!();
    println!("# Paper shape (Fig. 6a): TGB's transformed graph has the largest");
    println!("# footprint (4-6x the interval graph on MAG/WebUK in the paper — the");
    println!("# DNL cases), followed by the Chlonos batch; MSB's single snapshot is");
    println!("# the smallest. GRAPHITE's interval graph stays compact.");
}
