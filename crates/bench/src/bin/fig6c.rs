//! Fig. 6(c) reproduction: warp suppression on the GPlus-like profile
//! (unit-length lifespans — ICM's worst case). With suppression on
//! (default threshold 70 %), messages bypass warp and execute per
//! time-point; the paper reports 25–40 % lower makespans, bringing
//! GRAPHITE within ~7 % of the baselines.

use graphite_algorithms::registry::{Algo, Platform};
use graphite_bench::{fmt_dur, run_cell, Dataset, HarnessConfig};
use graphite_datagen::Profile;

fn main() {
    let config = HarnessConfig::from_env();
    let dataset = Dataset::new(Profile::GPlus, &config);
    let algos = [
        Algo::Bfs,
        Algo::Wcc,
        Algo::Pr,
        Algo::Sssp,
        Algo::Eat,
        Algo::Reach,
    ];
    println!(
        "# Fig. 6(c) — warp suppression ablation on GPlus profile (scale={}, workers={})",
        config.scale, config.workers
    );
    println!(
        "{:<5} {:>11} {:>11} {:>9} {:>12} {:>12}",
        "algo", "mksp on", "mksp off", "ratio", "suppressed", "warped"
    );
    for algo in algos {
        let mut opts = config.run_opts();
        opts.digest = false;
        opts.suppression = Some(0.7);
        let on = run_cell(&dataset, algo, Platform::Icm, &opts).expect("icm supports all");
        opts.suppression = None;
        let off = run_cell(&dataset, algo, Platform::Icm, &opts).expect("icm supports all");
        println!(
            "{:<5} {:>11} {:>11} {:>8.2}x {:>12} {:>12}",
            algo.name(),
            fmt_dur(on.metrics.makespan),
            fmt_dur(off.metrics.makespan),
            off.makespan_s() / on.makespan_s().max(1e-9),
            on.metrics.counters.warp_suppressions,
            on.metrics.counters.warp_invocations,
        );
    }
    println!();
    println!("# Paper shape (Fig. 6c): on unit-lifespan graphs there is nothing to");
    println!("# share, so warp is pure overhead; suppression routes messages around");
    println!("# it (25-40% lower makespan in the paper), degenerating to time-point");
    println!("# execution without affecting results.");
}
