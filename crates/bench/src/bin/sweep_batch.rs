//! Ablation sweep: Chlonos batch size (DESIGN.md §9). The paper observes
//! that Twitter only fits 6 snapshots per batch, forcing 5 batches and
//! costing ~4.5× the messages ICM sends; with everything in one batch
//! Chlonos matches ICM's message count on TI algorithms. This sweeps the
//! batch size on the Twitter profile and prints the message-count decay.

use graphite_algorithms::registry::{Algo, Platform, RunOpts};
use graphite_bench::{fmt_dur, run_cell, Dataset, HarnessConfig};
use graphite_datagen::Profile;

fn main() {
    let config = HarnessConfig::from_env();
    let dataset = Dataset::new(Profile::Twitter, &config);
    println!(
        "# Chlonos batch-size sweep on Twitter profile (scale={}, workers={})",
        config.scale, config.workers
    );
    let mut opts = config.run_opts();
    opts.digest = false;
    let icm = run_cell(&dataset, Algo::Bfs, Platform::Icm, &opts).expect("icm");
    println!(
        "ICM reference: {} messages, makespan {}\n",
        icm.metrics.counters.messages_sent,
        fmt_dur(icm.metrics.makespan)
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12}",
        "batch", "messages", "vs ICM", "makespan", "computeCalls"
    );
    for batch in [1usize, 2, 4, 6, 8, 15, 30] {
        let opts = RunOpts {
            batch_size: batch,
            digest: false,
            ..opts.clone()
        };
        let chl = run_cell(&dataset, Algo::Bfs, Platform::Chlonos, &opts).expect("chl");
        println!(
            "{:<8} {:>12} {:>11.2}x {:>10} {:>12}",
            batch,
            chl.metrics.counters.messages_sent,
            chl.metrics.counters.messages_sent as f64
                / icm.metrics.counters.messages_sent.max(1) as f64,
            fmt_dur(chl.metrics.makespan),
            chl.metrics.counters.compute_calls,
        );
    }
    println!();
    println!("# Expectation (Sec. VII-B3): batch=1 degenerates to MSB's message");
    println!("# count; growing batches merge messages that span adjacent snapshots");
    println!("# until one batch approaches ICM's count — but compute calls stay");
    println!("# constant (Chlonos never shares compute, only messages).");
}
