//! Table 2 reproduction: the ratio of each baseline's makespan over
//! GRAPHITE's, averaged (geometric mean) over the TI and TD algorithm
//! classes, per dataset. Ratios > 1 mean ICM is faster.
//!
//! Pass `--quick` to run a 4-algorithm subset.

use graphite_algorithms::registry::Platform;
use graphite_bench::record::Recorder;
use graphite_bench::timing::BenchResult;
use graphite_bench::{
    algos_from_args, by_dataset_algo, mean_ratio, run_matrix, Dataset, HarnessConfig,
};
use std::collections::BTreeMap;

fn main() {
    let config = HarnessConfig::from_env();
    let algos = algos_from_args();
    println!(
        "# Table 2 — baseline/GRAPHITE makespan ratios (scale={}, workers={}, {} algorithms)",
        config.scale,
        config.workers,
        algos.len()
    );

    let mut cells = Vec::new();
    for dataset in Dataset::all(&config) {
        eprintln!("running {} ...", dataset.profile.name());
        cells.extend(run_matrix(&dataset, &algos, &config.run_opts()));
    }

    let mut rec = Recorder::new("table2");
    for cell in &cells {
        let ns = cell.metrics.makespan.as_nanos() as f64;
        rec.push_with_metrics(
            BenchResult {
                label: format!(
                    "table2/{}/{}/{}",
                    cell.dataset,
                    cell.algo.name(),
                    cell.platform.name()
                ),
                mean_ns: ns,
                best_ns: ns,
                iters: 1,
            },
            &cell.metrics,
        );
    }
    rec.finish();

    // (platform, class, dataset) -> Vec<(baseline_s, icm_s)>
    type RatioKey<'a> = (&'a str, bool, &'a str);
    let mut ratios: BTreeMap<RatioKey, Vec<(f64, f64)>> = BTreeMap::new();
    for ((dataset, _algo), group) in by_dataset_algo(&cells) {
        let Some(icm) = group.iter().find(|c| c.platform == Platform::Icm) else {
            continue;
        };
        for cell in &group {
            if cell.platform == Platform::Icm {
                continue;
            }
            ratios
                .entry((cell.platform.name(), cell.algo.is_ti(), dataset))
                .or_default()
                .push((cell.makespan_s(), icm.makespan_s()));
        }
    }

    let datasets = ["GPlus", "Reddit", "USRN", "Twitter", "MAG", "WebUK"];
    println!(
        "\n{:<6} {:<5} {}",
        "class",
        "plat",
        datasets.map(|d| format!("{d:>9}")).join(" ")
    );
    for (class, is_ti) in [("TI", true), ("TD", false)] {
        let plats: &[&str] = if is_ti {
            &["MSB", "CHL"]
        } else {
            &["TGB", "GOF"]
        };
        for plat in plats {
            let row: Vec<String> = datasets
                .iter()
                .map(|d| {
                    ratios
                        .get(&(*plat, is_ti, *d))
                        .map(|pairs| format!("{:>8.2}x", mean_ratio(pairs)))
                        .unwrap_or_else(|| format!("{:>9}", "-"))
                })
                .collect();
            println!("{class:<6} {plat:<5} {}", row.join(" "));
        }
    }

    println!();
    println!("# Paper shape (Table 2): ratios ~1x on unit-lifespan graphs (GPlus),");
    println!("# rising with entity lifespans — largest on Twitter/MAG, with TGB and");
    println!("# the snapshot platforms paying redundant calls/messages that ICM's");
    println!("# warp shares away. On USRN (static topology) ICM matches MSB/CHL for");
    println!("# TI and beats TGB/GOF for TD.");
}
