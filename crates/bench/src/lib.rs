//! # graphite-bench — the evaluation harness
//!
//! Regenerates every table and figure of the ICM paper's evaluation
//! (Sec. VII) over the synthetic dataset profiles:
//!
//! * `table1` — dataset characteristics (Table 1)
//! * `table2` — baseline/GRAPHITE makespan ratios (Table 2)
//! * `fig4`   — primitive-count vs. time correlation (Fig. 4)
//! * `fig5`   — per-algorithm makespan / calls / messages (Fig. 5)
//! * `fig6a`  — representation memory footprints (Fig. 6a)
//! * `fig6b`  — warp-combiner ablation (Fig. 6b)
//! * `fig6c`  — warp-suppression ablation (Fig. 6c)
//! * `fig7`   — weak scaling (Fig. 7)
//! * `loc`    — user-logic lines-of-code comparison (Sec. VII-B8)
//!
//! Each binary prints machine-readable rows plus the qualitative
//! expectation from the paper. `GRAPHITE_SCALE` scales the datasets;
//! `GRAPHITE_WORKERS` sets the worker count (default 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod record;
pub mod timing;
pub mod tracefmt;

use graphite_algorithms::registry::{self, Algo, Platform, RunOpts};
use graphite_bsp::metrics::RunMetrics;
use graphite_datagen::Profile;
use graphite_tgraph::graph::TemporalGraph;
use graphite_tgraph::transform::TransformedGraph;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Harness-wide configuration, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Dataset scale multiplier (`GRAPHITE_SCALE`, default 1).
    pub scale: usize,
    /// BSP worker count (`GRAPHITE_WORKERS`, default 4).
    pub workers: usize,
    /// Seed for all generators (`GRAPHITE_SEED`, default 42).
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let get = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        HarnessConfig {
            scale: get("GRAPHITE_SCALE", 1).max(1),
            workers: get("GRAPHITE_WORKERS", 4).max(1),
            seed: get("GRAPHITE_SEED", 42) as u64,
        }
    }

    /// Run options derived from this configuration.
    pub fn run_opts(&self) -> RunOpts {
        RunOpts {
            workers: self.workers,
            ..Default::default()
        }
    }
}

/// One generated dataset plus its (lazily built) transformed graph.
pub struct Dataset {
    /// The profile this models.
    pub profile: Profile,
    /// The temporal graph.
    pub graph: Arc<TemporalGraph>,
    transformed: std::sync::OnceLock<Arc<TransformedGraph>>,
}

impl Dataset {
    /// Generates the dataset for `profile`.
    pub fn new(profile: Profile, config: &HarnessConfig) -> Self {
        Dataset {
            profile,
            graph: Arc::new(profile.generate(config.scale, config.seed)),
            transformed: std::sync::OnceLock::new(),
        }
    }

    /// Wraps an already-generated graph (for custom datasets).
    pub fn from_graph(profile: Profile, graph: Arc<TemporalGraph>) -> Self {
        Dataset {
            profile,
            graph,
            transformed: std::sync::OnceLock::new(),
        }
    }

    /// All six paper datasets, optionally filtered by `GRAPHITE_PROFILES`
    /// (comma-separated, case-insensitive profile names — e.g.
    /// `GRAPHITE_PROFILES=gplus,usrn` for a quick smoke run).
    pub fn all(config: &HarnessConfig) -> Vec<Dataset> {
        let filter: Option<Vec<String>> = std::env::var("GRAPHITE_PROFILES").ok().map(|v| {
            v.split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .filter(|s| !s.is_empty())
                .collect()
        });
        Profile::ALL
            .iter()
            .filter(|p| {
                filter
                    .as_ref()
                    .is_none_or(|names| names.iter().any(|n| n == &p.name().to_ascii_lowercase()))
            })
            .map(|p| Dataset::new(*p, config))
            .collect()
    }

    /// The transformed (time-expanded) graph, built once on demand.
    pub fn transformed(&self) -> Arc<TransformedGraph> {
        Arc::clone(self.transformed.get_or_init(|| {
            let opts = graphite_tgraph::transform::TransformOptions::default();
            Arc::new(graphite_tgraph::transform::transform_for_paths(
                &self.graph,
                &opts,
            ))
        }))
    }
}

/// The engine bench's dataset: a small power-law graph with long edge
/// lifespans — the regime where warp's interval sharing pays off.
///
/// Shared between `benches/engine.rs` and `benches/layout.rs` so the
/// storage-layout pass (DESIGN.md §16) is measured on exactly the
/// workload whose counters the committed `BENCH_engine.json` pins.
pub fn engine_dataset() -> Dataset {
    let params = graphite_datagen::GenParams {
        vertices: 300,
        edges: 2400,
        snapshots: 24,
        topology: graphite_datagen::Topology::PowerLaw {
            edges_per_vertex: 8,
        },
        vertex_lifespans: graphite_datagen::LifespanModel::Full,
        edge_lifespans: graphite_datagen::LifespanModel::Geometric { mean: 18.0 },
        props: graphite_datagen::PropModel {
            mean_segment: 9.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed: 99,
    };
    Dataset::from_graph(
        Profile::Twitter,
        Arc::new(graphite_datagen::generate(&params)),
    )
}

/// One cell of the evaluation matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Dataset name.
    pub dataset: &'static str,
    /// Algorithm.
    pub algo: Algo,
    /// Platform.
    pub platform: Platform,
    /// The run's metrics.
    pub metrics: RunMetrics,
}

impl MatrixCell {
    /// Makespan in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.metrics.makespan.as_secs_f64()
    }
}

/// Runs `algo` on `platform` over `dataset`, if supported.
pub fn run_cell(
    dataset: &Dataset,
    algo: Algo,
    platform: Platform,
    opts: &RunOpts,
) -> Option<MatrixCell> {
    let transformed = (platform == Platform::Tgb).then(|| dataset.transformed());
    let outcome = registry::run(algo, platform, &dataset.graph, transformed.as_ref(), opts).ok()?;
    Some(MatrixCell {
        dataset: dataset.profile.name(),
        algo,
        platform,
        metrics: outcome.metrics,
    })
}

/// The platforms an algorithm is compared on (ICM first).
pub fn platforms_for(algo: Algo) -> Vec<Platform> {
    let mut out = vec![Platform::Icm];
    for p in [
        Platform::Msb,
        Platform::Chlonos,
        Platform::Tgb,
        Platform::Goffish,
    ] {
        if p.supports(algo) {
            out.push(p);
        }
    }
    out
}

/// Runs the full (algorithm × platform) matrix over `dataset`.
pub fn run_matrix(dataset: &Dataset, algos: &[Algo], opts: &RunOpts) -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for &algo in algos {
        for platform in platforms_for(algo) {
            if let Some(cell) = run_cell(dataset, algo, platform, opts) {
                cells.push(cell);
            }
        }
    }
    cells
}

/// The algorithm subset used by quick harness runs (one cheap and one
/// message-heavy algorithm per class).
pub fn quick_algos() -> Vec<Algo> {
    vec![Algo::Bfs, Algo::Pr, Algo::Sssp, Algo::Reach]
}

/// The full 12-algorithm list.
pub fn all_algos() -> Vec<Algo> {
    Algo::ALL.to_vec()
}

/// Selects algorithms from argv: `--quick` for the subset, otherwise all.
pub fn algos_from_args() -> Vec<Algo> {
    if std::env::args().any(|a| a == "--quick") {
        quick_algos()
    } else {
        all_algos()
    }
}

/// Geometric mean of `baseline/icm` makespan ratios (Table 2 statistic).
pub fn mean_ratio(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|(base, icm)| (base.max(1e-9) / icm.max(1e-9)).ln())
        .sum();
    (log_sum / pairs.len() as f64).exp()
}

/// Ordinary-least-squares R² of `y` against `x` in log10–log10 space
/// (the Fig. 4 statistic).
pub fn log_log_r2(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.log10(), y.log10()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    (sxy * sxy) / (sxx * syy)
}

/// Pretty-prints a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Groups cells by `(dataset, algo)` for ratio computations.
pub fn by_dataset_algo(
    cells: &[MatrixCell],
) -> BTreeMap<(&'static str, &'static str), Vec<&MatrixCell>> {
    let mut map: BTreeMap<(&'static str, &'static str), Vec<&MatrixCell>> = BTreeMap::new();
    for c in cells {
        map.entry((c.dataset, c.algo.name())).or_default().push(c);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_of_a_perfect_power_law_is_one() {
        let pts: Vec<(f64, f64)> = (1..50).map(|i| (i as f64, (i * i) as f64)).collect();
        let r2 = log_log_r2(&pts);
        assert!((r2 - 1.0).abs() < 1e-9, "{r2}");
    }

    #[test]
    fn r2_of_noise_is_low() {
        // Deterministic pseudo-noise.
        let pts: Vec<(f64, f64)> = (1..200u64)
            .map(|i| {
                let x = (i % 17 + 1) as f64;
                let y = (i.wrapping_mul(2654435761) % 97 + 1) as f64;
                (x, y)
            })
            .collect();
        assert!(log_log_r2(&pts) < 0.3);
    }

    #[test]
    fn mean_ratio_is_geometric() {
        let r = mean_ratio(&[(4.0, 1.0), (1.0, 4.0)]);
        assert!((r - 1.0).abs() < 1e-9);
        let r = mean_ratio(&[(8.0, 2.0), (8.0, 2.0)]);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quick_matrix_runs_on_a_small_profile() {
        let config = HarnessConfig {
            scale: 1,
            workers: 2,
            seed: 7,
        };
        // A deliberately tiny graph keeps this test fast.
        let dataset = Dataset::from_graph(
            Profile::GPlus,
            Arc::new(graphite_datagen::generate(
                &graphite_datagen::GenParams::small(7),
            )),
        );
        let cells = run_matrix(&dataset, &[Algo::Bfs, Algo::Sssp], &config.run_opts());
        // BFS: ICM+MSB+CHL; SSSP: ICM+TGB+GOF.
        assert_eq!(cells.len(), 6);
        for c in &cells {
            assert!(
                c.metrics.counters.compute_calls > 0,
                "{:?}/{:?}",
                c.algo,
                c.platform
            );
        }
    }
}
