//! A minimal, dependency-free micro-benchmark harness used by the
//! `benches/` targets (`cargo bench` runs them with `harness = false`).
//!
//! Each case is warmed up, then run in adaptively sized batches until a
//! time budget is spent; the per-iteration mean and the batch minimum are
//! reported. All clock reads go through [`graphite_bsp::metrics::now`],
//! the workspace's one sanctioned wall-clock source.

use graphite_bsp::metrics::now;
use std::hint::black_box;
use std::time::Duration;

/// Target measurement budget per case.
const BUDGET: Duration = Duration::from_millis(200);
/// Warmup budget per case.
const WARMUP: Duration = Duration::from_millis(50);

/// Times `f` and prints one result row: label, mean ns/iter over the whole
/// budget, and the fastest single batch (per-iter).
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) {
    // Warmup until the budget is spent (at least once).
    let start = now();
    let mut batch = 1u64;
    loop {
        for _ in 0..batch {
            black_box(f());
        }
        if start.elapsed() >= WARMUP {
            break;
        }
        batch = batch.saturating_mul(2);
    }
    // Measure in batches; keep doubling until a batch costs >=1ms so the
    // clock resolution stays negligible.
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    let run_start = now();
    loop {
        let t0 = now();
        for _ in 0..batch {
            black_box(f());
        }
        let took = t0.elapsed();
        iters += batch;
        if took > Duration::ZERO {
            let per = took / u32::try_from(batch).unwrap_or(u32::MAX);
            best = best.min(per);
        }
        if run_start.elapsed() >= BUDGET {
            break;
        }
        if took < Duration::from_millis(1) {
            batch = batch.saturating_mul(2);
        }
    }
    let total = run_start.elapsed();
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!(
        "bench {label:<40} {:>12.1} ns/iter  (best {:>10?}, {iters} iters)",
        mean_ns, best
    );
}

/// Like [`bench`] but annotates the label with an element count and also
/// reports per-element throughput.
pub fn bench_throughput<T>(label: &str, elements: u64, mut f: impl FnMut() -> T) {
    let start = now();
    let mut reps = 0u64;
    loop {
        black_box(f());
        reps += 1;
        if start.elapsed() >= BUDGET || reps >= 1_000_000 {
            break;
        }
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() as f64 / reps as f64;
    let per_elem = per_iter / elements as f64;
    println!("bench {label:<40} {per_iter:>12.1} ns/iter  ({per_elem:>8.2} ns/elem, {reps} iters)");
}
