//! A minimal, dependency-free micro-benchmark harness used by the
//! `benches/` targets (`cargo bench` runs them with `harness = false`).
//!
//! Each case is warmed up, then run in adaptively sized batches until a
//! time budget is spent; the per-iteration mean and the batch minimum are
//! reported. All clock reads go through [`graphite_bsp::metrics::now`],
//! the workspace's one sanctioned wall-clock source.
//!
//! Every case also *returns* its measurement as a [`BenchResult`], so
//! bench targets can feed a [`crate::record::Recorder`] and emit the
//! machine-readable `BENCH_<name>.json` trajectory described in
//! EXPERIMENTS.md. The measurement budget defaults to 200 ms per case and
//! can be overridden with `GRAPHITE_BENCH_BUDGET_MS` (the CI smoke job
//! runs with a few milliseconds).

use graphite_bsp::metrics::now;
use std::hint::black_box;
use std::time::Duration;

/// Default target measurement budget per case.
const DEFAULT_BUDGET: Duration = Duration::from_millis(200);

/// One measured case: what the text row prints, as data.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Case label, e.g. `warp/messages/256`.
    pub label: String,
    /// Mean ns per iteration over the whole measurement budget.
    pub mean_ns: f64,
    /// Fastest observed batch, per iteration, in ns.
    pub best_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The per-case measurement budget: `GRAPHITE_BENCH_BUDGET_MS` when set
/// and parseable, 200 ms otherwise.
pub fn budget() -> Duration {
    std::env::var("GRAPHITE_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(DEFAULT_BUDGET, Duration::from_millis)
}

/// Times `f`, prints one result row — label, mean ns/iter over the whole
/// budget, fastest single batch — and returns the measurement.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) -> BenchResult {
    let budget = budget();
    let warmup = budget / 4;
    // Warmup until the budget is spent (at least once).
    let start = now();
    let mut batch = 1u64;
    loop {
        for _ in 0..batch {
            black_box(f());
        }
        if start.elapsed() >= warmup {
            break;
        }
        batch = batch.saturating_mul(2);
    }
    // Measure in batches; keep doubling until a batch costs >=1ms so the
    // clock resolution stays negligible.
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    let run_start = now();
    loop {
        let t0 = now();
        for _ in 0..batch {
            black_box(f());
        }
        let took = t0.elapsed();
        iters += batch;
        if took > Duration::ZERO {
            let per = took / u32::try_from(batch).unwrap_or(u32::MAX);
            best = best.min(per);
        }
        if run_start.elapsed() >= budget {
            break;
        }
        if took < Duration::from_millis(1) {
            batch = batch.saturating_mul(2);
        }
    }
    let total = run_start.elapsed();
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!(
        "bench {label:<40} {:>12.1} ns/iter  (best {:>10?}, {iters} iters)",
        mean_ns, best
    );
    BenchResult {
        label: label.to_string(),
        mean_ns,
        best_ns: best.as_nanos() as f64,
        iters,
    }
}

/// Like [`fn@bench`] but annotates the label with an element count and also
/// reports per-element throughput.
pub fn bench_throughput<T>(label: &str, elements: u64, mut f: impl FnMut() -> T) -> BenchResult {
    let budget = budget();
    let start = now();
    let mut reps = 0u64;
    let mut best = Duration::MAX;
    loop {
        let t0 = now();
        black_box(f());
        let took = t0.elapsed();
        if took > Duration::ZERO {
            best = best.min(took);
        }
        reps += 1;
        if start.elapsed() >= budget || reps >= 1_000_000 {
            break;
        }
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() as f64 / reps as f64;
    let per_elem = per_iter / elements as f64;
    println!("bench {label:<40} {per_iter:>12.1} ns/iter  ({per_elem:>8.2} ns/elem, {reps} iters)");
    BenchResult {
        label: label.to_string(),
        mean_ns: per_iter,
        best_ns: best.as_nanos() as f64,
        iters: reps,
    }
}
