//! A minimal hand-rolled JSON value — writer and parser — for the
//! recorded benchmark pipeline (`BENCH_<name>.json`).
//!
//! The workspace is dependency-free by policy (DESIGN.md), so this module
//! implements just enough of RFC 8259 for the bench schema: objects keep
//! insertion order (a vector of pairs, not a hash map, so emitted files
//! are stable and diffs are readable), numbers are `f64`, and strings
//! support the standard escapes. It is not a general-purpose JSON library
//! and does not try to be one.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&fmt_num(*v)),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a byte offset and description on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

/// Numbers print as integers when exact, else shortest-roundtrip float.
fn fmt_num(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; clamp to null-like 0 rather than emit
        // an unparseable token.
        "0".to_string()
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "malformed \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("malformed escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_bench_schema() {
        let doc = Json::Obj(vec![
            ("schema".to_string(), Json::Str("graphite-bench/1".into())),
            ("name".to_string(), Json::Str("warp".into())),
            (
                "results".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("label".to_string(), Json::Str("warp/messages/16".into())),
                    ("mean_ns".to_string(), Json::Num(1651.25)),
                    ("iters".to_string(), Json::Num(131_072.0)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("results")
                .and_then(|r| r.as_arr())
                .and_then(|a| a[0].get("mean_ns"))
                .and_then(Json::as_f64),
            Some(1651.25)
        );
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(42.0).to_pretty().trim(), "42");
        assert_eq!(Json::Num(1.5).to_pretty().trim(), "1.5");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd\te".into());
        let text = s.to_pretty();
        assert_eq!(Json::parse(&text).expect("escapes parse"), s);
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "\"open", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#" {"a": [1, {"b": null}, true], "c": -2.5e3} "#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(-2500.0));
    }
}
