//! Parser and text renderer for `graphite-trace/1` JSONL streams.
//!
//! The engine side of tracing lives in `graphite_bsp::trace`; this module
//! is the *consumer*: it parses a trace file written via
//! `GRAPHITE_TRACE_JSON` into a [`TraceDoc`] and renders the
//! per-superstep profile that the `trace_report` binary prints — per-step
//! phase timings, top-k workers by compute time, the compute skew ratio,
//! and the warp amplification factor (see EXPERIMENTS.md "Reading a
//! trace" for an annotated example).
//!
//! Recovered runs are handled in stream order: replayed supersteps appear
//! again after their `rollback` marker, exactly as executed.

use crate::json::Json;

/// One worker's share of one superstep (a `worker_step` event).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerRow {
    /// Worker index.
    pub worker: u64,
    /// Interval-vertices with pending messages at step start.
    pub active: u64,
    /// Messages delivered to this worker for this step.
    pub msgs_in: u64,
    /// User compute invocations this worker made.
    pub compute_calls: u64,
    /// User scatter invocations this worker made.
    pub scatter_calls: u64,
    /// Messages this worker emitted.
    pub msgs_out: u64,
    /// Of those, messages that crossed a worker boundary.
    pub remote_msgs: u64,
    /// Serialized bytes this worker shipped.
    pub bytes_out: u64,
    /// Warp invocations (ICM only).
    pub warp_invocations: u64,
    /// Warp suppressions (ICM only).
    pub warp_suppressions: u64,
    /// Warp tuples produced (ICM extra; 0 when absent).
    pub warp_tuples: u64,
    /// Total messages across warp tuple groups (ICM extra; 0 when
    /// absent). `warp_group_msgs / msgs_in` is the warp amplification —
    /// how many times the average message is re-presented to compute.
    pub warp_group_msgs: u64,
    /// Wall-clock compute span (0 under Counters level).
    pub compute_ns: u64,
    /// Wall-clock warp span (ICM extra; 0 when absent).
    pub warp_ns: u64,
}

/// One superstep: its worker rows plus the `step_end` barrier summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepProfile {
    /// 1-based superstep number (repeats after a rollback).
    pub step: u64,
    /// Per-worker rows, in worker order.
    pub workers: Vec<WorkerRow>,
    /// Messages routed this step.
    pub sent: u64,
    /// Whether the run halted at this barrier.
    pub halted: bool,
    /// Slowest worker's compute span.
    pub compute_ns: u64,
    /// Exchange span.
    pub messaging_ns: u64,
    /// Barrier/bookkeeping span.
    pub barrier_ns: u64,
}

impl StepProfile {
    /// Max-over-mean of the workers' compute spans — 1.0 means perfectly
    /// balanced, `workers.len()` means one worker did everything. Falls
    /// back to message counts when the stream carries no timing
    /// (Counters level), and to 1.0 when there is nothing to compare.
    pub fn skew(&self) -> f64 {
        let timed: Vec<u64> = self.workers.iter().map(|w| w.compute_ns).collect();
        let loads = if timed.iter().any(|&v| v > 0) {
            timed
        } else {
            self.workers.iter().map(|w| w.msgs_in).collect()
        };
        let n = loads.len();
        let total: u64 = loads.iter().sum();
        if n == 0 || total == 0 {
            return 1.0;
        }
        let max = loads.iter().max().copied().unwrap_or(0);
        max as f64 * n as f64 / total as f64
    }

    /// Warp amplification: messages presented to compute through warp
    /// tuple groups, over messages delivered. `None` when no messages
    /// arrived or the stream has no warp extras (non-ICM platforms).
    pub fn warp_amplification(&self) -> Option<f64> {
        let group: u64 = self.workers.iter().map(|w| w.warp_group_msgs).sum();
        let msgs: u64 = self.workers.iter().map(|w| w.msgs_in).sum();
        if msgs == 0 || group == 0 {
            return None;
        }
        Some(group as f64 / msgs as f64)
    }
}

/// A recovery marker, kept in stream position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Marker {
    /// Checkpoint after `step`, `bytes` serialized.
    Checkpoint {
        /// Superstep the checkpoint covers.
        step: u64,
        /// Serialized payload size.
        bytes: u64,
    },
    /// Rollback from `from_step` to `to_step`.
    Rollback {
        /// Superstep the failed attempt had reached.
        from_step: u64,
        /// Checkpointed superstep the run resumed after.
        to_step: u64,
    },
}

/// One entry of the stream, in order: a completed superstep or a
/// recovery marker.
#[derive(Clone, Debug, PartialEq)]
pub enum Entry {
    /// A superstep closed by its `step_end`.
    Step(StepProfile),
    /// A checkpoint/rollback marker.
    Marker(Marker),
}

/// Serving-layer fault-domain counters, carried as `serve_*` extras on
/// the health row `graphite serve` appends to the stream (DESIGN.md
/// §15). All zero when the stream has no serving-layer events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeHealthRow {
    /// Serve-level retry attempts after transient failures.
    pub retries: u64,
    /// Queries that succeeded on a retry attempt.
    pub recovered: u64,
    /// Queries shed at the pending-depth watermark.
    pub sheds: u64,
    /// Submissions fast-failed by the quarantine table.
    pub quarantined: u64,
    /// Queries terminated by their superstep budget.
    pub budget_exceeded: u64,
    /// Queries that terminally failed.
    pub failed: u64,
}

/// Streaming-layer counters, carried as `stream_*` extras on the
/// per-batch rows `graphite stream` appends (DESIGN.md §17). All zero
/// when the stream has no streaming-layer events. The `_ns` spans are
/// populated only under `GRAPHITE_TRACE=full`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamRow {
    /// Update batches ingested.
    pub batches: u64,
    /// Delta operations applied.
    pub ops: u64,
    /// Vertices re-seeded by warm-started maintenance runs.
    pub dirty_vertices: u64,
    /// Compute calls across the incremental maintenance runs.
    pub inc_compute_calls: u64,
    /// Batches that ran the differential from-scratch check.
    pub digest_checks: u64,
    /// Differential checks that caught a divergence (must stay zero).
    pub digest_mismatches: u64,
    /// Nanoseconds applying deltas through the overlay.
    pub apply_ns: u64,
    /// Nanoseconds in warm-started incremental recomputation.
    pub incremental_ns: u64,
    /// Nanoseconds in differential from-scratch recomputation.
    pub full_check_ns: u64,
}

/// A parsed `graphite-trace/1` stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDoc {
    /// The run label from the header line.
    pub label: String,
    /// Steps and markers in stream order.
    pub entries: Vec<Entry>,
    /// Serving-layer health counters summed over the stream's rows.
    pub serve: ServeHealthRow,
    /// Streaming-layer counters summed over the stream's rows.
    pub stream: StreamRow,
}

impl TraceDoc {
    /// The step profiles only, in stream order.
    pub fn steps(&self) -> impl Iterator<Item = &StepProfile> + '_ {
        self.entries.iter().filter_map(|e| match e {
            Entry::Step(s) => Some(s),
            Entry::Marker(_) => None,
        })
    }

    /// Sums a per-worker field over the whole stream (replayed steps
    /// included, mirroring how `RunMetrics` accumulates counters over a
    /// recovered run).
    pub fn sum(&self, f: impl Fn(&WorkerRow) -> u64) -> u64 {
        self.steps().flat_map(|s| s.workers.iter()).map(&f).sum()
    }
}

fn get_u64(obj: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field {key:?}"))
}

/// Parses a `graphite-trace/1` JSONL stream.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed JSON, a
/// wrong/missing schema header, unknown event kinds, or missing fields —
/// the schema is versioned precisely so readers can refuse what they do
/// not understand.
pub fn parse(text: &str) -> Result<TraceDoc, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header)) = lines.next() else {
        return Err("empty trace: no header line".into());
    };
    let header = Json::parse(header).map_err(|e| format!("header: {e}"))?;
    match header.get("schema").and_then(Json::as_str) {
        Some("graphite-trace/1") => {}
        Some(other) => return Err(format!("unsupported schema {other:?}")),
        None => return Err("header carries no \"schema\" field".into()),
    }
    let label = header
        .get("label")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();

    let mut doc = TraceDoc {
        label,
        entries: Vec::new(),
        serve: ServeHealthRow::default(),
        stream: StreamRow::default(),
    };
    let mut pending: Vec<WorkerRow> = Vec::new();
    for (i, line) in lines {
        let n = i + 1;
        let ev = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        match ev.get("ev").and_then(Json::as_str) {
            Some("worker_step") => {
                let mut row = WorkerRow {
                    worker: get_u64(&ev, "worker", n)?,
                    active: get_u64(&ev, "active", n)?,
                    msgs_in: get_u64(&ev, "msgs_in", n)?,
                    compute_calls: get_u64(&ev, "compute_calls", n)?,
                    scatter_calls: get_u64(&ev, "scatter_calls", n)?,
                    msgs_out: get_u64(&ev, "msgs_out", n)?,
                    remote_msgs: get_u64(&ev, "remote_msgs", n)?,
                    bytes_out: get_u64(&ev, "bytes_out", n)?,
                    warp_invocations: get_u64(&ev, "warp_invocations", n)?,
                    warp_suppressions: get_u64(&ev, "warp_suppressions", n)?,
                    compute_ns: get_u64(&ev, "compute_ns", n)?,
                    ..WorkerRow::default()
                };
                if let Some(extras) = ev.get("extras") {
                    row.warp_tuples = get_u64(extras, "warp_tuples", n).unwrap_or(0);
                    row.warp_group_msgs = get_u64(extras, "warp_group_msgs", n).unwrap_or(0);
                    row.warp_ns = get_u64(extras, "warp_ns", n).unwrap_or(0);
                    // Serving-layer health counters ride the same extras
                    // slot on the health row `graphite serve` appends.
                    doc.serve.retries += get_u64(extras, "serve_retries", n).unwrap_or(0);
                    doc.serve.recovered += get_u64(extras, "serve_recovered", n).unwrap_or(0);
                    doc.serve.sheds += get_u64(extras, "serve_sheds", n).unwrap_or(0);
                    doc.serve.quarantined += get_u64(extras, "serve_quarantined", n).unwrap_or(0);
                    doc.serve.budget_exceeded +=
                        get_u64(extras, "serve_budget_exceeded", n).unwrap_or(0);
                    doc.serve.failed += get_u64(extras, "serve_failed", n).unwrap_or(0);
                    // Streaming-layer per-batch counters ride the same
                    // slot on the rows `graphite stream` appends.
                    doc.stream.batches += get_u64(extras, "stream_batches", n).unwrap_or(0);
                    doc.stream.ops += get_u64(extras, "stream_ops", n).unwrap_or(0);
                    doc.stream.dirty_vertices +=
                        get_u64(extras, "stream_dirty_vertices", n).unwrap_or(0);
                    doc.stream.inc_compute_calls +=
                        get_u64(extras, "stream_inc_compute_calls", n).unwrap_or(0);
                    doc.stream.digest_checks +=
                        get_u64(extras, "stream_digest_checks", n).unwrap_or(0);
                    doc.stream.digest_mismatches +=
                        get_u64(extras, "stream_digest_mismatches", n).unwrap_or(0);
                    doc.stream.apply_ns += get_u64(extras, "stream_apply_ns", n).unwrap_or(0);
                    doc.stream.incremental_ns +=
                        get_u64(extras, "stream_incremental_ns", n).unwrap_or(0);
                    doc.stream.full_check_ns +=
                        get_u64(extras, "stream_full_check_ns", n).unwrap_or(0);
                }
                pending.push(row);
            }
            Some("step_end") => {
                doc.entries.push(Entry::Step(StepProfile {
                    step: get_u64(&ev, "step", n)?,
                    workers: std::mem::take(&mut pending),
                    sent: get_u64(&ev, "sent", n)?,
                    halted: matches!(ev.get("halted"), Some(Json::Bool(true))),
                    compute_ns: get_u64(&ev, "compute_ns", n)?,
                    messaging_ns: get_u64(&ev, "messaging_ns", n)?,
                    barrier_ns: get_u64(&ev, "barrier_ns", n)?,
                }));
            }
            Some("checkpoint") => doc.entries.push(Entry::Marker(Marker::Checkpoint {
                step: get_u64(&ev, "step", n)?,
                bytes: get_u64(&ev, "bytes", n)?,
            })),
            Some("rollback") => doc.entries.push(Entry::Marker(Marker::Rollback {
                from_step: get_u64(&ev, "from_step", n)?,
                to_step: get_u64(&ev, "to_step", n)?,
            })),
            Some(other) => return Err(format!("line {n}: unknown event kind {other:?}")),
            None => return Err(format!("line {n}: event carries no \"ev\" field")),
        }
    }
    if !pending.is_empty() {
        return Err(format!(
            "{} trailing worker_step event(s) without a step_end",
            pending.len()
        ));
    }
    Ok(doc)
}

/// `1234567` → `"1.23ms"` (ns / µs / ms / s, two significant decimals).
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

/// Renders the per-superstep profile: one block per step with phase
/// timings, skew, warp amplification, and the top-`top_k` workers by
/// compute time (by messages in, under Counters-level streams).
pub fn render(doc: &TraceDoc, top_k: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "trace: {}", doc.label);
    for entry in &doc.entries {
        match entry {
            Entry::Marker(Marker::Checkpoint { step, bytes }) => {
                let _ = writeln!(out, "  -- checkpoint after step {step} ({bytes} bytes)");
            }
            Entry::Marker(Marker::Rollback { from_step, to_step }) => {
                let _ = writeln!(
                    out,
                    "  -- ROLLBACK from step {from_step} to step {to_step} (replay follows)"
                );
            }
            Entry::Step(s) => {
                let _ = write!(
                    out,
                    "step {:>3}: sent {:>8}  compute {:>9}  messaging {:>9}  barrier {:>9}  skew {:.2}x",
                    s.step,
                    s.sent,
                    fmt_ns(s.compute_ns),
                    fmt_ns(s.messaging_ns),
                    fmt_ns(s.barrier_ns),
                    s.skew(),
                );
                match s.warp_amplification() {
                    Some(amp) => {
                        let _ = writeln!(out, "  warp-amp {amp:.2}x");
                    }
                    None => out.push('\n'),
                }
                let mut ranked: Vec<&WorkerRow> = s.workers.iter().collect();
                ranked.sort_by_key(|w| (std::cmp::Reverse(w.compute_ns.max(w.msgs_in)), w.worker));
                for w in ranked.into_iter().take(top_k) {
                    let _ = writeln!(
                        out,
                        "    w{:<3} compute {:>9}  active {:>6}  in {:>7}  out {:>7}  \
                         bytes {:>8}  warp {}/{} (sup {})",
                        w.worker,
                        fmt_ns(w.compute_ns),
                        w.active,
                        w.msgs_in,
                        w.msgs_out,
                        w.bytes_out,
                        w.warp_invocations,
                        w.warp_tuples,
                        w.warp_suppressions,
                    );
                }
                if s.halted {
                    let _ = writeln!(out, "  -- halted");
                }
            }
        }
    }
    let steps = doc
        .entries
        .iter()
        .filter(|e| matches!(e, Entry::Step(_)))
        .count();
    let _ = writeln!(
        out,
        "total: {} step(s), {} msgs, {} remote, {} bytes, {} compute calls, {} scatter calls",
        steps,
        doc.sum(|w| w.msgs_out),
        doc.sum(|w| w.remote_msgs),
        doc.sum(|w| w.bytes_out),
        doc.sum(|w| w.compute_calls),
        doc.sum(|w| w.scatter_calls),
    );
    out
}

/// Renders the placement-balance report (`trace_report --balance`): per
/// superstep, each worker's share of active interval-vertices and of
/// compute time, plus the max-over-mean skew of each. This is the
/// observed-load view that `partition_report` consumes when it
/// recommends a rebalanced assignment (DESIGN.md §13): a worker whose
/// compute share persistently exceeds `1/workers` is the skew the
/// temporal-balance strategy exists to remove.
pub fn render_balance(doc: &TraceDoc) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "balance: {}", doc.label);
    let mut totals: Vec<(u64, u64, u64)> = Vec::new(); // (worker, active, compute_ns)
    for s in doc.steps() {
        let active_total: u64 = s.workers.iter().map(|w| w.active).sum();
        let ns_total: u64 = s.workers.iter().map(|w| w.compute_ns).sum();
        let _ = writeln!(
            out,
            "step {:>3}: active {:>7}  compute {:>9}  skew {:.2}x",
            s.step,
            active_total,
            fmt_ns(s.compute_ns),
            s.skew(),
        );
        for w in &s.workers {
            let share = |part: u64, total: u64| {
                if total == 0 {
                    0.0
                } else {
                    100.0 * part as f64 / total as f64
                }
            };
            let _ = writeln!(
                out,
                "    w{:<3} active {:>6} ({:>5.1}%)  compute {:>9} ({:>5.1}%)",
                w.worker,
                w.active,
                share(w.active, active_total),
                fmt_ns(w.compute_ns),
                share(w.compute_ns, ns_total),
            );
            match totals.iter_mut().find(|(id, _, _)| *id == w.worker) {
                Some(t) => {
                    t.1 += w.active;
                    t.2 += w.compute_ns;
                }
                None => totals.push((w.worker, w.active, w.compute_ns)),
            }
        }
    }
    totals.sort_unstable();
    let active_total: u64 = totals.iter().map(|t| t.1).sum();
    let ns_total: u64 = totals.iter().map(|t| t.2).sum();
    let _ = writeln!(out, "run totals:");
    for (worker, active, ns) in &totals {
        let share = |part: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * part as f64 / total as f64
            }
        };
        let _ = writeln!(
            out,
            "    w{:<3} active {:>7} ({:>5.1}%)  compute {:>9} ({:>5.1}%)",
            worker,
            active,
            share(*active, active_total),
            fmt_ns(*ns),
            share(*ns, ns_total),
        );
    }
    out
}

/// Total observed compute load per worker over the whole stream, indexed
/// by worker id (dense, zero-filled). Falls back to delivered message
/// counts when the stream carries no timing (Counters level) — the same
/// fallback [`StepProfile::skew`] uses. This is the `observed` input to
/// `graphite_part::rebalance`.
pub fn observed_loads(doc: &TraceDoc) -> Vec<f64> {
    let max_worker = doc
        .steps()
        .flat_map(|s| s.workers.iter())
        .map(|w| w.worker)
        .max();
    let Some(max_worker) = max_worker else {
        return Vec::new();
    };
    let mut by_ns = vec![0u64; max_worker as usize + 1];
    let mut by_msgs = vec![0u64; max_worker as usize + 1];
    for s in doc.steps() {
        for w in &s.workers {
            by_ns[w.worker as usize] += w.compute_ns;
            by_msgs[w.worker as usize] += w.msgs_in;
        }
    }
    let loads = if by_ns.iter().any(|&v| v > 0) {
        by_ns
    } else {
        by_msgs
    };
    loads.into_iter().map(|v| v as f64).collect()
}

/// Renders a side-by-side comparison of two traces (e.g. across
/// commits): per stream-ordered step, the deterministic load deltas; any
/// divergence in message counts between two runs of the same workload is
/// a semantic change, not noise.
pub fn render_compare(a: &TraceDoc, b: &TraceDoc) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "compare: {}  vs  {}", a.label, b.label);
    let sa: Vec<&StepProfile> = a.steps().collect();
    let sb: Vec<&StepProfile> = b.steps().collect();
    if sa.len() != sb.len() {
        let _ = writeln!(out, "step count differs: {} vs {}", sa.len(), sb.len());
    }
    let delta = |x: u64, y: u64| y as i64 - x as i64;
    for (x, y) in sa.iter().zip(&sb) {
        let msgs_x: u64 = x.workers.iter().map(|w| w.msgs_out).sum();
        let msgs_y: u64 = y.workers.iter().map(|w| w.msgs_out).sum();
        let bytes_x: u64 = x.workers.iter().map(|w| w.bytes_out).sum();
        let bytes_y: u64 = y.workers.iter().map(|w| w.bytes_out).sum();
        let calls_x: u64 = x.workers.iter().map(|w| w.compute_calls).sum();
        let calls_y: u64 = y.workers.iter().map(|w| w.compute_calls).sum();
        let _ = writeln!(
            out,
            "step {:>3}: msgs {:>8} ({:+})  bytes {:>8} ({:+})  calls {:>7} ({:+})  \
             compute {:>9} vs {:>9}",
            x.step,
            msgs_y,
            delta(msgs_x, msgs_y),
            bytes_y,
            delta(bytes_x, bytes_y),
            calls_y,
            delta(calls_x, calls_y),
            fmt_ns(x.compute_ns),
            fmt_ns(y.compute_ns),
        );
    }
    let _ = writeln!(
        out,
        "total msgs: {} vs {} | bytes: {} vs {} | compute calls: {} vs {}",
        a.sum(|w| w.msgs_out),
        b.sum(|w| w.msgs_out),
        a.sum(|w| w.bytes_out),
        b.sum(|w| w.bytes_out),
        a.sum(|w| w.compute_calls),
        b.sum(|w| w.compute_calls),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"schema\":\"graphite-trace/1\",\"label\":\"bfs/icm\"}\n",
        "{\"ev\":\"worker_step\",\"step\":1,\"worker\":0,\"active\":3,\"msgs_in\":6,",
        "\"compute_calls\":4,\"scatter_calls\":2,\"msgs_out\":5,\"remote_msgs\":2,",
        "\"bytes_out\":40,\"warp_invocations\":1,\"warp_suppressions\":0,",
        "\"compute_ns\":3000,\"extras\":{\"warp_tuples\":4,\"warp_group_msgs\":12}}\n",
        "{\"ev\":\"worker_step\",\"step\":1,\"worker\":1,\"active\":1,\"msgs_in\":2,",
        "\"compute_calls\":1,\"scatter_calls\":1,\"msgs_out\":1,\"remote_msgs\":1,",
        "\"bytes_out\":8,\"warp_invocations\":0,\"warp_suppressions\":1,",
        "\"compute_ns\":1000,\"extras\":{}}\n",
        "{\"ev\":\"checkpoint\",\"step\":1,\"bytes\":128}\n",
        "{\"ev\":\"rollback\",\"from_step\":2,\"to_step\":1}\n",
        "{\"ev\":\"step_end\",\"step\":1,\"sent\":6,\"halted\":true,",
        "\"compute_ns\":3000,\"messaging_ns\":500,\"barrier_ns\":100}\n",
    );

    #[test]
    fn parses_the_sample_stream() {
        let doc = parse(SAMPLE).expect("sample parses");
        assert_eq!(doc.label, "bfs/icm");
        let steps: Vec<&StepProfile> = doc.steps().collect();
        assert_eq!(steps.len(), 1);
        let s = steps[0];
        assert_eq!(s.workers.len(), 2);
        assert_eq!(s.sent, 6);
        assert!(s.halted);
        assert_eq!(s.workers[0].warp_tuples, 4);
        assert_eq!(s.workers[1].warp_suppressions, 1);
        assert_eq!(doc.sum(|w| w.msgs_out), 6);
        assert_eq!(doc.sum(|w| w.bytes_out), 48);
        assert_eq!(doc.sum(|w| w.scatter_calls), 3);
        // skew: loads [3000, 1000] → max 3000 * 2 / 4000 = 1.5
        assert!((s.skew() - 1.5).abs() < 1e-9);
        // amplification: 12 group msgs over 8 delivered.
        let amp = s.warp_amplification().expect("has warp extras");
        assert!((amp - 1.5).abs() < 1e-9);
        assert!(matches!(
            doc.entries[0],
            Entry::Marker(Marker::Checkpoint {
                step: 1,
                bytes: 128
            })
        ));
    }

    #[test]
    fn serve_health_extras_accumulate_on_the_doc() {
        let stream = concat!(
            "{\"schema\":\"graphite-trace/1\",\"label\":\"serve/health\"}\n",
            "{\"ev\":\"worker_step\",\"step\":0,\"worker\":0,\"active\":0,\"msgs_in\":0,",
            "\"compute_calls\":0,\"scatter_calls\":0,\"msgs_out\":0,\"remote_msgs\":0,",
            "\"bytes_out\":0,\"warp_invocations\":0,\"warp_suppressions\":0,",
            "\"compute_ns\":0,\"extras\":{\"serve_retries\":1,\"serve_recovered\":2,",
            "\"serve_sheds\":3,\"serve_quarantined\":4,\"serve_budget_exceeded\":5,",
            "\"serve_failed\":6}}\n",
            "{\"ev\":\"step_end\",\"step\":0,\"sent\":0,\"halted\":true,",
            "\"compute_ns\":0,\"messaging_ns\":0,\"barrier_ns\":0}\n",
        );
        let doc = parse(stream).expect("health stream parses");
        assert_eq!(
            doc.serve,
            ServeHealthRow {
                retries: 1,
                recovered: 2,
                sheds: 3,
                quarantined: 4,
                budget_exceeded: 5,
                failed: 6,
            }
        );
        // Streams with no serving-layer rows stay all-zero.
        assert_eq!(
            parse(SAMPLE).expect("sample parses").serve,
            ServeHealthRow::default()
        );
    }

    #[test]
    fn stream_extras_accumulate_on_the_doc() {
        let stream = concat!(
            "{\"schema\":\"graphite-trace/1\",\"label\":\"stream/batch1\"}\n",
            "{\"ev\":\"worker_step\",\"step\":1,\"worker\":0,\"active\":0,\"msgs_in\":0,",
            "\"compute_calls\":0,\"scatter_calls\":0,\"msgs_out\":0,\"remote_msgs\":0,",
            "\"bytes_out\":0,\"warp_invocations\":0,\"warp_suppressions\":0,",
            "\"compute_ns\":0,\"extras\":{\"stream_batches\":1,\"stream_ops\":40,",
            "\"stream_dirty_vertices\":7,\"stream_inc_compute_calls\":120,",
            "\"stream_digest_checks\":1,\"stream_digest_mismatches\":0,",
            "\"stream_apply_ns\":500,\"stream_incremental_ns\":2000,",
            "\"stream_full_check_ns\":9000}}\n",
            "{\"ev\":\"step_end\",\"step\":1,\"sent\":0,\"halted\":true,",
            "\"compute_ns\":0,\"messaging_ns\":0,\"barrier_ns\":0}\n",
        );
        let doc = parse(stream).expect("stream batch row parses");
        assert_eq!(
            doc.stream,
            StreamRow {
                batches: 1,
                ops: 40,
                dirty_vertices: 7,
                inc_compute_calls: 120,
                digest_checks: 1,
                digest_mismatches: 0,
                apply_ns: 500,
                incremental_ns: 2000,
                full_check_ns: 9000,
            }
        );
        // Streams with no streaming-layer rows stay all-zero.
        assert_eq!(
            parse(SAMPLE).expect("sample parses").stream,
            StreamRow::default()
        );
    }

    #[test]
    fn rejects_wrong_schema_and_unknown_events() {
        assert!(parse("{\"schema\":\"graphite-trace/2\",\"label\":\"x\"}\n")
            .unwrap_err()
            .contains("unsupported schema"));
        let bad = "{\"schema\":\"graphite-trace/1\",\"label\":\"x\"}\n{\"ev\":\"mystery\"}\n";
        assert!(parse(bad).unwrap_err().contains("unknown event"));
        assert!(parse("").unwrap_err().contains("no header"));
    }

    #[test]
    fn renders_a_report_with_markers() {
        let doc = parse(SAMPLE).expect("sample parses");
        let report = render(&doc, 4);
        assert!(report.contains("trace: bfs/icm"));
        assert!(report.contains("step   1"));
        assert!(report.contains("skew 1.50x"));
        assert!(report.contains("warp-amp 1.50x"));
        assert!(report.contains("checkpoint after step 1"));
        assert!(report.contains("ROLLBACK from step 2 to step 1"));
        assert!(report.contains("-- halted"));
        assert!(report.contains("total: 1 step(s), 6 msgs"));
    }

    #[test]
    fn balance_report_shows_worker_shares() {
        let doc = parse(SAMPLE).expect("sample parses");
        let report = render_balance(&doc);
        assert!(report.contains("balance: bfs/icm"));
        // Worker 0: 3 of 4 active (75 %), 3000 of 4000 compute-ns (75 %).
        assert!(report.contains("w0"), "{report}");
        assert!(report.contains("75.0%"), "{report}");
        assert!(report.contains("25.0%"), "{report}");
        assert!(report.contains("run totals:"), "{report}");
        assert!(report.contains("skew 1.50x"), "{report}");
    }

    #[test]
    fn observed_loads_prefer_timing_and_fall_back_to_messages() {
        let doc = parse(SAMPLE).expect("sample parses");
        assert_eq!(observed_loads(&doc), vec![3000.0, 1000.0]);
        // Strip the timings: the message fallback takes over.
        let counters_only = SAMPLE
            .replace("\"compute_ns\":3000", "\"compute_ns\":0")
            .replace("\"compute_ns\":1000", "\"compute_ns\":0");
        let doc = parse(&counters_only).expect("counters-level parses");
        assert_eq!(observed_loads(&doc), vec![6.0, 2.0]);
        assert!(observed_loads(&TraceDoc::default()).is_empty());
    }

    #[test]
    fn compare_reports_deltas() {
        let a = parse(SAMPLE).expect("parses");
        let b = parse(SAMPLE).expect("parses");
        let cmp = render_compare(&a, &b);
        assert!(cmp.contains("(+0)"));
        assert!(cmp.contains("total msgs: 6 vs 6"));
    }

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_250_000), "2.25ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
