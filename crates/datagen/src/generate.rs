//! The core seeded generator: topology → lifespans → properties →
//! [`TemporalGraph`].

use crate::model::{GenParams, LifespanModel, PropModel, Topology};
use graphite_tgraph::builder::TemporalGraphBuilder;
use graphite_tgraph::graph::{EdgeId, TemporalGraph, VertexId};
use graphite_tgraph::rng::SplitMix64;
use graphite_tgraph::time::{Interval, Time};

/// Samples a lifespan within `[0, horizon)`.
fn sample_lifespan(model: LifespanModel, horizon: Time, rng: &mut SplitMix64) -> Interval {
    match model {
        LifespanModel::Full => Interval::new(0, horizon),
        LifespanModel::Unit => {
            let t = rng.range_i64(0, horizon);
            Interval::point(t)
        }
        LifespanModel::Geometric { mean } => {
            let len = sample_geometric(mean, rng).min(horizon);
            let start = rng.range_i64(0, horizon - len + 1);
            Interval::new(start, start + len)
        }
        LifespanModel::Mixed {
            unit_fraction,
            mean,
        } => {
            if rng.f64() < unit_fraction {
                sample_lifespan(LifespanModel::Unit, horizon, rng)
            } else {
                sample_lifespan(LifespanModel::Geometric { mean }, horizon, rng)
            }
        }
        LifespanModel::Bursty {
            heavy_fraction,
            heavy_mean,
            burst_mean,
        } => {
            let mean = if rng.f64() < heavy_fraction {
                heavy_mean
            } else {
                burst_mean
            };
            sample_lifespan(LifespanModel::Geometric { mean }, horizon, rng)
        }
    }
}

/// Samples a lifespan inside `bound` that contains the time-point
/// `anchor` (which must lie in `bound`).
fn sample_lifespan_at(
    model: LifespanModel,
    bound: Interval,
    anchor: Time,
    rng: &mut SplitMix64,
) -> Interval {
    debug_assert!(bound.contains_point(anchor));
    match model {
        LifespanModel::Full => bound,
        LifespanModel::Unit => Interval::point(anchor),
        LifespanModel::Geometric { mean } => {
            let len = sample_geometric(mean, rng).min(bound.len());
            // Place a window of `len` points containing the anchor.
            let lo = (anchor - len + 1).max(bound.start());
            let hi = anchor.min(bound.end() - len);
            let start = if lo >= hi {
                lo
            } else {
                rng.range_i64(lo, hi + 1)
            };
            Interval::new(start, start + len)
        }
        LifespanModel::Mixed {
            unit_fraction,
            mean,
        } => {
            if rng.f64() < unit_fraction {
                Interval::point(anchor)
            } else {
                sample_lifespan_at(LifespanModel::Geometric { mean }, bound, anchor, rng)
            }
        }
        LifespanModel::Bursty {
            heavy_fraction,
            heavy_mean,
            burst_mean,
        } => {
            let mean = if rng.f64() < heavy_fraction {
                heavy_mean
            } else {
                burst_mean
            };
            sample_lifespan_at(LifespanModel::Geometric { mean }, bound, anchor, rng)
        }
    }
}

/// Geometric length with the given mean, at least 1.
fn sample_geometric(mean: f64, rng: &mut SplitMix64) -> Time {
    if !mean.is_finite() {
        return Time::MAX / 4;
    }
    let p = 1.0 / mean.max(1.0);
    let u: f64 = rng.f64();
    // Inverse CDF of the geometric distribution on {1, 2, ...}.
    let len = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as Time + 1;
    len.max(1)
}

/// Emits the logical edge list as `(src, dst, anchor time)` triples. The
/// anchor is a time-point at which both endpoints are guaranteed alive, so
/// short-lived vertices (Reddit/MAG-style churn) still meet the edge
/// budget: real temporal graphs connect temporally co-located entities.
fn topology_edges(
    params: &GenParams,
    vertex_spans: &[Interval],
    rng: &mut SplitMix64,
) -> Vec<(u64, u64, Time)> {
    let n = params.vertices as u64;
    match params.topology {
        Topology::PowerLaw {
            edges_per_vertex: _,
        } => {
            // Index vertices by the snapshots they are alive in, and keep a
            // per-snapshot preferential-attachment pool of endpoints.
            let horizon = params.snapshots;
            let mut alive: Vec<Vec<u64>> = vec![Vec::new(); horizon as usize];
            for (v, span) in vertex_spans.iter().enumerate() {
                for t in span.points() {
                    alive[t as usize].push(v as u64);
                }
            }
            let live_snaps: Vec<usize> =
                (0..alive.len()).filter(|&t| alive[t].len() >= 2).collect();
            // A global endpoint pool implements preferential attachment:
            // high-degree vertices re-enter it often, so they keep
            // attracting edges whenever they are alive.
            let mut pool: Vec<u64> = Vec::with_capacity(2 * params.edges);
            let mut edges = Vec::with_capacity(params.edges);
            if live_snaps.is_empty() {
                return edges;
            }
            while edges.len() < params.edges {
                let t = live_snaps[rng.index(live_snaps.len())];
                let candidates = &alive[t];
                let src = candidates[rng.index(candidates.len())];
                let mut dst = candidates[rng.index(candidates.len())];
                if !pool.is_empty() && rng.f64() >= 0.15 {
                    // Prefer an existing hub that is alive at the anchor.
                    for _ in 0..12 {
                        let candidate = pool[rng.index(pool.len())];
                        if vertex_spans[candidate as usize].contains_point(t as Time) {
                            dst = candidate;
                            break;
                        }
                    }
                }
                if src == dst {
                    continue;
                }
                edges.push((src, dst, t as Time));
                pool.push(dst);
                pool.push(src);
            }
            edges
        }
        Topology::Grid { width } => {
            let width = width.max(2) as u64;
            let height = (n / width).max(1);
            let mut edges = Vec::new();
            let at = |x: u64, y: u64| y * width + x;
            let anchor = |rng: &mut SplitMix64| rng.range_i64(0, params.snapshots);
            for y in 0..height {
                for x in 0..width {
                    let v = at(x, y);
                    if v >= n {
                        continue;
                    }
                    if x + 1 < width && at(x + 1, y) < n {
                        edges.push((v, at(x + 1, y), anchor(rng)));
                        edges.push((at(x + 1, y), v, anchor(rng)));
                    }
                    if y + 1 < height && at(x, y + 1) < n {
                        edges.push((v, at(x, y + 1), anchor(rng)));
                        edges.push((at(x, y + 1), v, anchor(rng)));
                    }
                }
            }
            edges
        }
    }
}

/// Attaches piecewise-constant `travel-time` / `travel-cost` timelines.
fn add_properties(
    b: &mut TemporalGraphBuilder,
    eid: EdgeId,
    lifespan: Interval,
    props: &PropModel,
    rng: &mut SplitMix64,
) {
    // One travel-time value for the whole lifespan keeps journeys sane;
    // vary it per edge when the model allows.
    let tt = rng.range_i64(1, props.max_travel_time.max(1) + 1);
    b.edge_property(eid, "travel-time", lifespan, tt.into())
        .expect("tt in lifespan");
    let mut cursor = lifespan.start();
    while cursor < lifespan.end() {
        let len = sample_geometric(props.mean_segment, rng).min(lifespan.end() - cursor);
        let seg = Interval::new(cursor, cursor + len);
        let cost = rng.range_i64(1, props.max_cost.max(1) + 1);
        b.edge_property(eid, "travel-cost", seg, cost.into())
            .expect("cost in lifespan");
        cursor = seg.end();
    }
}

/// Generates a temporal graph from `params`, deterministically.
pub fn generate(params: &GenParams) -> TemporalGraph {
    assert!(params.vertices > 0, "need at least one vertex");
    assert!(params.snapshots > 0, "need a positive horizon");
    let mut rng = SplitMix64::new(params.seed);
    let horizon = params.snapshots;

    let mut b = TemporalGraphBuilder::with_capacity(params.vertices, params.edges);
    let mut vertex_spans = Vec::with_capacity(params.vertices);
    for v in 0..params.vertices as u64 {
        let span = sample_lifespan(params.vertex_lifespans, horizon, &mut rng);
        b.add_vertex(VertexId(v), span).expect("fresh vertex");
        vertex_spans.push(span);
    }

    let mut eid = 0u64;
    for (src, dst, anchor) in topology_edges(params, &vertex_spans, &mut rng) {
        let Some(bound) = vertex_spans[src as usize].intersect(vertex_spans[dst as usize]) else {
            continue; // endpoints never coexist (grid anchors are free)
        };
        let anchor = anchor.clamp(bound.start(), bound.end() - 1);
        let span = sample_lifespan_at(params.edge_lifespans, bound, anchor, &mut rng);
        b.add_edge(EdgeId(eid), VertexId(src), VertexId(dst), span)
            .expect("edge within endpoints");
        add_properties(&mut b, EdgeId(eid), span, &params.props, &mut rng);
        eid += 1;
    }
    b.build().expect("generated graph is sound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::snapshot::snapshot_window;
    use graphite_tgraph::stats::dataset_stats;

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::small(7);
        let g1 = generate(&p);
        let g2 = generate(&p);
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_edges(), g2.num_edges());
        let s1 = dataset_stats(&g1, None);
        let s2 = dataset_stats(&g2, None);
        assert_eq!(s1.multi_snapshot, s2.multi_snapshot);
        // A different seed changes the graph.
        let g3 = generate(&GenParams::small(8));
        let s3 = dataset_stats(&g3, None);
        assert_ne!(s1.multi_snapshot, s3.multi_snapshot);
    }

    #[test]
    fn horizon_is_respected() {
        let g = generate(&GenParams::small(3));
        assert_eq!(snapshot_window(&g), Some(Interval::new(0, 16)));
        for (_, e) in g.edges() {
            assert!(e.lifespan.start() >= 0);
            assert!(e.lifespan.end() <= 16);
        }
    }

    #[test]
    fn unit_lifespans_are_unit() {
        let p = GenParams {
            edge_lifespans: LifespanModel::Unit,
            ..GenParams::small(11)
        };
        let g = generate(&p);
        assert!(g.num_edges() > 0);
        for (_, e) in g.edges() {
            assert!(e.lifespan.is_unit(), "{}", e.lifespan);
        }
    }

    #[test]
    fn geometric_mean_is_roughly_respected() {
        let p = GenParams {
            vertices: 500,
            edges: 4000,
            snapshots: 100,
            edge_lifespans: LifespanModel::Geometric { mean: 10.0 },
            ..GenParams::small(5)
        };
        let g = generate(&p);
        let stats = dataset_stats(&g, None);
        assert!(
            stats.avg_edge_lifespan > 6.0 && stats.avg_edge_lifespan < 14.0,
            "avg edge lifespan {}",
            stats.avg_edge_lifespan
        );
    }

    #[test]
    fn grid_topology_is_planar_and_bidirectional() {
        let p = GenParams {
            vertices: 100,
            edges: 0, // grid ignores the edge budget
            topology: Topology::Grid { width: 10 },
            edge_lifespans: LifespanModel::Full,
            ..GenParams::small(2)
        };
        let g = generate(&p);
        assert_eq!(g.num_vertices(), 100);
        // 2 * (9*10 + 9*10) directed edges.
        assert_eq!(g.num_edges(), 360);
        // Max degree 4 out.
        for v in g.vertex_indices() {
            assert!(g.out_degree(v) <= 4);
        }
    }

    #[test]
    fn powerlaw_topology_is_skewed() {
        let p = GenParams {
            vertices: 1000,
            edges: 5000,
            snapshots: 8,
            ..GenParams::small(13)
        };
        let g = generate(&p);
        let mut degrees: Vec<usize> = g.vertex_indices().map(|v| g.in_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top_1pct: usize = degrees.iter().take(10).sum();
        // Uniform wiring would give the top 1 % about 1 % of in-edges;
        // liveness-filtered preferential attachment concentrates roughly
        // an order of magnitude more on the hubs.
        assert!(
            top_1pct * 15 > total,
            "top 1% holds {top_1pct} of {total} in-edges — not skewed enough"
        );
    }

    #[test]
    fn properties_cover_edge_lifespans() {
        let p = GenParams {
            props: PropModel {
                mean_segment: 3.0,
                max_cost: 5,
                max_travel_time: 2,
            },
            ..GenParams::small(17)
        };
        let g = generate(&p);
        let cost = g.label("travel-cost").unwrap();
        let tt = g.label("travel-time").unwrap();
        for (e, ed) in g.edges() {
            for t in ed.lifespan.points() {
                let c = g
                    .edge_property_at(e, cost, t)
                    .and_then(|v| v.as_long())
                    .unwrap();
                assert!((1..=5).contains(&c));
                let w = g
                    .edge_property_at(e, tt, t)
                    .and_then(|v| v.as_long())
                    .unwrap();
                assert!((1..=2).contains(&w));
            }
        }
    }

    #[test]
    fn bursty_lifespans_are_bimodal() {
        let p = GenParams {
            vertices: 2000,
            edges: 0,
            snapshots: 64,
            vertex_lifespans: LifespanModel::Bursty {
                heavy_fraction: 0.1,
                heavy_mean: 40.0,
                burst_mean: 1.5,
            },
            ..GenParams::small(31)
        };
        let g = generate(&p);
        let spans: Vec<i64> = g
            .vertex_indices()
            .map(|v| g.vertex(v).lifespan.len())
            .collect();
        let short = spans.iter().filter(|&&l| l <= 4).count();
        let long = spans.iter().filter(|&&l| l >= 20).count();
        // The majority bursts in briefly; a visible minority persists.
        assert!(
            short * 2 > spans.len(),
            "only {short}/{} short-lived vertices",
            spans.len()
        );
        assert!(long * 50 > spans.len(), "only {long} long-lived vertices");
    }

    #[test]
    fn vertex_churn_respects_referential_integrity() {
        let p = GenParams {
            vertex_lifespans: LifespanModel::Geometric { mean: 8.0 },
            ..GenParams::small(23)
        };
        let g = generate(&p); // builder would panic on violations
        assert!(g.num_edges() > 0);
        for (_, e) in g.edges() {
            assert!(e.lifespan.during_or_equals(g.vertex(e.src).lifespan));
            assert!(e.lifespan.during_or_equals(g.vertex(e.dst).lifespan));
        }
    }
}
