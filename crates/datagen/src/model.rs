//! Generator parameters: topology, lifespan and property models.
//!
//! The paper's performance arguments are driven by a handful of *shape*
//! parameters — degree distribution, lifespan distributions of vertices /
//! edges / properties, snapshot count, diameter class (Sec. VII-A2). The
//! models here expose exactly those knobs so each real dataset's shape can
//! be reproduced at laptop scale.

use graphite_tgraph::time::Time;

/// Static topology family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Preferential attachment: power-law in-degree, short diameter
    /// (social/web-style: GPlus, Reddit, MAG, Twitter, WebUK).
    PowerLaw {
        /// Out-edges attached per new vertex.
        edges_per_vertex: usize,
    },
    /// A rectangular grid with bidirectional edges: planar, bounded
    /// degree, very large diameter (road-style: USRN).
    Grid {
        /// Grid width; height is derived from the vertex budget.
        width: usize,
    },
}

/// Lifespan distribution for vertices or edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LifespanModel {
    /// The whole horizon `[0, T)` (static structure).
    Full,
    /// A single uniformly-placed time-point `[t, t+1)`.
    Unit,
    /// Geometric length with the given mean, uniformly placed; clipped to
    /// the horizon.
    Geometric {
        /// Mean lifespan in time units.
        mean: f64,
    },
    /// A `unit_fraction` of entities get unit lifespans; the rest are
    /// geometric with the given mean (Reddit/WebUK-style mixes).
    Mixed {
        /// Fraction with unit lifespans (0..=1).
        unit_fraction: f64,
        /// Mean lifespan of the non-unit remainder.
        mean: f64,
    },
    /// Bimodal "bursty" churn: a small `heavy_fraction` of entities are
    /// long-lived (geometric with mean `heavy_mean`), the rest flash in
    /// and out in short bursts (geometric with mean `burst_mean`). The
    /// per-entity interval weight is heavy-tailed, so hash placement
    /// shows real interval-load imbalance — the shape the `skew` profile
    /// and `graphite-part`'s temporal-balance strategy are built around.
    Bursty {
        /// Fraction of long-lived entities (0..=1).
        heavy_fraction: f64,
        /// Mean lifespan of the long-lived minority.
        heavy_mean: f64,
        /// Mean lifespan of the short-lived majority.
        burst_mean: f64,
    },
}

/// Edge-property model: `travel-time` and `travel-cost` timelines whose
/// values change in segments of geometric length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropModel {
    /// Mean property-segment length in time units (the paper's "average
    /// property lifespan"). `f64::INFINITY` means one value for the whole
    /// edge lifespan.
    pub mean_segment: f64,
    /// Travel costs are drawn uniformly from `1..=max_cost`.
    pub max_cost: i64,
    /// Travel times are drawn uniformly from `1..=max_travel_time`.
    pub max_travel_time: i64,
}

impl Default for PropModel {
    fn default() -> Self {
        PropModel {
            mean_segment: f64::INFINITY,
            max_cost: 10,
            max_travel_time: 1,
        }
    }
}

/// Full parameter set for one synthetic temporal graph.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of logical edges (each becomes one temporal edge).
    pub edges: usize,
    /// Snapshot count: the time horizon is `[0, snapshots)`.
    pub snapshots: Time,
    /// Topology family.
    pub topology: Topology,
    /// Vertex lifespan model.
    pub vertex_lifespans: LifespanModel,
    /// Edge lifespan model (clipped to the endpoints' lifespans).
    pub edge_lifespans: LifespanModel,
    /// Edge property model.
    pub props: PropModel,
    /// RNG seed — generation is fully deterministic given the parameters.
    pub seed: u64,
}

impl GenParams {
    /// A small power-law default, handy for tests.
    pub fn small(seed: u64) -> Self {
        GenParams {
            vertices: 200,
            edges: 800,
            snapshots: 16,
            topology: Topology::PowerLaw {
                edges_per_vertex: 4,
            },
            vertex_lifespans: LifespanModel::Full,
            edge_lifespans: LifespanModel::Geometric { mean: 6.0 },
            props: PropModel::default(),
            seed,
        }
    }
}
