//! Seeded update-stream derivation: any generated profile, replayed as a
//! base graph plus timestamped [`GraphDelta`] batches (DESIGN.md §17).
//!
//! The derivation is *time-prefix clipping*: generate the final graph `F`
//! over the full horizon, pick cut points `c₀ < c₁ < … < c_B = horizon`,
//! and let snapshot `k` be `F` clipped at `c_k` — every entity whose
//! lifespan starts before the cut, with lifespans and property entries
//! truncated to it. The base graph is the clip at `c₀`; batch `k` is the
//! delta transforming clip `c_{k-1}` into clip `c_k`:
//!
//! * entities whose lifespan starts in `[c_{k-1}, c_k)` are **inserted**
//!   (already truncated to `c_k`);
//! * entities alive across `c_{k-1}` are **extended** to
//!   `min(end, c_k)` — strictly monotone by construction;
//! * edge-property entries starting in the window are inserted, and the
//!   one entry per label that straddles `c_{k-1}` is extended — it is
//!   necessarily the label's right-most entry at that point, which is
//!   exactly what [`GraphDelta::extend_edge_property`] targets.
//!
//! Clipping preserves every soundness constraint (uniform truncation
//! keeps properties inside lifespans and edges inside endpoints), each
//! intermediate graph is the honest "state of the world at time `c_k`",
//! and the last batch converges **bit-exactly** onto `F` — pinned by
//! [`UpdateStream::final_digest`] and the crate tests.

use crate::generate::generate;
use crate::model::GenParams;
use graphite_tgraph::builder::TemporalGraphBuilder;
use graphite_tgraph::delta::GraphDelta;
use graphite_tgraph::error::GraphError;
use graphite_tgraph::graph::TemporalGraph;
use graphite_tgraph::time::{Interval, Time};

/// A derived update stream: the base graph at the first cut plus the
/// delta batches that replay the rest of the horizon.
#[derive(Debug)]
pub struct UpdateStream {
    /// The world at cut `c₀` — what a streaming engine loads at startup.
    pub base: TemporalGraph,
    /// One delta per subsequent cut, in replay order.
    pub batches: Vec<GraphDelta>,
    /// Structure digest of the fully-replayed graph — identical to the
    /// one-shot generation of the same parameters.
    pub final_digest: u64,
}

impl UpdateStream {
    /// Replays every batch onto a copy of the base and returns the final
    /// graph (used by tests; real consumers feed the batches to a
    /// `DeltaOverlay` or `StreamEngine` incrementally).
    ///
    /// # Errors
    ///
    /// Any [`GraphError`] a batch application can produce — for a derived
    /// stream this would indicate a derivation bug.
    pub fn replay(&self) -> Result<TemporalGraph, GraphError> {
        let mut g = self.base.clone();
        for delta in &self.batches {
            g = g.apply_delta(delta)?;
        }
        Ok(g)
    }
}

/// Derives an [`UpdateStream`] with `batches` delta batches from `params`
/// (any profile, Skew included). The first half of the horizon forms the
/// base graph; the remaining snapshots are dealt evenly across the
/// batches. Deterministic: same params + batch count → same stream.
///
/// # Panics
///
/// Panics when `batches == 0` or the params have no positive horizon
/// (mirrors [`generate`]'s own parameter validation).
pub fn derive_update_stream(params: &GenParams, batches: usize) -> UpdateStream {
    assert!(batches > 0, "need at least one update batch");
    let horizon = params.snapshots;
    assert!(horizon > 0, "need a positive horizon");
    let full = generate(params);
    // Base cut at mid-horizon (at least 1 so the base is non-degenerate),
    // then evenly-spaced cuts ending exactly at the horizon.
    let c0 = (horizon / 2).max(1);
    let cuts: Vec<Time> = (1..=batches as Time)
        .map(|k| c0 + ((horizon - c0) * k) / batches as Time)
        .collect();

    let base = build_clip(&full, c0);
    let deltas: Vec<GraphDelta> = cuts
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let a = if i == 0 { c0 } else { cuts[i - 1] };
            derive_batch(&full, a, b)
        })
        .collect();
    UpdateStream {
        base,
        batches: deltas,
        final_digest: full.structure_digest(),
    }
}

/// Clips an interval to end at `cut`; `None` when nothing of it starts
/// before the cut.
fn clip(iv: Interval, cut: Time) -> Option<Interval> {
    Interval::try_new(iv.start(), iv.end().min(cut))
}

/// Builds the world at `cut` from scratch — the stream's base graph.
fn build_clip(full: &TemporalGraph, cut: Time) -> TemporalGraph {
    let mut b = TemporalGraphBuilder::new();
    for (_, v) in full.vertices() {
        let Some(span) = clip(v.lifespan, cut) else {
            continue;
        };
        b.add_vertex(v.vid, span).expect("clipped vertex is fresh");
        for (label, iv, value) in v.props.iter() {
            // Vertex-property entries carry no extension op in the delta
            // model, so they enter whole once fully inside a clip.
            if iv.end() <= cut {
                let name = full.labels().name(label).expect("interned label");
                b.vertex_property(v.vid, name, iv, value.clone())
                    .expect("clipped prop inside clipped lifespan");
            }
        }
    }
    for (e, ed) in full.edges() {
        let Some(span) = clip(ed.lifespan, cut) else {
            continue;
        };
        let (src, dst) = (full.vertex(ed.src).vid, full.vertex(ed.dst).vid);
        b.add_edge(ed.eid, src, dst, span)
            .expect("clipped edge inside clipped endpoints");
        for (label, iv, value) in full.edge_props(e).iter() {
            let Some(piv) = clip(iv, cut) else {
                continue;
            };
            let name = full.labels().name(label).expect("interned label");
            b.edge_property(ed.eid, name, piv, value.clone())
                .expect("clipped prop inside clipped lifespan");
        }
    }
    b.build().expect("clip of a sound graph is sound")
}

/// The delta transforming the clip at `a` into the clip at `b`.
fn derive_batch(full: &TemporalGraph, a: Time, b: Time) -> GraphDelta {
    let mut delta = GraphDelta::new();
    if b <= a {
        return delta; // coincident cuts: an empty batch
    }
    for (_, v) in full.vertices() {
        let span = v.lifespan;
        if span.start() >= a && span.start() < b {
            delta.insert_vertex(v.vid, clip(span, b).expect("starts before b"));
        } else if span.start() < a && span.end() > a {
            // Alive across the previous cut; grow the truncated tail.
            delta.extend_vertex(v.vid, span.end().min(b));
        }
        for (label, iv, value) in v.props.iter() {
            if iv.end() > a && iv.end() <= b {
                let name = full.labels().name(label).expect("interned label");
                delta.vertex_property(v.vid, name, iv, value.clone());
            }
        }
    }
    for (e, ed) in full.edges() {
        let span = ed.lifespan;
        let inserted_now = span.start() >= a && span.start() < b;
        if inserted_now {
            let (src, dst) = (full.vertex(ed.src).vid, full.vertex(ed.dst).vid);
            delta.insert_edge(ed.eid, src, dst, clip(span, b).expect("starts before b"));
        } else if span.start() < a && span.end() > a {
            delta.extend_edge(ed.eid, span.end().min(b));
        } else if span.start() >= b {
            continue; // not yet born; its props aren't either
        }
        for (label, iv, value) in full.edge_props(e).iter() {
            let name = full.labels().name(label).expect("interned label");
            if iv.start() >= a && iv.start() < b {
                delta.edge_property(
                    ed.eid,
                    name,
                    clip(iv, b).expect("starts before b"),
                    value.clone(),
                );
            } else if iv.start() < a && iv.end() > a && iv.end().min(b) > a {
                // The straddling entry is the label's right-most at cut
                // `a` (later entries start past it and aren't inserted
                // yet), which is the entry extension targets.
                delta.extend_edge_property(ed.eid, name, iv.end().min(b));
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LifespanModel, PropModel};

    fn churny(seed: u64) -> GenParams {
        GenParams {
            vertex_lifespans: LifespanModel::Geometric { mean: 8.0 },
            edge_lifespans: LifespanModel::Geometric { mean: 4.0 },
            props: PropModel {
                mean_segment: 3.0,
                max_cost: 10,
                max_travel_time: 2,
            },
            ..GenParams::small(seed)
        }
    }

    #[test]
    fn replay_converges_bit_exactly_onto_the_one_shot_generation() {
        for seed in [3u64, 17, 0xFEED] {
            let params = churny(seed);
            for batches in [1usize, 4, 7] {
                let stream = derive_update_stream(&params, batches);
                assert_eq!(stream.batches.len(), batches);
                let replayed = stream.replay().expect("derived batches apply cleanly");
                assert_eq!(
                    replayed.structure_digest(),
                    stream.final_digest,
                    "seed {seed} batches {batches}: replay diverged from F"
                );
                assert_eq!(
                    stream.final_digest,
                    generate(&params).structure_digest(),
                    "final digest must be the one-shot generation's"
                );
            }
        }
    }

    #[test]
    fn derivation_is_deterministic_and_batches_carry_real_work() {
        let params = churny(5);
        let s1 = derive_update_stream(&params, 5);
        let s2 = derive_update_stream(&params, 5);
        assert_eq!(s1.base.structure_digest(), s2.base.structure_digest());
        assert_eq!(s1.final_digest, s2.final_digest);
        for (a, b) in s1.batches.iter().zip(&s2.batches) {
            assert_eq!(a.len(), b.len());
        }
        let total: usize = s1.batches.iter().map(|d| d.len()).sum();
        assert!(total > 0, "a churny profile must produce update ops");
        assert!(
            s1.base.num_vertices() > 0,
            "mid-horizon base must be non-degenerate"
        );
    }

    #[test]
    fn base_is_a_strict_time_prefix() {
        let params = churny(9);
        let stream = derive_update_stream(&params, 3);
        let full = generate(&params);
        assert!(stream.base.num_edges() <= full.num_edges());
        let cut = (params.snapshots / 2).max(1);
        for (_, v) in stream.base.vertices() {
            assert!(v.lifespan.start() < cut);
            assert!(v.lifespan.end() <= cut);
        }
    }
}
