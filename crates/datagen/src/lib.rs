//! # graphite-datagen — seeded synthetic temporal-graph workloads
//!
//! Generators that reproduce the *shape* of the ICM paper's six real-world
//! datasets (Table 1) at laptop scale — degree family, snapshot count, and
//! the lifespan distributions of vertices, edges and properties — plus the
//! LDBC/LinkBench-style weak-scaling graph of Fig. 7. Everything is
//! deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod ldbc;
pub mod model;
pub mod profiles;
pub mod stream;

pub use generate::generate;
pub use ldbc::{weak_scaling_graph, weak_scaling_params, WEAK_SCALING_SNAPSHOTS};
pub use model::{GenParams, LifespanModel, PropModel, Topology};
pub use profiles::Profile;
pub use stream::{derive_update_stream, UpdateStream};
