//! Laptop-scale profiles of the paper's six datasets (Table 1).
//!
//! Each profile reproduces the *shape* characteristics the paper's
//! analysis keys on — snapshot count, degree family, and the lifespan
//! distributions of vertices, edges and properties — scaled by a vertex
//! budget. The absolute sizes are parameterized; the default `scale = 1`
//! targets seconds-level benchmark runs.

use crate::generate::generate;
use crate::model::{GenParams, LifespanModel, PropModel, Topology};
use graphite_tgraph::graph::TemporalGraph;

/// The paper's six real-world datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Google+: 4 snapshots, unit-length edge and property lifespans —
    /// ICM's worst case (no sharing possible).
    GPlus,
    /// US road network: static planar topology with a huge diameter; 96
    /// snapshots; only properties change.
    Usrn,
    /// Reddit: 121 snapshots; ~96 % of edges have unit lifespans.
    Reddit,
    /// Microsoft Academic Graph: 219 snapshots; long edge (~16) and
    /// property (~5) lifespans.
    Mag,
    /// Twitter: 30 snapshots; edge lifespans (~28) span nearly the whole
    /// graph; property lifespans ~15 — ICM's best case.
    Twitter,
    /// WebUK: 12 snapshots; mixed lifespans (edges ~9.4, properties ~4.7).
    WebUk,
    /// Synthetic stress profile (not in Table 1): power-law degree plus
    /// bursty bimodal lifespans, so per-vertex interval weight is
    /// heavy-tailed. Built for the partitioning study (DESIGN.md §13) —
    /// the profile where hash placement shows real interval-load
    /// imbalance and `graphite-part`'s temporal-balance strategy wins.
    ///
    /// Deliberately **excluded from [`Profile::ALL`]**: `ALL` is pinned to
    /// the paper's six evaluated datasets, and every recorded figure
    /// pipeline (BENCH files, reports) iterates it — admitting `Skew`
    /// would silently change those artifacts. Name it explicitly where a
    /// stress run is wanted; `all_is_exactly_the_papers_six_datasets`
    /// guards the membership.
    Skew,
}

impl Profile {
    /// The paper's six datasets, in Table 1's order. The synthetic
    /// [`Profile::Skew`] stress profile is deliberately excluded: it is
    /// not part of the paper's evaluation, and keeping this array stable
    /// keeps every recorded figure pipeline byte-identical.
    pub const ALL: [Profile; 6] = [
        Profile::GPlus,
        Profile::Usrn,
        Profile::Reddit,
        Profile::Mag,
        Profile::Twitter,
        Profile::WebUk,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::GPlus => "GPlus",
            Profile::Usrn => "USRN",
            Profile::Reddit => "Reddit",
            Profile::Mag => "MAG",
            Profile::Twitter => "Twitter",
            Profile::WebUk => "WebUK",
            Profile::Skew => "Skew",
        }
    }

    /// Generator parameters at the given scale (vertex budget multiplier;
    /// `scale = 1` is the benchmark default).
    pub fn params(&self, scale: usize, seed: u64) -> GenParams {
        let s = scale.max(1);
        match self {
            Profile::GPlus => GenParams {
                vertices: 1_500 * s,
                edges: 12_000 * s,
                snapshots: 4,
                topology: Topology::PowerLaw {
                    edges_per_vertex: 8,
                },
                vertex_lifespans: LifespanModel::Geometric { mean: 2.6 },
                edge_lifespans: LifespanModel::Unit,
                props: PropModel {
                    mean_segment: 1.0,
                    max_cost: 10,
                    max_travel_time: 1,
                },
                seed,
            },
            Profile::Usrn => GenParams {
                vertices: 2_500 * s,
                edges: 0, // grid: edges derive from the lattice
                snapshots: 96,
                topology: Topology::Grid { width: 50 },
                vertex_lifespans: LifespanModel::Full,
                edge_lifespans: LifespanModel::Full,
                props: PropModel {
                    mean_segment: 4.8,
                    max_cost: 20,
                    max_travel_time: 1,
                },
                seed,
            },
            Profile::Reddit => GenParams {
                vertices: 1_200 * s,
                edges: 10_000 * s,
                snapshots: 121,
                topology: Topology::PowerLaw {
                    edges_per_vertex: 8,
                },
                vertex_lifespans: LifespanModel::Geometric { mean: 6.6 },
                edge_lifespans: LifespanModel::Mixed {
                    unit_fraction: 0.96,
                    mean: 6.0,
                },
                props: PropModel {
                    mean_segment: 1.12,
                    max_cost: 10,
                    max_travel_time: 1,
                },
                seed,
            },
            Profile::Mag => GenParams {
                vertices: 2_000 * s,
                edges: 18_000 * s,
                snapshots: 219,
                topology: Topology::PowerLaw {
                    edges_per_vertex: 9,
                },
                vertex_lifespans: LifespanModel::Geometric { mean: 20.9 },
                edge_lifespans: LifespanModel::Geometric { mean: 15.8 },
                props: PropModel {
                    mean_segment: 5.26,
                    max_cost: 10,
                    max_travel_time: 1,
                },
                seed,
            },
            Profile::Twitter => GenParams {
                vertices: 1_500 * s,
                edges: 20_000 * s,
                snapshots: 30,
                topology: Topology::PowerLaw {
                    edges_per_vertex: 13,
                },
                vertex_lifespans: LifespanModel::Geometric { mean: 29.5 },
                edge_lifespans: LifespanModel::Geometric { mean: 28.4 },
                props: PropModel {
                    mean_segment: 14.8,
                    max_cost: 10,
                    max_travel_time: 1,
                },
                seed,
            },
            Profile::WebUk => GenParams {
                vertices: 2_000 * s,
                edges: 16_000 * s,
                snapshots: 12,
                topology: Topology::PowerLaw {
                    edges_per_vertex: 8,
                },
                vertex_lifespans: LifespanModel::Geometric { mean: 10.0 },
                edge_lifespans: LifespanModel::Geometric { mean: 9.4 },
                props: PropModel {
                    mean_segment: 4.7,
                    max_cost: 10,
                    max_travel_time: 1,
                },
                seed,
            },
            Profile::Skew => GenParams {
                vertices: 1_500 * s,
                edges: 18_000 * s,
                snapshots: 32,
                topology: Topology::PowerLaw {
                    edges_per_vertex: 12,
                },
                // ~8 % of vertices live most of the horizon; the rest
                // flash in for a couple of snapshots. Combined with
                // preferential attachment the long-lived hubs also hold
                // most of the long-lived edges, so hash placement puts
                // wildly different interval loads on equal-sized parts.
                vertex_lifespans: LifespanModel::Bursty {
                    heavy_fraction: 0.08,
                    heavy_mean: 28.0,
                    burst_mean: 2.0,
                },
                edge_lifespans: LifespanModel::Bursty {
                    heavy_fraction: 0.10,
                    heavy_mean: 24.0,
                    burst_mean: 1.5,
                },
                props: PropModel {
                    mean_segment: 4.0,
                    max_cost: 10,
                    max_travel_time: 1,
                },
                seed,
            },
        }
    }

    /// Generates the profile at `scale` with `seed`.
    pub fn generate(&self, scale: usize, seed: u64) -> TemporalGraph {
        generate(&self.params(scale, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::stats::dataset_stats;

    #[test]
    fn all_is_exactly_the_papers_six_datasets() {
        // `ALL` feeds every recorded figure pipeline, so its membership is
        // part of the repo's reproducibility contract: exactly the paper's
        // six datasets, in Table 1's order, and never the synthetic
        // `Skew` stress profile.
        assert_eq!(
            Profile::ALL,
            [
                Profile::GPlus,
                Profile::Usrn,
                Profile::Reddit,
                Profile::Mag,
                Profile::Twitter,
                Profile::WebUk,
            ]
        );
        assert!(
            !Profile::ALL.contains(&Profile::Skew),
            "Skew is a stress profile, not a paper dataset"
        );
    }

    #[test]
    fn all_profiles_generate_sound_graphs() {
        for p in Profile::ALL {
            let g = p.generate(1, 42);
            assert!(g.num_vertices() > 0, "{}", p.name());
            assert!(g.num_edges() > 0, "{}", p.name());
        }
    }

    #[test]
    fn gplus_is_unit_lifespan() {
        let g = Profile::GPlus.generate(1, 42);
        let s = dataset_stats(&g, None);
        assert_eq!(s.snapshots, 4);
        assert!(
            (s.avg_edge_lifespan - 1.0).abs() < 1e-9,
            "{}",
            s.avg_edge_lifespan
        );
    }

    #[test]
    fn twitter_edges_span_most_of_the_graph() {
        let g = Profile::Twitter.generate(1, 42);
        let s = dataset_stats(&g, None);
        assert_eq!(s.snapshots, 30);
        // Clipping by vertex lifespans pulls the mean down a bit; "long"
        // is what matters for the shape.
        assert!(s.avg_edge_lifespan > 10.0, "{}", s.avg_edge_lifespan);
        assert!(s.avg_property_lifespan > 4.0, "{}", s.avg_property_lifespan);
    }

    #[test]
    fn usrn_topology_is_static_with_varying_properties() {
        let g = Profile::Usrn.generate(1, 42);
        let s = dataset_stats(&g, None);
        assert_eq!(s.snapshots, 96);
        assert!((s.avg_edge_lifespan - 96.0).abs() < 1e-9);
        assert!(s.avg_property_lifespan < 10.0);
        // Largest snapshot equals the full structure (nothing churns).
        assert_eq!(s.largest_snapshot.edges, s.interval.edges);
    }

    #[test]
    fn reddit_is_mostly_unit() {
        let g = Profile::Reddit.generate(1, 42);
        let unit = g.edges().filter(|(_, e)| e.lifespan.is_unit()).count();
        let frac = unit as f64 / g.num_edges() as f64;
        assert!(frac > 0.9, "unit fraction {frac}");
    }

    #[test]
    fn skew_profile_has_heavy_tailed_interval_weights() {
        let g = Profile::Skew.generate(1, 42);
        assert!(g.num_vertices() > 0);
        assert!(g.num_edges() > 0);
        // Per-vertex temporal weight (own span + out-edge spans) must be
        // heavy-tailed: the top 1 % of vertices should carry far more
        // than their uniform share of the total interval load.
        let mut weights: Vec<u64> = g
            .vertex_indices()
            .map(|v| g.vertex_temporal_weight(v))
            .collect();
        weights.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = weights.iter().sum();
        let top_1pct: u64 = weights.iter().take(weights.len() / 100).sum();
        assert!(
            top_1pct * 8 > total,
            "top 1% holds {top_1pct} of {total} interval weight — not skewed enough"
        );
    }

    #[test]
    fn skew_profile_is_deterministic_and_excluded_from_all() {
        let a = Profile::Skew.generate(1, 7);
        let b = Profile::Skew.generate(1, 7);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(!Profile::ALL.contains(&Profile::Skew));
        assert_eq!(Profile::Skew.name(), "Skew");
    }

    #[test]
    fn transformed_blowup_tracks_lifespans() {
        // The transformed graph of a long-lifespan profile dwarfs its
        // interval graph (the Table 1 / Fig 6a effect)...
        let mag = Profile::Mag.generate(1, 42);
        let s = dataset_stats(&mag, None);
        assert!(s.transformed.edges > 5 * s.interval.edges);
        // ...while a unit-lifespan profile transforms ~1:1.
        let gplus = Profile::GPlus.generate(1, 42);
        let s2 = dataset_stats(&gplus, None);
        assert!(s2.transformed.edges < 3 * s2.interval.edges);
    }
}
