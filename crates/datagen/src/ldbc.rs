//! The weak-scaling workload (paper Sec. VII-B7, Fig. 7): an LDBC-style
//! power-law graph whose structure is perturbed over 128 time-points with
//! LinkBench-flavoured churn, sized proportionally to the machine count —
//! each machine contributes a fixed vertex/edge budget, so ideal weak
//! scaling keeps the makespan flat as machines are added.

use crate::generate::generate;
use crate::model::{GenParams, LifespanModel, PropModel, Topology};
use graphite_tgraph::graph::TemporalGraph;

/// Snapshot count used by the paper's weak-scaling graph.
pub const WEAK_SCALING_SNAPSHOTS: i64 = 128;

/// Parameters for the weak-scaling graph at `machines` workers with a
/// per-machine budget of `vertices_per_machine` vertices (edges are 10×,
/// matching the paper's 10 M vertices / 100 M edges per machine ratio).
pub fn weak_scaling_params(machines: usize, vertices_per_machine: usize, seed: u64) -> GenParams {
    let vertices = machines.max(1) * vertices_per_machine;
    GenParams {
        vertices,
        edges: vertices * 10,
        snapshots: WEAK_SCALING_SNAPSHOTS,
        topology: Topology::PowerLaw {
            edges_per_vertex: 10,
        },
        vertex_lifespans: LifespanModel::Full,
        // LinkBench-style churn: edges appear and disappear with a mean
        // dwell time of a quarter of the horizon.
        edge_lifespans: LifespanModel::Geometric { mean: 32.0 },
        props: PropModel {
            mean_segment: 16.0,
            max_cost: 10,
            max_travel_time: 1,
        },
        seed,
    }
}

/// Generates the weak-scaling graph.
pub fn weak_scaling_graph(
    machines: usize,
    vertices_per_machine: usize,
    seed: u64,
) -> TemporalGraph {
    generate(&weak_scaling_params(machines, vertices_per_machine, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_scales_with_machines() {
        let g1 = weak_scaling_graph(1, 300, 9);
        let g4 = weak_scaling_graph(4, 300, 9);
        assert_eq!(g1.num_vertices(), 300);
        assert_eq!(g4.num_vertices(), 1200);
        let ratio = g4.num_edges() as f64 / g1.num_edges() as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "edge budget should scale ~4x, got {ratio}"
        );
    }

    #[test]
    fn horizon_is_128_snapshots() {
        let g = weak_scaling_graph(1, 200, 1);
        assert_eq!(
            graphite_tgraph::snapshot::snapshot_window(&g),
            Some(graphite_tgraph::time::Interval::new(
                0,
                WEAK_SCALING_SNAPSHOTS
            ))
        );
    }
}
