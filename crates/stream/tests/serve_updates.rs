//! Streaming × serving integration (DESIGN.md §17): a resident
//! `ServeEngine` answers queries *between* update batches. Each ingested
//! batch installs the refreshed graph as a new serve epoch; cached
//! results from older epochs can never answer (cache keys carry the
//! structure digest) and every served digest is bit-identical to a solo
//! engine over the same generation.

use graphite_algorithms::registry::{Algo, Platform};
use graphite_datagen::stream::derive_update_stream;
use graphite_datagen::{GenParams, LifespanModel, PropModel};
use graphite_serve::{QuerySpec, ServeConfig, ServeEngine};
use graphite_stream::prelude::*;
use graphite_tgraph::graph::VertexId;
use std::sync::Arc;

fn churny(seed: u64) -> GenParams {
    GenParams {
        vertices: 60,
        edges: 240,
        snapshots: 10,
        vertex_lifespans: LifespanModel::Geometric { mean: 6.0 },
        edge_lifespans: LifespanModel::Geometric { mean: 4.0 },
        props: PropModel {
            mean_segment: 3.0,
            max_cost: 10,
            max_travel_time: 2,
        },
        ..GenParams::small(seed)
    }
}

fn bfs_spec(source: VertexId) -> QuerySpec {
    QuerySpec {
        algo: Algo::Bfs,
        platform: Platform::Icm,
        workers: 2,
        source: Some(source),
        ..QuerySpec::default()
    }
}

/// Queries interleaved with batches: after each ingest + install, the
/// resident engine re-executes (no stale cache hit), matches a solo
/// engine over the same graph, and caches normally within the epoch.
#[test]
fn queries_between_batches_track_each_installed_epoch() {
    let stream = derive_update_stream(&churny(61), 4);
    let source = stream
        .base
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty base");
    let spec = bfs_spec(source);

    let mut engine = StreamEngine::new(
        Arc::new(stream.base.clone()),
        StreamConfig {
            check_every: 1,
            ..StreamConfig::default()
        },
    );
    engine.register(AlgoSpec::Bfs { source }).expect("register");
    let serve = ServeEngine::new(engine.graph(), ServeConfig::default());

    let warm = serve.serve_batch(&[spec.clone(), spec.clone()]);
    assert!(!warm[0].as_ref().expect("cold run").cached);
    assert!(warm[1].as_ref().expect("warm hit").cached);

    for (i, delta) in stream.batches.iter().enumerate() {
        let report = engine.ingest(delta).expect("differentially clean batch");
        let serial = serve.install_graph(engine.graph());
        assert_eq!(serial, i as u64 + 1);
        assert_eq!(serve.graph_digest(), report.graph_digest);

        let results = serve.serve_batch(&[spec.clone(), spec.clone()]);
        let fresh = results[0].as_ref().expect("epoch run");
        let hit = results[1].as_ref().expect("epoch hit");
        assert!(
            !fresh.cached,
            "batch {}: an older epoch's cache entry must not answer",
            i + 1
        );
        assert!(hit.cached, "within-epoch repeat caches normally");

        let solo = ServeEngine::new(engine.graph(), ServeConfig::default());
        assert_eq!(
            fresh.digest,
            solo.serve_batch(std::slice::from_ref(&spec))[0]
                .as_ref()
                .expect("solo run")
                .digest,
            "batch {}: resident result must match a solo engine",
            i + 1
        );
    }
    assert_eq!(serve.graph_digest(), stream.final_digest);
}
