//! The streaming correctness contract (ISSUE acceptance): after **every**
//! ingested batch, the incrementally maintained result is bit-identical
//! (digest-equal) to a from-scratch recomputation on the refreshed graph —
//! across algorithms × worker counts × perturb seeds × partition
//! strategies. `check_every: 1` makes the engine itself perform the
//! comparison and fail the ingest on any divergence, so a clean replay
//! *is* the differential assertion.

use graphite_datagen::stream::derive_update_stream;
use graphite_datagen::{GenParams, LifespanModel, PropModel, UpdateStream};
use graphite_part::PartitionStrategy;
use graphite_stream::prelude::*;
use graphite_tgraph::graph::VertexId;
use std::sync::Arc;

fn churny(seed: u64) -> GenParams {
    GenParams {
        vertices: 80,
        edges: 320,
        snapshots: 12,
        vertex_lifespans: LifespanModel::Geometric { mean: 7.0 },
        edge_lifespans: LifespanModel::Geometric { mean: 4.0 },
        props: PropModel {
            mean_segment: 3.0,
            max_cost: 10,
            max_travel_time: 2,
        },
        ..GenParams::small(seed)
    }
}

fn source(stream: &UpdateStream) -> VertexId {
    stream
        .base
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty base")
}

fn all_algos(source: VertexId) -> [AlgoSpec; 3] {
    [
        AlgoSpec::Bfs { source },
        AlgoSpec::Eat { source, start: 0 },
        AlgoSpec::Reach { source, start: 0 },
    ]
}

/// Replays `stream` through an engine that differentially checks every
/// batch, returning the per-batch reports.
fn replay_checked(stream: &UpdateStream, cfg: StreamConfig) -> Vec<BatchReport> {
    let mut engine = StreamEngine::new(Arc::new(stream.base.clone()), cfg);
    for spec in all_algos(source(stream)) {
        engine
            .register(spec)
            .expect("initial from-scratch run succeeds");
    }
    let reports: Vec<BatchReport> = stream
        .batches
        .iter()
        .map(|delta| {
            engine
                .ingest(delta)
                .expect("incremental result must digest-equal from-scratch")
        })
        .collect();
    assert_eq!(
        engine.structure_digest(),
        stream.final_digest,
        "replayed graph must converge onto the one-shot generation"
    );
    reports
}

/// The acceptance matrix: {BFS, EAT, Reach} × {2, 5} workers × perturb
/// seeds × partition strategies, differentially checked after every batch.
#[test]
fn incremental_matches_from_scratch_across_the_matrix() {
    let stream = derive_update_stream(&churny(41), 3);
    for &workers in &[2usize, 5] {
        for &perturb in &[None, Some(7u64)] {
            for partition in [PartitionStrategy::Hash, PartitionStrategy::TemporalBalance] {
                let reports = replay_checked(
                    &stream,
                    StreamConfig {
                        workers,
                        compact_every: 2,
                        check_every: 1,
                        perturb_schedule: perturb,
                        partition: partition.clone(),
                        ..StreamConfig::default()
                    },
                );
                assert_eq!(reports.len(), 3);
                assert!(
                    reports.iter().all(|r| r.checked),
                    "check_every=1 must verify every batch"
                );
                assert!(reports.iter().all(|r| r.algos.len() == 3));
            }
        }
    }
}

/// Result digests are a property of the graph + algorithm alone: every
/// engine configuration in the matrix reports the same per-batch digests.
#[test]
fn batch_digests_are_configuration_independent() {
    let stream = derive_update_stream(&churny(43), 4);
    let digests = |workers: usize, partition: PartitionStrategy, compact_every: u64| {
        replay_checked(
            &stream,
            StreamConfig {
                workers,
                compact_every,
                check_every: 2,
                partition,
                ..StreamConfig::default()
            },
        )
        .iter()
        .map(|r| {
            (
                r.graph_digest,
                r.algos.iter().map(|a| a.result_digest).collect::<Vec<_>>(),
            )
        })
        .collect::<Vec<_>>()
    };
    let reference = digests(2, PartitionStrategy::Hash, 1);
    assert_eq!(reference, digests(5, PartitionStrategy::Hash, 8));
    assert_eq!(reference, digests(3, PartitionStrategy::Chunked, 2));
    assert_eq!(reference, digests(2, PartitionStrategy::Ldg, 3));
}

/// The warm start genuinely reuses the carried fixpoint: across a sparse
/// batch the incremental maintenance does less compute work than its own
/// from-scratch differential check.
#[test]
fn warm_start_does_less_work_than_recompute() {
    let stream = derive_update_stream(&churny(47), 6);
    let reports = replay_checked(
        &stream,
        StreamConfig {
            check_every: 1,
            ..StreamConfig::default()
        },
    );
    // BFS converges in one superstep from a warm fixpoint on batches that
    // don't change its frontier structure; demand at least that *some*
    // batch shows the short-circuit for every algorithm.
    for (i, name) in ["bfs", "eat", "reach"].iter().enumerate() {
        let min_supersteps = reports
            .iter()
            .map(|r| r.algos[i].supersteps)
            .min()
            .expect("non-empty");
        assert_eq!(reports[0].algos[i].name, *name);
        assert!(
            min_supersteps <= 8,
            "{name}: warm-started runs should re-converge quickly \
             (min supersteps {min_supersteps})"
        );
    }
}

/// Round-trip through the `graphite-updates/1` text format preserves the
/// replay bit-exactly.
#[test]
fn updates_io_roundtrip_preserves_replay() {
    let stream = derive_update_stream(&churny(53), 3);
    let mut buf = Vec::new();
    write_updates(&stream.batches, &mut buf).expect("serialize");
    let reloaded = read_updates(buf.as_slice()).expect("parse back");
    assert_eq!(reloaded.len(), stream.batches.len());

    let mut engine = StreamEngine::new(
        Arc::new(stream.base.clone()),
        StreamConfig {
            check_every: 1,
            ..StreamConfig::default()
        },
    );
    for spec in all_algos(source(&stream)) {
        engine.register(spec).expect("register");
    }
    for delta in &reloaded {
        engine.ingest(delta).expect("reloaded batches check clean");
    }
    assert_eq!(engine.structure_digest(), stream.final_digest);
}
