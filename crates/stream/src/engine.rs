//! The [`StreamEngine`]: ingest [`GraphDelta`] batches against a resident
//! frozen graph and keep registered monotone algorithms current by
//! warm-started incremental recomputation (DESIGN.md §17).
//!
//! Per batch the engine (1) computes the dirty vertex set against the
//! pre-batch graph, (2) applies the delta through the [`DeltaOverlay`]
//! (with its deterministic compaction cadence), (3) re-converges every
//! registered algorithm from its previous fixpoint via
//! [`Resumed`](crate::resume::Resumed), and (4) on the configured
//! differential cadence re-runs each algorithm from scratch and demands
//! bit-identical result digests — the correctness instrument the whole
//! subsystem is pinned by.
//!
//! All measurement goes through the engine's [`TraceSink`] (`stream_*`
//! extras in the `graphite-trace/1` vocabulary); stream code never touches
//! the clock directly.

use crate::resume::{dirty_vertices, PrevStates, Resumed};
use graphite_algorithms::bfs::IcmBfs;
use graphite_algorithms::common::{digest_interval_states, AlgLabels};
use graphite_algorithms::td_paths::{IcmEat, IcmReach};
use graphite_bsp::error::BspError;
use graphite_bsp::metrics::UserCounters;
use graphite_bsp::trace::{RunTrace, TraceConfig, TraceEvent, TraceSink};
use graphite_icm::prelude::*;
use graphite_part::PartitionStrategy;
use graphite_tgraph::delta::{DeltaOverlay, GraphDelta};
use graphite_tgraph::error::GraphError;
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use graphite_tgraph::snapshot::snapshot_window;
use graphite_tgraph::time::{Interval, Time};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Streaming-engine configuration.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// BSP workers per maintenance run.
    pub workers: usize,
    /// Verifying-compaction cadence of the delta overlay: every
    /// `compact_every`-th batch re-derives the structure digest from
    /// content and fails on drift. `0` disables verification (every batch
    /// is a fast freeze).
    pub compact_every: u64,
    /// Differential cadence: every `check_every`-th batch re-runs each
    /// registered algorithm from scratch and compares result digests.
    /// `0` disables the in-line check (the test matrix still enforces it).
    pub check_every: u64,
    /// Permute BSP scheduling freedoms with this seed (results must not
    /// change; composed with the differential matrix in tests).
    pub perturb_schedule: Option<u64>,
    /// Vertex-placement strategy for maintenance runs.
    pub partition: PartitionStrategy,
    /// Trace level for the engine's own `stream_*` extras.
    pub trace: TraceConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            workers: 2,
            compact_every: 8,
            check_every: 0,
            perturb_schedule: None,
            partition: PartitionStrategy::default(),
            trace: TraceConfig::default(),
        }
    }
}

/// A registered algorithm: the monotone programs the incremental protocol
/// is sound for (min-merge / or-merge over insert/extend-only deltas).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoSpec {
    /// Per-snapshot hop distance from `source`.
    Bfs {
        /// BFS source vertex.
        source: VertexId,
    },
    /// Earliest arrival time from `source`, departing at `start`.
    Eat {
        /// Journey source vertex.
        source: VertexId,
        /// Journey start time.
        start: Time,
    },
    /// Temporal reachability from `source`, departing at `start`.
    Reach {
        /// Journey source vertex.
        source: VertexId,
        /// Journey start time.
        start: Time,
    },
}

/// Renders one ingested batch's `stream_*` extras as a one-step
/// `graphite-trace/1` run (mirroring the serving layer's health row): a
/// `worker_step` whose `extras` carry the counters, closed by a halted
/// `step_end` so the stream parses as a complete step. Ready for
/// `maybe_emit`.
pub fn batch_trace(report: &BatchReport) -> RunTrace {
    let mut trace = RunTrace::default();
    trace.push(TraceEvent::WorkerStep {
        step: report.batch,
        worker: 0,
        active_vertices: 0,
        messages_in: 0,
        counters: UserCounters::default(),
        extras: report.extras.clone(),
        compute_ns: 0,
    });
    trace.push(TraceEvent::StepEnd {
        step: report.batch,
        sent: 0,
        halted: true,
        compute_ns: 0,
        messaging_ns: 0,
        barrier_ns: 0,
    });
    trace
}

impl AlgoSpec {
    /// Stable short name (used in reports and traces).
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Bfs { .. } => "bfs",
            AlgoSpec::Eat { .. } => "eat",
            AlgoSpec::Reach { .. } => "reach",
        }
    }
}

/// Per-algorithm slice of a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct AlgoReport {
    /// Algorithm short name.
    pub name: &'static str,
    /// Result digest after this batch (per-(vertex, time-point) fold over
    /// the snapshot window).
    pub result_digest: u64,
    /// Supersteps the incremental maintenance run took.
    pub supersteps: u64,
    /// Compute calls the incremental maintenance run took.
    pub compute_calls: u64,
}

/// What one ingested batch did.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// 1-based batch number.
    pub batch: u64,
    /// Operations in the delta.
    pub ops: usize,
    /// Dirty vertices re-seeded by the maintenance runs.
    pub dirty: usize,
    /// Structure digest of the refreshed graph.
    pub graph_digest: u64,
    /// Whether this batch ran the differential full-recompute check.
    pub checked: bool,
    /// Per-algorithm results.
    pub algos: Vec<AlgoReport>,
    /// Drained `stream_*` trace extras (empty when tracing is off).
    pub extras: Vec<(&'static str, u64)>,
}

/// Streaming failures.
#[derive(Debug)]
pub enum StreamError {
    /// The delta violated graph constraints or the overlay digest drifted.
    Graph(GraphError),
    /// A maintenance run failed in the BSP runtime.
    Run(BspError),
    /// The differential check caught an incremental/from-scratch mismatch.
    DifferentialMismatch {
        /// Algorithm short name.
        algo: &'static str,
        /// Batch at which the divergence surfaced.
        batch: u64,
        /// Digest of the incrementally maintained result.
        incremental: u64,
        /// Digest of the from-scratch recomputation.
        from_scratch: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Graph(e) => write!(f, "delta rejected: {e}"),
            StreamError::Run(e) => write!(f, "maintenance run failed: {e}"),
            StreamError::DifferentialMismatch {
                algo,
                batch,
                incremental,
                from_scratch,
            } => write!(
                f,
                "batch {batch}: incremental {algo} digest {incremental:#018x} != from-scratch {from_scratch:#018x}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<GraphError> for StreamError {
    fn from(e: GraphError) -> Self {
        StreamError::Graph(e)
    }
}

impl From<BspError> for StreamError {
    fn from(e: BspError) -> Self {
        StreamError::Run(e)
    }
}

/// One registered algorithm plus its carried fixpoint.
struct Slot {
    spec: AlgoSpec,
    prev_long: PrevStates<i64>,
    prev_bool: PrevStates<bool>,
}

/// The resident streaming engine. See the module docs for the per-batch
/// protocol; see [`crate::resume`] for the warm-start soundness argument.
pub struct StreamEngine {
    graph: Arc<TemporalGraph>,
    overlay: DeltaOverlay,
    cfg: StreamConfig,
    slots: Vec<Slot>,
    batches: u64,
    sink: TraceSink,
}

impl StreamEngine {
    /// Takes residence over `graph`.
    pub fn new(graph: Arc<TemporalGraph>, cfg: StreamConfig) -> Self {
        let overlay = DeltaOverlay::new(&graph, cfg.compact_every);
        let sink = TraceSink::new(cfg.trace);
        StreamEngine {
            graph,
            overlay,
            cfg,
            slots: Vec::new(),
            batches: 0,
            sink,
        }
    }

    /// The current frozen graph (refreshed after every ingested batch).
    pub fn graph(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.graph)
    }

    /// Structure digest of the current graph (O(1), memoized).
    pub fn structure_digest(&self) -> u64 {
        self.graph.structure_digest()
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    fn icm_config(&self) -> IcmConfig {
        IcmConfig {
            workers: self.cfg.workers,
            perturb_schedule: self.cfg.perturb_schedule,
            partition: self.cfg.partition.clone(),
            ..Default::default()
        }
    }

    fn window(graph: &TemporalGraph) -> Interval {
        snapshot_window(graph).unwrap_or(Interval::new(0, 1))
    }

    /// Registers `spec` and runs its initial from-scratch computation on
    /// the current graph, returning the initial result digest.
    ///
    /// # Errors
    ///
    /// [`StreamError::Run`] when the initial computation fails.
    pub fn register(&mut self, spec: AlgoSpec) -> Result<u64, StreamError> {
        let cfg = self.icm_config();
        let window = Self::window(&self.graph);
        let mut slot = Slot {
            spec,
            prev_long: Arc::new(Default::default()),
            prev_bool: Arc::new(Default::default()),
        };
        let digest = match spec {
            AlgoSpec::Bfs { source } => {
                let r = try_run_icm(&self.graph, Arc::new(IcmBfs { source }), &cfg)?;
                let d = digest_interval_states(&r.states, window, |s: &i64| *s as u64);
                slot.prev_long = Arc::new(r.states);
                d.0
            }
            AlgoSpec::Eat { source, start } => {
                let labels = AlgLabels::resolve(&self.graph);
                let r = try_run_icm(
                    &self.graph,
                    Arc::new(IcmEat {
                        source,
                        start,
                        labels,
                    }),
                    &cfg,
                )?;
                let d = digest_interval_states(&r.states, window, |s: &i64| *s as u64);
                slot.prev_long = Arc::new(r.states);
                d.0
            }
            AlgoSpec::Reach { source, start } => {
                let labels = AlgLabels::resolve(&self.graph);
                let r = try_run_icm(
                    &self.graph,
                    Arc::new(IcmReach {
                        source,
                        start,
                        labels,
                    }),
                    &cfg,
                )?;
                let d = digest_interval_states(&r.states, window, |s: &bool| u64::from(*s));
                slot.prev_bool = Arc::new(r.states);
                d.0
            }
        };
        self.slots.push(slot);
        Ok(digest)
    }

    /// Ingests one update batch: applies the delta (with the overlay's
    /// compaction cadence), re-converges every registered algorithm from
    /// its previous fixpoint, and on the differential cadence verifies
    /// against from-scratch recomputation.
    ///
    /// # Errors
    ///
    /// [`StreamError::Graph`] on a rejected delta or digest drift;
    /// [`StreamError::Run`] on a failed maintenance run;
    /// [`StreamError::DifferentialMismatch`] when an incremental result
    /// diverges from the from-scratch recomputation.
    pub fn ingest(&mut self, delta: &GraphDelta) -> Result<BatchReport, StreamError> {
        let dirty = Arc::new(dirty_vertices(&self.graph, delta));
        let overlay = &mut self.overlay;
        let graph = Arc::new(
            self.sink
                .timed("stream_apply_ns", || overlay.apply_and_freeze(delta))?,
        );
        self.batches += 1;
        let batch = self.batches;
        let check = self.cfg.check_every > 0 && batch.is_multiple_of(self.cfg.check_every);
        let cfg = self.icm_config();
        let window = Self::window(&graph);

        let mut algos = Vec::with_capacity(self.slots.len());
        let mut inc_compute = 0u64;
        for slot in &mut self.slots {
            let report = match slot.spec {
                AlgoSpec::Bfs { source } => maintain_long(
                    &graph,
                    |prev, dirty| Resumed::new(IcmBfs { source }, prev, dirty),
                    || IcmBfs { source },
                    slot,
                    &dirty,
                    &cfg,
                    window,
                    check,
                    batch,
                    &mut self.sink,
                )?,
                AlgoSpec::Eat { source, start } => {
                    let labels = AlgLabels::resolve(&graph);
                    let mk = |l: &AlgLabels| IcmEat {
                        source,
                        start,
                        labels: *l,
                    };
                    maintain_long(
                        &graph,
                        |prev, dirty| Resumed::new(mk(&labels), prev, dirty),
                        || mk(&labels),
                        slot,
                        &dirty,
                        &cfg,
                        window,
                        check,
                        batch,
                        &mut self.sink,
                    )?
                }
                AlgoSpec::Reach { source, start } => {
                    let labels = AlgLabels::resolve(&graph);
                    let mk = |l: &AlgLabels| IcmReach {
                        source,
                        start,
                        labels: *l,
                    };
                    maintain_bool(
                        &graph,
                        |prev, dirty| Resumed::new(mk(&labels), prev, dirty),
                        || mk(&labels),
                        slot,
                        &dirty,
                        &cfg,
                        window,
                        check,
                        batch,
                        &mut self.sink,
                    )?
                }
            };
            inc_compute += report.compute_calls;
            algos.push(report);
        }

        self.sink.add("stream_batches", 1);
        self.sink.add("stream_ops", delta.len() as u64);
        self.sink.add("stream_dirty_vertices", dirty.len() as u64);
        self.sink.add("stream_inc_compute_calls", inc_compute);
        if check {
            self.sink.add("stream_digest_checks", 1);
        }
        self.graph = graph;
        Ok(BatchReport {
            batch,
            ops: delta.len(),
            dirty: dirty.len(),
            graph_digest: self.graph.structure_digest(),
            checked: check,
            algos,
            extras: self.sink.take_extras(),
        })
    }
}

/// Warm-started maintenance for `i64`-state programs (BFS, EAT), with the
/// optional differential check.
#[allow(clippy::too_many_arguments)]
fn maintain_long<P, W, C>(
    graph: &Arc<TemporalGraph>,
    warm: W,
    cold: C,
    slot: &mut Slot,
    dirty: &Arc<BTreeSet<VertexId>>,
    cfg: &IcmConfig,
    window: Interval,
    check: bool,
    batch: u64,
    sink: &mut TraceSink,
) -> Result<AlgoReport, StreamError>
where
    P: IntervalProgram<State = i64>,
    W: FnOnce(PrevStates<i64>, Arc<BTreeSet<VertexId>>) -> Resumed<P>,
    C: FnOnce() -> P,
{
    let program = Arc::new(warm(Arc::clone(&slot.prev_long), Arc::clone(dirty)));
    let r = sink.timed("stream_incremental_ns", || try_run_icm(graph, program, cfg))?;
    let digest = digest_interval_states(&r.states, window, |s: &i64| *s as u64);
    if check {
        let scratch = sink.timed("stream_full_check_ns", || {
            try_run_icm(graph, Arc::new(cold()), cfg)
        })?;
        let expect = digest_interval_states(&scratch.states, window, |s: &i64| *s as u64);
        if digest != expect {
            sink.add("stream_digest_mismatches", 1);
            return Err(StreamError::DifferentialMismatch {
                algo: slot.spec.name(),
                batch,
                incremental: digest.0,
                from_scratch: expect.0,
            });
        }
    }
    let report = AlgoReport {
        name: slot.spec.name(),
        result_digest: digest.0,
        supersteps: r.metrics.supersteps,
        compute_calls: r.metrics.counters.compute_calls,
    };
    slot.prev_long = Arc::new(r.states);
    Ok(report)
}

/// Warm-started maintenance for `bool`-state programs (Reachability).
#[allow(clippy::too_many_arguments)]
fn maintain_bool<P, W, C>(
    graph: &Arc<TemporalGraph>,
    warm: W,
    cold: C,
    slot: &mut Slot,
    dirty: &Arc<BTreeSet<VertexId>>,
    cfg: &IcmConfig,
    window: Interval,
    check: bool,
    batch: u64,
    sink: &mut TraceSink,
) -> Result<AlgoReport, StreamError>
where
    P: IntervalProgram<State = bool>,
    W: FnOnce(PrevStates<bool>, Arc<BTreeSet<VertexId>>) -> Resumed<P>,
    C: FnOnce() -> P,
{
    let program = Arc::new(warm(Arc::clone(&slot.prev_bool), Arc::clone(dirty)));
    let r = sink.timed("stream_incremental_ns", || try_run_icm(graph, program, cfg))?;
    let digest = digest_interval_states(&r.states, window, |s: &bool| u64::from(*s));
    if check {
        let scratch = sink.timed("stream_full_check_ns", || {
            try_run_icm(graph, Arc::new(cold()), cfg)
        })?;
        let expect = digest_interval_states(&scratch.states, window, |s: &bool| u64::from(*s));
        if digest != expect {
            sink.add("stream_digest_mismatches", 1);
            return Err(StreamError::DifferentialMismatch {
                algo: slot.spec.name(),
                batch,
                incremental: digest.0,
                from_scratch: expect.0,
            });
        }
    }
    let report = AlgoReport {
        name: slot.spec.name(),
        result_digest: digest.0,
        supersteps: r.metrics.supersteps,
        compute_calls: r.metrics.counters.compute_calls,
    };
    slot.prev_bool = Arc::new(r.states);
    Ok(report)
}
