//! Text persistence for update streams (`graphite-updates/1`).
//!
//! A stream is a sequence of [`GraphDelta`] batches. The format is
//! line-oriented and shares the temporal-graph text conventions
//! (`graphite_tgraph::io`): `-inf`/`inf` endpoints, `i:`/`f:`/`b:`/`s:`
//! value tags, `#` comments, blank lines ignored.
//!
//! ```text
//! graphite-updates/1
//! B 1                      # batch boundary (1-based)
//! V 7 3 9                  # insert vertex 7 over [3, 9)
//! E 12 7 2 4 8             # insert edge 12: 7 -> 2 over [4, 8)
//! XV 2 14                  # extend vertex 2's lifespan to end 14
//! XE 5 11                  # extend edge 5's lifespan to end 11
//! EP 12 w 4 8 i:3          # edge property entry
//! XP 5 w 11                # extend edge 5's rightmost "w" entry to 11
//! ```
//!
//! Ops within a batch keep their line order inside each op class; classes
//! apply in [`GraphDelta`]'s documented fixed order.

use graphite_tgraph::delta::GraphDelta;
use graphite_tgraph::graph::{EdgeId, VertexId};
use graphite_tgraph::io::{fmt_time, fmt_value, parse_time, parse_value};
use graphite_tgraph::time::Interval;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Format header line.
pub const UPDATES_HEADER: &str = "graphite-updates/1";

/// Errors from reading the update-stream text format.
#[derive(Debug)]
pub enum UpdatesIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for UpdatesIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdatesIoError::Io(e) => write!(f, "i/o error: {e}"),
            UpdatesIoError::Parse { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for UpdatesIoError {}

impl From<std::io::Error> for UpdatesIoError {
    fn from(e: std::io::Error) -> Self {
        UpdatesIoError::Io(e)
    }
}

/// Serializes `batches` into the update-stream text format.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn write_updates<W: Write>(batches: &[GraphDelta], mut out: W) -> std::io::Result<()> {
    let mut text = String::new();
    text.push_str(UPDATES_HEADER);
    text.push('\n');
    for (k, d) in batches.iter().enumerate() {
        // lint:allow(no-unwrap) — `write!` to a String cannot fail.
        let _ = writeln!(text, "B {}", k + 1);
        for &(vid, iv) in &d.insert_vertices {
            let _ = writeln!(
                text,
                "V {} {} {}",
                vid.0,
                fmt_time(iv.start()),
                fmt_time(iv.end())
            );
        }
        for &(vid, end) in &d.extend_vertices {
            let _ = writeln!(text, "XV {} {}", vid.0, fmt_time(end));
        }
        for &(eid, src, dst, iv) in &d.insert_edges {
            let _ = writeln!(
                text,
                "E {} {} {} {} {}",
                eid.0,
                src.0,
                dst.0,
                fmt_time(iv.start()),
                fmt_time(iv.end())
            );
        }
        for &(eid, end) in &d.extend_edges {
            let _ = writeln!(text, "XE {} {}", eid.0, fmt_time(end));
        }
        for (eid, label, end) in &d.extend_edge_props {
            let _ = writeln!(text, "XP {} {} {}", eid.0, label, fmt_time(*end));
        }
        for (vid, label, iv, value) in &d.vertex_props {
            let _ = writeln!(
                text,
                "VP {} {} {} {} {}",
                vid.0,
                label,
                fmt_time(iv.start()),
                fmt_time(iv.end()),
                fmt_value(value)
            );
        }
        for (eid, label, iv, value) in &d.edge_props {
            let _ = writeln!(
                text,
                "EP {} {} {} {} {}",
                eid.0,
                label,
                fmt_time(iv.start()),
                fmt_time(iv.end()),
                fmt_value(value)
            );
        }
    }
    out.write_all(text.as_bytes())
}

fn bad(line: usize, reason: impl Into<String>) -> UpdatesIoError {
    UpdatesIoError::Parse {
        line,
        reason: reason.into(),
    }
}

fn interval(start: &str, end: &str, line: usize) -> Result<Interval, UpdatesIoError> {
    let s = parse_time(start).ok_or_else(|| bad(line, format!("bad time {start:?}")))?;
    let e = parse_time(end).ok_or_else(|| bad(line, format!("bad time {end:?}")))?;
    Interval::try_new(s, e).ok_or_else(|| bad(line, format!("empty interval [{s}, {e})")))
}

/// Parses an update stream written by [`write_updates`].
///
/// # Errors
///
/// [`UpdatesIoError`] on I/O failure or a malformed line. Constraint
/// violations surface later, when a batch is applied to a graph.
pub fn read_updates<R: Read>(input: R) -> Result<Vec<GraphDelta>, UpdatesIoError> {
    let reader = BufReader::new(input);
    let mut batches: Vec<GraphDelta> = Vec::new();
    let mut saw_header = false;
    for (i, line) in reader.lines().enumerate() {
        let n = i + 1;
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            if line != UPDATES_HEADER {
                return Err(bad(n, format!("expected {UPDATES_HEADER:?} header")));
            }
            saw_header = true;
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let parse_u64 = |s: &str| -> Result<u64, UpdatesIoError> {
            s.parse().map_err(|_| bad(n, format!("bad id {s:?}")))
        };
        match fields.as_slice() {
            ["B", _] => batches.push(GraphDelta::new()),
            _ => {
                let d = batches
                    .last_mut()
                    .ok_or_else(|| bad(n, "op before first `B` batch line"))?;
                match fields.as_slice() {
                    ["V", vid, s, e] => {
                        d.insert_vertex(VertexId(parse_u64(vid)?), interval(s, e, n)?);
                    }
                    ["XV", vid, end] => {
                        let t = parse_time(end).ok_or_else(|| bad(n, "bad time"))?;
                        d.extend_vertex(VertexId(parse_u64(vid)?), t);
                    }
                    ["E", eid, src, dst, s, e] => {
                        d.insert_edge(
                            EdgeId(parse_u64(eid)?),
                            VertexId(parse_u64(src)?),
                            VertexId(parse_u64(dst)?),
                            interval(s, e, n)?,
                        );
                    }
                    ["XE", eid, end] => {
                        let t = parse_time(end).ok_or_else(|| bad(n, "bad time"))?;
                        d.extend_edge(EdgeId(parse_u64(eid)?), t);
                    }
                    ["XP", eid, label, end] => {
                        let t = parse_time(end).ok_or_else(|| bad(n, "bad time"))?;
                        d.extend_edge_property(EdgeId(parse_u64(eid)?), label, t);
                    }
                    ["VP", vid, label, s, e, value] => {
                        let v = parse_value(value)
                            .ok_or_else(|| bad(n, format!("bad value {value:?}")))?;
                        d.vertex_property(VertexId(parse_u64(vid)?), label, interval(s, e, n)?, v);
                    }
                    ["EP", eid, label, s, e, value] => {
                        let v = parse_value(value)
                            .ok_or_else(|| bad(n, format!("bad value {value:?}")))?;
                        d.edge_property(EdgeId(parse_u64(eid)?), label, interval(s, e, n)?, v);
                    }
                    _ => return Err(bad(n, format!("unrecognized op {:?}", fields[0]))),
                }
            }
        }
    }
    Ok(batches)
}

/// Writes `batches` to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_updates<P: AsRef<Path>>(batches: &[GraphDelta], path: P) -> std::io::Result<()> {
    write_updates(batches, std::fs::File::create(path)?)
}

/// Loads an update stream from `path`.
///
/// # Errors
///
/// See [`read_updates`].
pub fn load_updates<P: AsRef<Path>>(path: P) -> Result<Vec<GraphDelta>, UpdatesIoError> {
    read_updates(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::property::PropValue;

    #[test]
    fn round_trips() {
        let mut b1 = GraphDelta::new();
        b1.insert_vertex(VertexId(9), Interval::new(0, 5));
        b1.extend_vertex(VertexId(1), 12);
        b1.insert_edge(EdgeId(4), VertexId(9), VertexId(1), Interval::new(1, 4));
        b1.edge_property(EdgeId(4), "w", Interval::new(1, 3), PropValue::Long(7));
        let mut b2 = GraphDelta::new();
        b2.extend_edge(EdgeId(4), 9);
        b2.extend_edge_property(EdgeId(4), "w", 6);
        let mut out = Vec::new();
        write_updates(&[b1, b2], &mut out).unwrap();
        let parsed = read_updates(&out[..]).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].len(), 4);
        assert_eq!(parsed[1].len(), 2);
        assert_eq!(
            parsed[0].insert_vertices,
            vec![(VertexId(9), Interval::new(0, 5))]
        );
        assert_eq!(parsed[1].extend_edges, vec![(EdgeId(4), 9)]);
        assert_eq!(
            parsed[1].extend_edge_props,
            vec![(EdgeId(4), "w".to_owned(), 6)]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_updates(&b"nope\n"[..]).is_err());
        assert!(read_updates(&b"graphite-updates/1\nV 1 0 5\n"[..]).is_err());
        assert!(read_updates(&b"graphite-updates/1\nB 1\nQ 1\n"[..]).is_err());
        assert!(read_updates(&b"graphite-updates/1\nB 1\nV 1 5 5\n"[..]).is_err());
    }
}
