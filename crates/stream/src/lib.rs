//! `graphite-stream`: live graph updates with incremental recomputation
//! (DESIGN.md §17).
//!
//! The batch engine (`graphite-icm`) computes over a `TemporalGraph`
//! frozen at load time; this crate keeps results *current* against a
//! stream of timestamped update batches:
//!
//! * [`graphite_tgraph::delta`] (re-exported through the prelude) stages
//!   [`GraphDelta`](graphite_tgraph::delta::GraphDelta) batches over the
//!   frozen CSR graph and compacts back with the structure digest folded
//!   incrementally;
//! * [`resume`] wraps any monotone
//!   [`IntervalProgram`](graphite_icm::prelude::IntervalProgram) so it
//!   re-converges from a previous fixpoint, re-seeding only the vertices
//!   whose warp alignment the batch changed;
//! * [`engine`] is the resident [`StreamEngine`](engine::StreamEngine):
//!   per ingested batch it refreshes the graph, warm-starts every
//!   registered algorithm (BFS / EAT / Reachability), and on a
//!   deterministic cadence verifies the incremental results digest-equal
//!   to a from-scratch recomputation;
//! * [`io`] persists update streams as `graphite-updates/1` text.
//!
//! Correctness is pinned by the differential matrix in
//! `tests/differential.rs`: after **every** batch, the incremental result
//! digest equals the from-scratch digest, across algorithms × worker
//! counts × perturb seeds × partition strategies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod io;
pub mod resume;

/// The common imports: `use graphite_stream::prelude::*;`.
pub mod prelude {
    pub use crate::engine::{
        batch_trace, AlgoSpec, BatchReport, StreamConfig, StreamEngine, StreamError,
    };
    pub use crate::io::{load_updates, read_updates, save_updates, write_updates};
    pub use crate::resume::{dirty_vertices, Resumed};
    pub use graphite_tgraph::delta::{DeltaOverlay, GraphDelta};
}
