//! Warm-started resumption of monotone interval programs (DESIGN.md §17).
//!
//! [`Resumed`] wraps an [`IntervalProgram`] together with a previous run's
//! converged states and the set of *dirty* vertices — the vertices whose
//! time-warp alignment the latest update batch may have changed. The
//! wrapped program re-converges with work proportional to the batch:
//!
//! * **Clean vertices** restore their previous states through the engine's
//!   `warm_start` hook, which overlays them *without* marking them changed:
//!   a clean vertex holds its fixpoint silently — no compute activity, no
//!   scatter — unless messages from the dirty frontier improve on it.
//! * **Dirty vertices** start cold and have their previous states written
//!   back as *real* state changes in superstep 1, so they re-scatter their
//!   full converged state over **all** incident edges — including edges the
//!   batch just inserted or extended — before the inner program's own
//!   superstep-1 logic (source seeding) runs.
//!
//! Soundness for monotone programs (min-merge BFS/EAT, or-merge
//! reachability) over insert/extend-only deltas: the previous fixpoint is
//! achievable in the new graph (updates never remove reachability), so
//! restoring it cannot over-claim; every improvement the new elements
//! enable originates at a dirty endpoint, whose full re-scatter injects the
//! frontier messages; from there change-driven propagation completes
//! exactly as in a cold run. The differential harness
//! ([`crate::engine::StreamEngine`]) verifies the resulting states
//! digest-identical to a from-scratch recomputation.

use graphite_icm::prelude::*;
use graphite_tgraph::delta::GraphDelta;
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use graphite_tgraph::time::{Interval, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The converged per-vertex interval states of a previous run, as produced
/// by [`IcmResult::states`].
pub type PrevStates<S> = Arc<BTreeMap<VertexId, Vec<(Interval, S)>>>;

/// A monotone interval program resumed from a previous run's fixpoint.
/// See the module docs for the clean/dirty protocol.
pub struct Resumed<P: IntervalProgram> {
    inner: P,
    prev: PrevStates<P::State>,
    dirty: Arc<BTreeSet<VertexId>>,
}

impl<P: IntervalProgram> Resumed<P> {
    /// Wraps `inner` with the previous states and the dirty set of the
    /// latest update batch (see [`dirty_vertices`]).
    pub fn new(inner: P, prev: PrevStates<P::State>, dirty: Arc<BTreeSet<VertexId>>) -> Self {
        Resumed { inner, prev, dirty }
    }
}

impl<P: IntervalProgram> IntervalProgram for Resumed<P> {
    type State = P::State;
    type Msg = P::Msg;

    fn init(&self, vertex: &VertexContext<'_>) -> Self::State {
        self.inner.init(vertex)
    }

    fn warm_start(&self, vertex: &VertexContext<'_>) -> Option<Vec<(Interval, Self::State)>> {
        if self.dirty.contains(&vertex.vid()) {
            return None; // cold start; compute below restores with changes
        }
        self.prev.get(&vertex.vid()).cloned()
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, Self::State, Self::Msg>,
        interval: Interval,
        state: &Self::State,
        msgs: &[Self::Msg],
    ) {
        if ctx.superstep() == 1 && self.dirty.contains(&ctx.vid()) {
            // Restore the previous fixpoint as genuine state changes: the
            // engine reports them and scatters the full converged state
            // over every incident edge (the frontier re-injection).
            // Value-identical pieces (e.g. unreached ∞ over init ∞) are
            // filtered by the engine and stay silent.
            if let Some(entries) = self.prev.get(&ctx.vid()) {
                for (iv, s) in entries {
                    if let Some(clipped) = iv.intersect(interval) {
                        ctx.set_state(clipped, s.clone());
                    }
                }
            }
        }
        self.inner.compute(ctx, interval, state, msgs);
    }

    fn scatter(
        &self,
        ctx: &mut ScatterContext<'_, Self::Msg>,
        interval: Interval,
        state: &Self::State,
    ) {
        self.inner.scatter(ctx, interval, state);
    }

    fn direction(&self) -> EdgeDirection {
        self.inner.direction()
    }

    fn refine_scatter_by_properties(&self) -> bool {
        self.inner.refine_scatter_by_properties()
    }

    fn prepartition(&self, vertex: &VertexContext<'_>) -> Vec<Time> {
        self.inner.prepartition(vertex)
    }

    fn all_active(&self, step: u64, globals: &graphite_bsp::aggregate::Aggregators) -> bool {
        self.inner.all_active(step, globals)
    }

    fn combine(&self, a: &Self::Msg, b: &Self::Msg) -> Option<Self::Msg> {
        self.inner.combine(a, b)
    }
}

/// The vertices whose warp alignment `delta` may change relative to
/// `base` (the graph *before* the batch) — the set that must re-scatter.
///
/// * endpoints of inserted edges (the new edge carries state across);
/// * endpoints of edges whose lifespan or properties changed (their
///   scatter intervals / payloads changed);
/// * lifespan-extended vertices (their partition grows a fresh tail);
/// * in-neighbors of lifespan-extended vertices — regenerating their
///   scatter reconstructs open-ended messages (e.g. EAT's `[arrival, ∞)`)
///   over the extended tail;
/// * inserted vertices (no previous state exists for them).
///
/// Over-approximation is sound (a dirty vertex merely re-announces its
/// fixpoint); under-approximation is what the differential harness exists
/// to catch.
pub fn dirty_vertices(base: &TemporalGraph, delta: &GraphDelta) -> BTreeSet<VertexId> {
    let mut dirty = BTreeSet::new();
    for &(vid, _) in &delta.insert_vertices {
        dirty.insert(vid);
    }
    for &(_, src, dst, _) in &delta.insert_edges {
        dirty.insert(src);
        dirty.insert(dst);
    }
    // Endpoints of touched pre-existing edges, resolved against the base
    // rows (one id→endpoints table for the whole batch); edges inserted by
    // this very batch are already covered above.
    let touched: Vec<graphite_tgraph::graph::EdgeId> = delta
        .extend_edges
        .iter()
        .map(|&(eid, _)| eid)
        .chain(delta.edge_props.iter().map(|(eid, _, _, _)| *eid))
        .chain(delta.extend_edge_props.iter().map(|(eid, _, _)| *eid))
        .collect();
    if !touched.is_empty() {
        let endpoints: std::collections::HashMap<_, _> = base
            .edge_indices()
            .map(|e| {
                let row = base.edge(e);
                (
                    row.eid,
                    (base.vertex(row.src).vid, base.vertex(row.dst).vid),
                )
            })
            .collect();
        for eid in touched {
            if let Some(&(src, dst)) = endpoints.get(&eid) {
                dirty.insert(src);
                dirty.insert(dst);
            }
        }
    }
    for &(vid, _) in &delta.extend_vertices {
        dirty.insert(vid);
        if let Some(v) = base.vertex_index(vid) {
            for &e in base.in_edges(v) {
                dirty.insert(base.vertex(base.edge(e).src).vid);
            }
        }
        // Same-batch inserted edges pointing at the extended vertex.
        for &(_, src, dst, _) in &delta.insert_edges {
            if dst == vid {
                dirty.insert(src);
            }
        }
    }
    dirty
}
