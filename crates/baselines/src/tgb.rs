//! The Transformed Graph Baseline (TGB, Sec. VII-A3): converts the
//! temporal graph into the time-expanded graph of Wu et al. and runs a
//! plain vertex-centric program over the replicas. Shared state between
//! replicas of one vertex travels over the zero-cost *waiting* edges —
//! those are the "special messages and compute logic calls" the paper
//! charges to TGB on top of the application's own traffic.

use crate::topology::TransformedTopology;
use crate::vcm::{run_vcm, VcmConfig, VcmProgram, VcmResult};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use graphite_tgraph::time::{Interval, Time};
use graphite_tgraph::transform::{transform_for_paths, TransformOptions, TransformedGraph};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The outcome of a TGB run: per-replica states plus the topology needed
/// to map them back to `(vertex, time)`.
pub struct TgbResult<S> {
    /// The underlying VCM result (states keyed by replica index).
    pub vcm: VcmResult<S>,
    /// The replica topology.
    pub topology: Arc<TransformedTopology>,
}

impl<S: Clone + PartialEq> TgbResult<S> {
    /// Projects replica states onto per-vertex interval timelines: the
    /// value over `[t_i, t_{i+1})` is the state of the replica at `t_i`
    /// (replica state persists until the next replica, because waiting
    /// edges forward it). Before a vertex's first replica the value is
    /// `default`; after the last it extends to `∞`. Directly comparable to
    /// the interval-centric engine's `IcmResult::states` for path
    /// algorithms (`graphite-baselines` deliberately does not depend on
    /// `graphite-icm`).
    pub fn project(
        &self,
        graph: &TemporalGraph,
        default: S,
    ) -> BTreeMap<VertexId, Vec<(Interval, S)>> {
        let mut out = BTreeMap::new();
        for (v, vd) in graph.vertices() {
            let mut timeline: Vec<(Interval, S)> = Vec::new();
            let replicas: Vec<(u32, Time)> = self.topology.transformed().replicas_of(v).collect();
            let life = vd.lifespan;
            let mut cursor = life.start();
            for (i, &(r, t)) in replicas.iter().enumerate() {
                let state = self
                    .vcm
                    .states
                    .get(&r)
                    .cloned()
                    .unwrap_or_else(|| default.clone());
                if cursor < t {
                    timeline.push((Interval::new(cursor, t), default.clone()));
                }
                let end = replicas.get(i + 1).map_or(life.end(), |&(_, nt)| nt);
                if t < end {
                    timeline.push((Interval::new(t, end), state));
                }
                cursor = end;
            }
            if cursor < life.end() {
                timeline.push((Interval::new(cursor, life.end()), default.clone()));
            }
            // Coalesce adjacent equal values.
            let mut coalesced: Vec<(Interval, S)> = Vec::with_capacity(timeline.len());
            for (iv, s) in timeline {
                match coalesced.last_mut() {
                    Some((last, ls)) if last.meets(iv) && *ls == s => *last = last.span(iv),
                    _ => coalesced.push((iv, s)),
                }
            }
            out.insert(vd.vid, coalesced);
        }
        out
    }
}

/// Builds the transformed graph (unless one is supplied) and runs
/// `program` over it.
pub fn run_tgb<P: VcmProgram>(
    graph: Arc<TemporalGraph>,
    transformed: Option<Arc<TransformedGraph>>,
    transform_opts: &TransformOptions,
    program: Arc<P>,
    config: &VcmConfig,
) -> TgbResult<P::State> {
    let transformed =
        transformed.unwrap_or_else(|| Arc::new(transform_for_paths(&graph, transform_opts)));
    let topology = Arc::new(TransformedTopology::new(Arc::clone(&graph), transformed));
    let vcm = run_vcm(&topology, program, config);
    TgbResult { vcm, topology }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcm::VcmContext;
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};

    /// SSSP over the transformed graph: waiting edges relay state at cost
    /// 0; transit edges add their weight. The classic TGB path program.
    struct TgbSssp {
        source: VertexId,
    }

    impl VcmProgram for TgbSssp {
        type State = i64;
        type Msg = i64;
        fn init(&self, _v: u32, vid: VertexId) -> i64 {
            if vid == self.source {
                0
            } else {
                i64::MAX
            }
        }
        fn compute(&self, ctx: &mut VcmContext<i64>, state: &mut i64, msgs: &[i64]) {
            let best = msgs.iter().copied().min().unwrap_or(i64::MAX);
            let improved = best < *state;
            if improved {
                *state = best;
            }
            if (ctx.superstep() == 1 && *state == 0) || improved {
                let dist = *state;
                let edges: Vec<_> = ctx.out_edges().to_vec();
                for e in edges {
                    ctx.send(e.target, dist + e.w1);
                }
            }
        }
        fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
            Some(*a.min(b))
        }
    }

    #[test]
    fn tgb_sssp_projects_to_paper_costs() {
        let graph = Arc::new(transit_graph());
        let r = run_tgb(
            Arc::clone(&graph),
            None,
            &TransformOptions::default(),
            Arc::new(TgbSssp {
                source: transit_ids::A,
            }),
            &VcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let projected = r.project(&graph, i64::MAX);
        // Paper results: E costs 7 over [6,9) (via C, arriving 6..7 is
        // replica 6 then 7), 5 from 9 on; B costs 4 over [4,6), 3 after.
        let e = &projected[&transit_ids::E];
        let at = |t: Time| {
            e.iter()
                .find(|(iv, _)| iv.contains_point(t))
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(at(5), i64::MAX);
        assert_eq!(at(6), 7);
        assert_eq!(at(8), 7);
        assert_eq!(at(9), 5);
        assert_eq!(at(100), 5);
        let b = &projected[&transit_ids::B];
        let at_b = |t: Time| {
            b.iter()
                .find(|(iv, _)| iv.contains_point(t))
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(at_b(3), i64::MAX);
        assert_eq!(at_b(4), 4);
        assert_eq!(at_b(5), 4);
        assert_eq!(at_b(6), 3);
        // F never reached.
        assert!(projected[&transit_ids::F]
            .iter()
            .all(|(_, s)| *s == i64::MAX));
    }

    #[test]
    fn tgb_pays_replica_traffic() {
        // ICM solves this with 6 messages (Sec. I); TGB needs replica
        // state-transfer messages over waiting edges on top of transit
        // traffic — strictly more messages and compute calls.
        let graph = Arc::new(transit_graph());
        let r = run_tgb(
            Arc::clone(&graph),
            None,
            &TransformOptions::default(),
            Arc::new(TgbSssp {
                source: transit_ids::A,
            }),
            &VcmConfig {
                workers: 1,
                ..Default::default()
            },
        );
        assert!(r.vcm.metrics.counters.messages_sent > 6);
        assert!(r.vcm.metrics.counters.compute_calls > 12);
    }
}
