//! Chlonos (CHL) — our clone of Chronos (Sec. VII-A3): processes a *batch*
//! of consecutive snapshots concurrently in one vectorized layout. The
//! user's compute still runs separately per (vertex, snapshot) — exactly
//! like MSB — but messages pushed to the same sink vertex with identical
//! payloads at adjacent time-points are replaced by a single message
//! carrying the whole sub-interval, saving messages and bytes. Batch size
//! models the available distributed memory: graphs that don't fit run in
//! several batches and lose sharing across batch boundaries (the effect the
//! paper observes on Twitter with 5 batches).

use crate::topology::EdgeWeights;
use crate::vcm::{VcmContext, VcmEdge, VcmProgram};
use graphite_bsp::aggregate::Aggregators;
use graphite_bsp::engine::{run_bsp, BspConfig, Inbox, Outbox, WorkerLogic};
use graphite_bsp::metrics::{RunMetrics, UserCounters};
use graphite_bsp::partition::PartitionMap;
use graphite_bsp::trace::TraceSink;
use graphite_tgraph::graph::{TemporalGraph, VIdx};
use graphite_tgraph::property::PropValue;
use graphite_tgraph::snapshot::snapshot_window;
use graphite_tgraph::time::{Interval, Time};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of one Chlonos run.
#[derive(Clone, Debug)]
pub struct ChlConfig {
    /// Number of BSP workers.
    pub workers: usize,
    /// Snapshots per in-memory batch (the paper's memory budget knob).
    pub batch_size: usize,
    /// Safety cap on supersteps per batch.
    pub max_supersteps: u64,
    /// Edge-property resolution.
    pub weights: EdgeWeights,
    /// Window to discretize; defaults to [`snapshot_window`].
    pub window: Option<Interval>,
    /// Keep per-snapshot final states.
    pub collect_states: bool,
    /// Materialize in-edges for the user logic (undirected algorithms).
    pub need_in_edges: bool,
    /// The paper's manual optimization (Sec. VII-B6): on a fully static
    /// topology, process a single snapshot and reuse its results.
    pub exploit_static_topology: bool,
}

impl Default for ChlConfig {
    fn default() -> Self {
        ChlConfig {
            workers: 4,
            batch_size: 8,
            max_supersteps: 100_000,
            weights: EdgeWeights::default(),
            window: None,
            collect_states: true,
            need_in_edges: false,
            exploit_static_topology: false,
        }
    }
}

/// The outcome of a Chlonos run.
#[derive(Clone, Debug)]
pub struct ChlResult<S> {
    /// Final states per snapshot (time-point, dense vertex → state).
    pub per_snapshot: Vec<(Time, HashMap<u32, S>)>,
    /// Cumulative metrics across batches.
    pub metrics: RunMetrics,
    /// Number of batches the window was split into.
    pub batches: usize,
}

impl<S> ChlResult<S> {
    /// The state of dense vertex `v` at snapshot `t`, if collected.
    pub fn state_at(&self, v: u32, t: Time) -> Option<&S> {
        self.per_snapshot
            .iter()
            .find(|(time, _)| *time == t)
            .and_then(|(_, states)| states.get(&v))
    }
}

/// Wire message: `(target, offset_lo, offset_hi, payload)` — the payload
/// applies to every snapshot offset in `[lo, hi)` of the current batch.
type ChlMsg<M> = (u32, u32, u32, M);

struct ChlWorker<P: VcmProgram> {
    graph: Arc<TemporalGraph>,
    program: Arc<P>,
    owned: Vec<u32>,
    weights: EdgeWeights,
    batch_start: Time,
    batch_len: usize,
    need_in_edges: bool,
    states: HashMap<u32, Vec<Option<P::State>>>,
}

impl<P: VcmProgram> ChlWorker<P>
where
    P::Msg: PartialEq,
{
    fn edges_at(&self, v: u32, t: Time, incoming: bool, out: &mut Vec<VcmEdge>) {
        let list = if incoming {
            self.graph.in_edges(VIdx(v))
        } else {
            self.graph.out_edges(VIdx(v))
        };
        for &e in list {
            let ed = self.graph.edge(e);
            if !ed.lifespan.contains_point(t) {
                continue;
            }
            let w1 = self
                .weights
                .w1
                .and_then(|l| ed.props.value_at(l, t))
                .and_then(PropValue::as_long)
                .unwrap_or(0);
            let w2 = self
                .weights
                .w2
                .and_then(|l| ed.props.value_at(l, t))
                .and_then(PropValue::as_long)
                .unwrap_or(1);
            let target = if incoming { ed.src.0 } else { ed.dst.0 };
            out.push(VcmEdge {
                target,
                w1,
                w2,
                kind: 0,
            });
        }
    }

    /// Runs compute for every applicable snapshot offset of vertex `v`,
    /// then merges per-offset sends into interval messages.
    #[allow(clippy::too_many_arguments)]
    fn process_vertex(
        &mut self,
        v: u32,
        step: u64,
        all_active: bool,
        per_off: &[Vec<P::Msg>],
        outbox: &mut Outbox<ChlMsg<P::Msg>>,
        globals: &Aggregators,
        partial: &mut Aggregators,
        counters: &mut UserCounters,
    ) {
        let vid = self.graph.vertex(VIdx(v)).vid;
        let lifespan = self.graph.vertex(VIdx(v)).lifespan;
        let mut sends_per_off: Vec<Vec<(u32, P::Msg)>> = vec![Vec::new(); self.batch_len];
        let mut edges = Vec::new();
        let mut in_edges = Vec::new();
        for off in 0..self.batch_len {
            let t = self.batch_start + off as Time;
            if !lifespan.contains_point(t) {
                continue;
            }
            let msgs = &per_off[off];
            if step > 1 && msgs.is_empty() && !all_active {
                continue; // this snapshot's replica of v is inactive
            }
            {
                let batch_len = self.batch_len;
                let program = &self.program;
                let slot = self
                    .states
                    .entry(v)
                    .or_insert_with(|| vec![None; batch_len]);
                if slot[off].is_none() {
                    slot[off] = Some(program.init(v, vid));
                }
            }
            edges.clear();
            self.edges_at(v, t, false, &mut edges);
            in_edges.clear();
            if self.need_in_edges {
                self.edges_at(v, t, true, &mut in_edges);
            }
            let state = self.states.get_mut(&v).expect("inserted above")[off]
                .as_mut()
                .expect("initialized above");
            let mut sends: Vec<(u32, P::Msg)> = Vec::new();
            let mut ctx = VcmContext {
                vertex: v,
                vid,
                superstep: step,
                out_edges: &edges,
                in_edges: &in_edges,
                globals,
                partial,
                sends: &mut sends,
            };
            counters.compute_calls += 1;
            self.program.compute(&mut ctx, state, msgs);
            sends_per_off[off] = sends;
        }
        // Merge identical payloads to the same target across adjacent
        // snapshot offsets into one interval message (the Chronos trick).
        let mut open: Vec<(u32, u32, u32, P::Msg)> = Vec::new(); // target, lo, hi, payload
        for (off, sends) in sends_per_off.into_iter().enumerate() {
            let off = off as u32;
            // Close runs that were not extended to this offset.
            let mut still_open = Vec::with_capacity(open.len());
            let mut pending = sends;
            for (target, lo, hi, m) in open.into_iter() {
                if hi == off {
                    if let Some(pos) = pending
                        .iter()
                        .position(|(t2, m2)| *t2 == target && *m2 == m)
                    {
                        pending.remove(pos);
                        still_open.push((target, lo, hi + 1, m));
                        continue;
                    }
                }
                // Run ended: flush.
                outbox.send(VIdx(target), (target, lo, hi, m));
            }
            open = still_open;
            for (target, m) in pending {
                open.push((target, off, off + 1, m));
            }
        }
        for (target, lo, hi, m) in open {
            outbox.send(VIdx(target), (target, lo, hi, m));
        }
    }
}

impl<P: VcmProgram> WorkerLogic for ChlWorker<P>
where
    P::Msg: PartialEq,
{
    type Msg = ChlMsg<P::Msg>;

    fn superstep(
        &mut self,
        step: u64,
        inbox: &Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
        globals: &Aggregators,
        partial: &mut Aggregators,
        counters: &mut UserCounters,
        _sink: &mut TraceSink,
    ) {
        if step == 1 {
            let owned = std::mem::take(&mut self.owned);
            let empty = vec![Vec::new(); self.batch_len];
            for &v in &owned {
                self.process_vertex(v, step, true, &empty, outbox, globals, partial, counters);
            }
            self.owned = owned;
            return;
        }
        let all_active = self.program.all_active(step, globals);
        let mut active: Vec<(u32, Vec<Vec<P::Msg>>)> = Vec::new();
        if all_active {
            for &v in &self.owned {
                if inbox.messages_for(VIdx(v)).is_none() {
                    active.push((v, vec![Vec::new(); self.batch_len]));
                }
            }
        }
        for (v, raw) in inbox.iter() {
            // Unpack interval messages into per-offset lists, then apply
            // the receiver-side combiner per offset.
            let mut per_off: Vec<Vec<P::Msg>> = vec![Vec::new(); self.batch_len];
            for (_, lo, hi, m) in raw {
                for off in *lo..(*hi).min(self.batch_len as u32) {
                    per_off[off as usize].push(m.clone());
                }
            }
            for msgs in &mut per_off {
                if msgs.len() > 1 {
                    let mut folded: Vec<P::Msg> = Vec::with_capacity(msgs.len());
                    for m in msgs.drain(..) {
                        match folded.last_mut() {
                            Some(last) => match self.program.combine(last, &m) {
                                Some(c) => *last = c,
                                None => folded.push(m),
                            },
                            None => folded.push(m),
                        }
                    }
                    *msgs = folded;
                }
            }
            active.push((v.0, per_off));
        }
        for (v, per_off) in active {
            self.process_vertex(
                v, step, all_active, &per_off, outbox, globals, partial, counters,
            );
        }
    }
}

/// Runs `program` over the window in batches of `batch_size` snapshots.
pub fn run_chlonos<P>(
    graph: Arc<TemporalGraph>,
    program: Arc<P>,
    config: &ChlConfig,
) -> ChlResult<P::State>
where
    P: VcmProgram,
    P::Msg: PartialEq,
{
    let window = config
        .window
        .or_else(|| snapshot_window(&graph))
        .expect("graph with no bounded window needs an explicit one");
    let partition = Arc::new(PartitionMap::hash(&graph, config.workers).expect("partition"));
    let mut metrics = RunMetrics::default();
    let mut per_snapshot = Vec::new();
    let mut batches = 0usize;

    // Static-topology reuse: one single-snapshot batch covers the window.
    let static_reuse = config.exploit_static_topology
        && crate::topology::is_topology_static_helper(&graph, window);
    let effective_end = if static_reuse {
        window.start() + 1
    } else {
        window.end()
    };

    let mut batch_start = window.start();
    while batch_start < effective_end {
        let batch_len = (effective_end - batch_start).min(config.batch_size as i64) as usize;
        batches += 1;
        let workers: Vec<ChlWorker<P>> = (0..config.workers)
            .map(|w| ChlWorker {
                graph: Arc::clone(&graph),
                program: Arc::clone(&program),
                owned: partition.owned_by(w).into_iter().map(|v| v.0).collect(),
                weights: config.weights,
                batch_start,
                batch_len,
                need_in_edges: config.need_in_edges,
                states: HashMap::new(),
            })
            .collect();
        let bsp = BspConfig {
            max_supersteps: config.max_supersteps,
            ..Default::default()
        };
        // Keep phased programs alive through idle barriers when they
        // request an all-active next superstep.
        let prog = Arc::clone(&program);
        let mut wrapper = move |step: u64, globals: &Aggregators| {
            if prog.all_active(step + 1, globals) {
                graphite_bsp::aggregate::MasterDecision::ForceContinue
            } else {
                graphite_bsp::aggregate::MasterDecision::Continue
            }
        };
        let (workers, batch_metrics) =
            run_bsp(&bsp, workers, Arc::clone(&partition), Some(&mut wrapper))
                .unwrap_or_else(|e| panic!("Chlonos batch run failed: {e}"));
        metrics.merge(&batch_metrics);
        if config.collect_states {
            let mut maps: Vec<HashMap<u32, P::State>> =
                (0..batch_len).map(|_| HashMap::new()).collect();
            for w in workers {
                for (v, slots) in w.states {
                    for (off, slot) in slots.into_iter().enumerate() {
                        if let Some(s) = slot {
                            maps[off].insert(v, s);
                        }
                    }
                }
            }
            for (off, map) in maps.into_iter().enumerate() {
                per_snapshot.push((batch_start + off as Time, map));
            }
        }
        batch_start += batch_len as Time;
    }
    if static_reuse && config.collect_states {
        if let Some((_, states)) = per_snapshot.first().cloned() {
            for t in (window.start() + 1)..window.end() {
                per_snapshot.push((t, states.clone()));
            }
        }
    }
    ChlResult {
        per_snapshot,
        metrics,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msb::{run_msb, MsbConfig};
    use graphite_tgraph::fixtures::transit_graph;
    use graphite_tgraph::graph::VertexId;

    /// Per-snapshot BFS level from A (same program as the MSB test).
    struct Bfs {
        source: VertexId,
    }

    impl VcmProgram for Bfs {
        type State = i64;
        type Msg = i64;
        fn init(&self, _v: u32, vid: VertexId) -> i64 {
            if vid == self.source {
                0
            } else {
                i64::MAX
            }
        }
        fn compute(&self, ctx: &mut VcmContext<i64>, state: &mut i64, msgs: &[i64]) {
            let best = msgs.iter().copied().min().unwrap_or(i64::MAX);
            let improved = best < *state;
            if improved {
                *state = best;
            }
            if (ctx.superstep() == 1 && *state == 0) || improved {
                let next = state.saturating_add(1);
                let targets: Vec<u32> = ctx.out_edges().iter().map(|e| e.target).collect();
                for target in targets {
                    ctx.send(target, next);
                }
            }
        }
        fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
            Some(*a.min(b))
        }
    }

    #[test]
    fn chlonos_matches_msb_results() {
        let graph = Arc::new(transit_graph());
        let msb = run_msb(
            Arc::clone(&graph),
            |_| {
                Arc::new(Bfs {
                    source: VertexId(0),
                })
            },
            &MsbConfig {
                workers: 2,
                ..Default::default()
            },
        );
        for batch_size in [1, 3, 9, 100] {
            let chl = run_chlonos(
                Arc::clone(&graph),
                Arc::new(Bfs {
                    source: VertexId(0),
                }),
                &ChlConfig {
                    workers: 2,
                    batch_size,
                    ..Default::default()
                },
            );
            assert_eq!(chl.per_snapshot.len(), 9);
            for (t, states) in &msb.per_snapshot {
                for (v, s) in states {
                    assert_eq!(
                        chl.state_at(*v, *t),
                        Some(s),
                        "batch={batch_size} v={v} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn chlonos_same_compute_calls_fewer_messages_than_msb() {
        let graph = Arc::new(transit_graph());
        let msb = run_msb(
            Arc::clone(&graph),
            |_| {
                Arc::new(Bfs {
                    source: VertexId(0),
                })
            },
            &MsbConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let chl = run_chlonos(
            Arc::clone(&graph),
            Arc::new(Bfs {
                source: VertexId(0),
            }),
            &ChlConfig {
                workers: 2,
                batch_size: 9,
                ..Default::default()
            },
        );
        // Sec. VII-B1: MSB and Chlonos have the same number of compute
        // calls for an algorithm on a graph.
        assert_eq!(
            chl.metrics.counters.compute_calls,
            msb.metrics.counters.compute_calls
        );
        // A->B exists over [3,6) with A's level-1 push identical at each
        // point; one batch merges those into fewer messages.
        assert!(chl.metrics.counters.messages_sent < msb.metrics.counters.messages_sent);
        assert_eq!(chl.batches, 1);
    }

    #[test]
    fn smaller_batches_mean_less_sharing() {
        let graph = Arc::new(transit_graph());
        let one = run_chlonos(
            Arc::clone(&graph),
            Arc::new(Bfs {
                source: VertexId(0),
            }),
            &ChlConfig {
                batch_size: 9,
                ..Default::default()
            },
        );
        let many = run_chlonos(
            Arc::clone(&graph),
            Arc::new(Bfs {
                source: VertexId(0),
            }),
            &ChlConfig {
                batch_size: 1,
                ..Default::default()
            },
        );
        assert_eq!(many.batches, 9);
        assert!(many.metrics.counters.messages_sent >= one.metrics.counters.messages_sent);
        assert_eq!(
            many.metrics.counters.compute_calls,
            one.metrics.counters.compute_calls
        );
    }
}
