//! # graphite-baselines — the four comparison platforms
//!
//! Implementations of the baseline systems the ICM paper evaluates against
//! (Sec. VII-A3), all running over the same BSP substrate as GRAPHITE so
//! the programming primitives are the experimental variable:
//!
//! * **MSB** — the multi-snapshot baseline: a vertex-centric program run
//!   independently on every snapshot (TI algorithms).
//! * **Chlonos** — the Chronos clone: batches of snapshots processed
//!   concurrently; per-snapshot compute but messages that span adjacent
//!   snapshots are sent once (TI algorithms).
//! * **TGB** — the transformed-graph baseline: vertex-centric execution
//!   over the time-expanded graph, with replica state transfer across
//!   waiting edges (TD algorithms).
//! * **GoFFish-TS** — sequential snapshots with stateful vertices and
//!   temporal messages delivered by an outer loop (TD algorithms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chlonos;
pub mod goffish;
pub mod msb;
pub mod tgb;
pub mod topology;
pub mod vcm;

pub use chlonos::{run_chlonos, ChlConfig, ChlResult};
pub use goffish::{run_goffish, GofConfig, GofContext, GofProgram, GofResult};
pub use msb::{run_msb, MsbConfig, MsbResult};
pub use tgb::{run_tgb, TgbResult};
pub use topology::{EdgeWeights, SnapshotTopology, TransformedTopology};
pub use vcm::{
    run_vcm, run_vcm_with_master, try_run_vcm, try_run_vcm_recoverable, try_run_vcm_with_master,
    VcmConfig, VcmContext, VcmEdge, VcmProgram, VcmResult, VcmTopology,
};
