//! GoFFish-TS (GOF, Sec. VII-A3): models the temporal graph as a sequence
//! of snapshots processed *sequentially*. An outer loop walks the
//! snapshots in time order; within each snapshot an inner vertex-centric
//! BSP loop runs to convergence; user logic may send *local* messages
//! (delivered next inner superstep, same snapshot) or *temporal* messages
//! addressed to a future snapshot, which the outer loop delivers when it
//! gets there. Vertex states persist across snapshots (stateful
//! execution). Unlike ICM, nothing is shared across time: each snapshot
//! pays its own compute and messaging.

use crate::topology::EdgeWeights;
use crate::vcm::VcmEdge;
use graphite_bsp::aggregate::Aggregators;
use graphite_bsp::codec::Wire;
use graphite_bsp::engine::{run_bsp, BspConfig, Inbox, Outbox, WorkerLogic};
use graphite_bsp::metrics::{RunMetrics, UserCounters};
use graphite_bsp::partition::PartitionMap;
use graphite_bsp::trace::TraceSink;
use graphite_tgraph::graph::{TemporalGraph, VIdx, VertexId};
use graphite_tgraph::property::PropValue;
use graphite_tgraph::snapshot::snapshot_window;
use graphite_tgraph::time::{Interval, Time};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// User logic for the GoFFish baseline.
pub trait GofProgram: Send + Sync + 'static {
    /// Per-vertex state, persisted across snapshots.
    type State: Clone + Send + Sync + 'static;
    /// Message payload (local and temporal messages share it).
    type Msg: Wire;

    /// Initial state, created the first time a vertex is touched.
    fn init(&self, vid: VertexId) -> Self::State;

    /// Vertex compute within a snapshot. May send local messages (same
    /// snapshot, next inner superstep) and temporal messages (future
    /// snapshot).
    fn compute(
        &self,
        ctx: &mut GofContext<'_, Self::Msg>,
        state: &mut Self::State,
        msgs: &[Self::Msg],
    );

    /// Optional receiver-side combiner.
    fn combine(&self, a: &Self::Msg, b: &Self::Msg) -> Option<Self::Msg> {
        let _ = (a, b);
        None
    }
}

/// Context for [`GofProgram::compute`].
pub struct GofContext<'a, M> {
    pub(crate) graph: &'a TemporalGraph,
    pub(crate) vertex: u32,
    pub(crate) vid: VertexId,
    pub(crate) time: Time,
    pub(crate) horizon: Time,
    pub(crate) floor: Time,
    pub(crate) reverse: bool,
    pub(crate) superstep: u64,
    pub(crate) out_edges: &'a [VcmEdge],
    pub(crate) local: &'a mut Vec<(u32, M)>,
    pub(crate) future: &'a mut Vec<(u32, Time, M)>,
}

impl<'a, M> GofContext<'a, M> {
    /// The snapshot's time-point.
    pub fn time(&self) -> Time {
        self.time
    }

    /// The inner superstep number within this snapshot.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// The dense vertex index.
    pub fn vertex(&self) -> u32 {
        self.vertex
    }

    /// The external vertex id.
    pub fn vid(&self) -> VertexId {
        self.vid
    }

    /// Out-edges alive at this snapshot, weights resolved. In reverse
    /// mode this yields the in-edges instead, with `target` the source.
    pub fn out_edges(&self) -> &'a [VcmEdge] {
        self.out_edges
    }

    /// The full temporal graph — GoFFish-TS vertices own their temporal
    /// subgraph, so static edge metadata for other time-points is
    /// accessible (needed by reverse traversals that must validate edge
    /// liveness at the departure snapshot).
    pub fn graph(&self) -> &'a TemporalGraph {
        self.graph
    }

    /// Whether the walk runs in reverse.
    pub fn is_reverse(&self) -> bool {
        self.reverse
    }

    /// Sends a message within this snapshot (next inner superstep).
    pub fn send_local(&mut self, target: u32, msg: M) {
        self.local.push((target, msg));
    }

    /// The exclusive end of the snapshot window: messages addressed at or
    /// beyond it can never be delivered.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Sends a message to `target` at a "future" snapshot `time` — a later
    /// one in forward mode, an earlier one in reverse mode. Messages the
    /// walk can no longer deliver are dropped.
    pub fn send_future(&mut self, target: u32, time: Time, msg: M) {
        let deliverable = if self.reverse {
            time < self.time && time >= self.floor
        } else {
            time > self.time && time < self.horizon
        };
        if deliverable {
            self.future.push((target, time, msg));
        }
    }
}

struct GofWorker<P: GofProgram> {
    graph: Arc<TemporalGraph>,
    program: Arc<P>,
    owned: Vec<u32>,
    weights: EdgeWeights,
    t: Time,
    horizon: Time,
    floor: Time,
    reverse: bool,
    states: HashMap<u32, P::State>,
    initial: HashMap<u32, Vec<P::Msg>>,
    future_out: Vec<(u32, Time, P::Msg)>,
}

impl<P: GofProgram> GofWorker<P> {
    fn out_edges_at(&self, v: u32, out: &mut Vec<VcmEdge>) {
        let edges = if self.reverse {
            self.graph.in_edges(VIdx(v))
        } else {
            self.graph.out_edges(VIdx(v))
        };
        for &e in edges {
            let ed = self.graph.edge(e);
            if !ed.lifespan.contains_point(self.t) {
                continue;
            }
            let w1 = self
                .weights
                .w1
                .and_then(|l| ed.props.value_at(l, self.t))
                .and_then(PropValue::as_long)
                .unwrap_or(0);
            let w2 = self
                .weights
                .w2
                .and_then(|l| ed.props.value_at(l, self.t))
                .and_then(PropValue::as_long)
                .unwrap_or(1);
            let target = if self.reverse { ed.src.0 } else { ed.dst.0 };
            out.push(VcmEdge {
                target,
                w1,
                w2,
                kind: 0,
            });
        }
    }

    fn combined(&self, msgs: &[P::Msg]) -> Vec<P::Msg> {
        let mut out: Vec<P::Msg> = Vec::with_capacity(msgs.len());
        for m in msgs {
            if let Some(last) = out.last_mut() {
                if let Some(c) = self.program.combine(last, m) {
                    *last = c;
                    continue;
                }
            }
            out.push(m.clone());
        }
        out
    }

    fn run_vertex(
        &mut self,
        v: u32,
        step: u64,
        msgs: &[P::Msg],
        outbox: &mut Outbox<(u32, P::Msg)>,
        counters: &mut UserCounters,
    ) {
        if !self.graph.vertex(VIdx(v)).lifespan.contains_point(self.t) {
            return; // vertex absent from this snapshot: message dropped
        }
        let vid = self.graph.vertex(VIdx(v)).vid;
        let mut edges = Vec::new();
        self.out_edges_at(v, &mut edges);
        let program = Arc::clone(&self.program);
        let state = self.states.entry(v).or_insert_with(|| program.init(vid));
        let mut local: Vec<(u32, P::Msg)> = Vec::new();
        let mut future: Vec<(u32, Time, P::Msg)> = Vec::new();
        let mut ctx = GofContext {
            graph: &self.graph,
            vertex: v,
            vid,
            time: self.t,
            horizon: self.horizon,
            floor: self.floor,
            reverse: self.reverse,
            superstep: step,
            out_edges: &edges,
            local: &mut local,
            future: &mut future,
        };
        counters.compute_calls += 1;
        program.compute(&mut ctx, state, msgs);
        for (target, m) in local {
            outbox.send(VIdx(target), (target, m));
        }
        self.future_out.extend(future);
    }
}

impl<P: GofProgram> WorkerLogic for GofWorker<P> {
    type Msg = (u32, P::Msg);

    fn superstep(
        &mut self,
        step: u64,
        inbox: &Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
        _globals: &Aggregators,
        _partial: &mut Aggregators,
        counters: &mut UserCounters,
        _sink: &mut TraceSink,
    ) {
        if step == 1 {
            // GoFFish-TS semantics: the inner VCM loop's first superstep
            // runs over every vertex of the *current snapshot* (its own
            // superstep 1), with any temporal messages queued for this
            // time-point delivered alongside.
            let initial = std::mem::take(&mut self.initial);
            let owned = std::mem::take(&mut self.owned);
            for &v in &owned {
                let msgs = initial
                    .get(&v)
                    .map(|m| self.combined(m))
                    .unwrap_or_default();
                self.run_vertex(v, step, &msgs, outbox, counters);
            }
            self.owned = owned;
            return;
        }
        let mut active: Vec<(u32, Vec<P::Msg>)> = Vec::new();
        for (v, raw) in inbox.iter() {
            let payloads: Vec<P::Msg> = raw.iter().map(|(_, m)| m.clone()).collect();
            active.push((v.0, self.combined(&payloads)));
        }
        for (v, msgs) in active {
            self.run_vertex(v, step, &msgs, outbox, counters);
        }
    }
}

/// Configuration of one GoFFish run.
#[derive(Clone, Debug)]
pub struct GofConfig {
    /// Number of BSP workers for each snapshot's inner loop.
    pub workers: usize,
    /// Safety cap on inner supersteps per snapshot.
    pub max_supersteps: u64,
    /// Edge-property resolution.
    pub weights: EdgeWeights,
    /// Window to walk; defaults to [`snapshot_window`].
    pub window: Option<Interval>,
    /// Record the state map after every snapshot (for time-indexed
    /// result comparison).
    pub collect_states: bool,
    /// Walk the snapshots in reverse time order, traverse in-edges, and
    /// deliver "future" messages to *earlier* snapshots — the mode
    /// reverse-traversing algorithms (Latest Departure) need.
    pub reverse: bool,
}

impl Default for GofConfig {
    fn default() -> Self {
        GofConfig {
            workers: 4,
            max_supersteps: 100_000,
            weights: EdgeWeights::default(),
            window: None,
            collect_states: true,
            reverse: false,
        }
    }
}

/// The outcome of a GoFFish run.
#[derive(Clone, Debug)]
pub struct GofResult<S> {
    /// Final states after the last snapshot.
    pub states: HashMap<u32, S>,
    /// State maps recorded after each snapshot (when collected): the state
    /// of a vertex *as of* that time-point.
    pub per_snapshot: Vec<(Time, HashMap<u32, S>)>,
    /// Cumulative metrics across all snapshots (temporal messages
    /// included).
    pub metrics: RunMetrics,
}

impl<S> GofResult<S> {
    /// The state of dense vertex `v` as of snapshot `t`, if collected.
    pub fn state_at(&self, v: u32, t: Time) -> Option<&S> {
        self.per_snapshot
            .iter()
            .find(|(time, _)| *time == t)
            .and_then(|(_, states)| states.get(&v))
    }
}

/// Runs `program` snapshot by snapshot over the window.
pub fn run_goffish<P: GofProgram>(
    graph: Arc<TemporalGraph>,
    program: Arc<P>,
    config: &GofConfig,
) -> GofResult<P::State> {
    let window = config
        .window
        .or_else(|| snapshot_window(&graph))
        .expect("graph with no bounded window needs an explicit one");
    let partition = Arc::new(PartitionMap::hash(&graph, config.workers).expect("partition"));
    let mut queue: BTreeMap<Time, HashMap<u32, Vec<P::Msg>>> = BTreeMap::new();
    let mut states: HashMap<u32, P::State> = HashMap::new();
    let mut metrics = RunMetrics::default();
    let mut per_snapshot = Vec::new();

    let order: Vec<Time> = if config.reverse {
        window.points().rev().collect()
    } else {
        window.points().collect()
    };
    for t in order {
        let delivered = queue.remove(&t).unwrap_or_default();
        let workers: Vec<GofWorker<P>> = (0..config.workers)
            .map(|w| {
                let owned: Vec<u32> = partition.owned_by(w).into_iter().map(|v| v.0).collect();
                let mut worker = GofWorker {
                    graph: Arc::clone(&graph),
                    program: Arc::clone(&program),
                    owned,
                    weights: config.weights,
                    t,
                    horizon: window.end(),
                    floor: window.start(),
                    reverse: config.reverse,
                    states: HashMap::new(),
                    initial: HashMap::new(),
                    future_out: Vec::new(),
                };
                for &v in &worker.owned {
                    if let Some(s) = states.remove(&v) {
                        worker.states.insert(v, s);
                    }
                }
                worker
            })
            .collect();
        // Distribute the delivered temporal messages to their owners.
        let mut workers = workers;
        for (v, msgs) in delivered {
            let w = partition.worker_of(VIdx(v));
            workers[w].initial.insert(v, msgs);
        }
        let bsp = BspConfig {
            max_supersteps: config.max_supersteps,
            ..Default::default()
        };
        let (workers, snap_metrics) = run_bsp(&bsp, workers, Arc::clone(&partition), None)
            .unwrap_or_else(|e| panic!("GoFFish snapshot run failed: {e}"));
        metrics.merge(&snap_metrics);
        for worker in workers {
            // Temporal messages are charged as messages (they travel via
            // disk in GoFFish); count their encoded size too.
            for (target, time, m) in worker.future_out {
                metrics.counters.messages_sent += 1;
                metrics.counters.bytes_sent += m.encoded_len() as u64 + 12;
                queue
                    .entry(time)
                    .or_default()
                    .entry(target)
                    .or_default()
                    .push(m);
            }
            states.extend(worker.states);
        }
        if config.collect_states {
            per_snapshot.push((t, states.clone()));
        }
    }
    GofResult {
        states,
        per_snapshot,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};

    /// Temporal SSSP under GoFFish: at each snapshot, a vertex whose cost
    /// improved relays `cost + edge cost` to each live out-edge's sink at
    /// the arrival snapshot `t + travel time`.
    struct GofSssp {
        source: VertexId,
    }

    impl GofProgram for GofSssp {
        type State = i64;
        type Msg = i64;
        fn init(&self, vid: VertexId) -> i64 {
            if vid == self.source {
                0
            } else {
                i64::MAX
            }
        }
        fn compute(&self, ctx: &mut GofContext<i64>, state: &mut i64, msgs: &[i64]) {
            let best = msgs.iter().copied().min().unwrap_or(i64::MAX);
            let arrived = best < *state;
            if arrived {
                *state = best;
            }
            // The GoFFish idiom: a vertex with a finite cost must stay
            // active in every later snapshot, because edges (and costs)
            // change over time — so it relays along the currently-live
            // edges AND explicitly carries its own state to the next
            // snapshot. This per-snapshot rescatter and state hand-off is
            // exactly the redundancy ICM's warp removes.
            let _ = arrived;
            if *state < i64::MAX {
                let dist = *state;
                let t = ctx.time();
                let me = ctx.vertex();
                let edges: Vec<VcmEdge> = ctx.out_edges().to_vec();
                for e in edges {
                    ctx.send_future(e.target, t + e.w2, dist + e.w1);
                }
                ctx.send_future(me, t + 1, dist);
            }
        }
        fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
            Some(*a.min(b))
        }
    }

    fn weights(g: &TemporalGraph) -> EdgeWeights {
        EdgeWeights {
            w1: g.label("travel-cost"),
            w2: g.label("travel-time"),
        }
    }

    #[test]
    fn gof_sssp_matches_paper_costs_over_time() {
        let graph = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&graph),
            Arc::new(GofSssp {
                source: transit_ids::A,
            }),
            &GofConfig {
                workers: 2,
                weights: weights(&graph),
                ..Default::default()
            },
        );
        let idx = |vid| graph.vertex_index(vid).unwrap().0;
        // B: inf before 4, 4 during [4,6), 3 from 6 (within window end 9).
        let b = idx(transit_ids::B);
        assert_eq!(r.state_at(b, 3), Some(&i64::MAX));
        assert_eq!(r.state_at(b, 4), Some(&4));
        assert_eq!(r.state_at(b, 5), Some(&4));
        assert_eq!(r.state_at(b, 6), Some(&3));
        // E: 7 at [6,9); the cost-5 path arrives exactly at 9, outside the
        // window [0,9), so the last recorded snapshot still shows 7.
        let e = idx(transit_ids::E);
        assert_eq!(r.state_at(e, 5), Some(&i64::MAX));
        assert_eq!(r.state_at(e, 6), Some(&7));
        assert_eq!(r.state_at(e, 8), Some(&7));
        // D: 2 from 2 on. F: never reached.
        assert_eq!(r.state_at(idx(transit_ids::D), 2), Some(&2));
        assert_eq!(r.states[&idx(transit_ids::F)], i64::MAX);
    }

    #[test]
    fn gof_does_not_share_messages_across_time() {
        let graph = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&graph),
            Arc::new(GofSssp {
                source: transit_ids::A,
            }),
            &GofConfig {
                workers: 1,
                weights: weights(&graph),
                ..Default::default()
            },
        );
        // ICM sends 6 messages for this fixture; GoFFish re-scatters per
        // snapshot and must send strictly more.
        assert!(r.metrics.counters.messages_sent > 6);
        // One outer iteration per snapshot, each at least one superstep.
        assert!(r.metrics.supersteps >= 9);
    }
}
