//! The Multi-Snapshot Baseline (MSB, Sec. VII-A3): runs a vertex-centric
//! program independently on every snapshot of the temporal graph and
//! accumulates the per-snapshot costs, exactly as multi-snapshot analysis
//! does in the paper. Used for the TI algorithms.

use crate::topology::{EdgeWeights, SnapshotTopology};
use crate::vcm::{run_vcm, VcmConfig, VcmProgram};
use graphite_bsp::metrics::RunMetrics;
use graphite_tgraph::graph::TemporalGraph;
use graphite_tgraph::snapshot::snapshot_window;
use graphite_tgraph::time::{Interval, Time};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of one MSB run.
#[derive(Clone, Debug)]
pub struct MsbConfig {
    /// Number of BSP workers per snapshot run.
    pub workers: usize,
    /// Safety cap on supersteps per snapshot.
    pub max_supersteps: u64,
    /// Edge-property resolution for the snapshots.
    pub weights: EdgeWeights,
    /// Window to discretize; defaults to [`snapshot_window`].
    pub window: Option<Interval>,
    /// Keep the per-snapshot final states (disable to save memory on
    /// large sweeps where only metrics matter).
    pub collect_states: bool,
    /// Materialize in-edges for the user logic (undirected algorithms).
    pub need_in_edges: bool,
    /// The paper's manual optimization (Sec. VII-B6): when the topology is
    /// fully static over the window, run a single snapshot and reuse its
    /// results for every time-point. Only sound for structure-only (TI)
    /// programs, which is all MSB runs.
    pub exploit_static_topology: bool,
}

impl Default for MsbConfig {
    fn default() -> Self {
        MsbConfig {
            workers: 4,
            max_supersteps: 100_000,
            weights: EdgeWeights::default(),
            window: None,
            collect_states: true,
            need_in_edges: false,
            exploit_static_topology: false,
        }
    }
}

/// The outcome of an MSB run.
#[derive(Clone, Debug)]
pub struct MsbResult<S> {
    /// Final states per snapshot (time-point, dense vertex index → state);
    /// empty when `collect_states` was off.
    pub per_snapshot: Vec<(Time, HashMap<u32, S>)>,
    /// Cumulative metrics across all snapshot runs.
    pub metrics: RunMetrics,
}

impl<S> MsbResult<S> {
    /// The state of dense vertex `v` at snapshot `t`, if collected.
    pub fn state_at(&self, v: u32, t: Time) -> Option<&S> {
        self.per_snapshot
            .iter()
            .find(|(time, _)| *time == t)
            .and_then(|(_, states)| states.get(&v))
    }
}

/// Runs `make_program(t)` on every snapshot in the window, independently,
/// accumulating metrics — the paper's MSB.
pub fn run_msb<P, F>(
    graph: Arc<TemporalGraph>,
    make_program: F,
    config: &MsbConfig,
) -> MsbResult<P::State>
where
    P: VcmProgram,
    F: Fn(Time) -> Arc<P>,
{
    let window = config
        .window
        .or_else(|| snapshot_window(&graph))
        .expect("graph with no bounded window needs an explicit one");
    let vcm = VcmConfig {
        workers: config.workers,
        max_supersteps: config.max_supersteps,
        need_in_edges: config.need_in_edges,
        ..Default::default()
    };
    let mut metrics = RunMetrics::default();
    let mut per_snapshot = Vec::new();
    if config.exploit_static_topology && crate::topology::is_topology_static_helper(&graph, window)
    {
        // One snapshot stands in for all of them (structure-only results
        // are identical across a static topology).
        let t0 = window.start();
        let topo = Arc::new(SnapshotTopology::new(
            Arc::clone(&graph),
            t0,
            config.weights,
        ));
        let result = run_vcm(&topo, make_program(t0), &vcm);
        metrics.merge(&result.metrics);
        if config.collect_states {
            for t in window.points() {
                per_snapshot.push((t, result.states.clone()));
            }
        }
        return MsbResult {
            per_snapshot,
            metrics,
        };
    }
    for t in window.points() {
        let topo = Arc::new(SnapshotTopology::new(Arc::clone(&graph), t, config.weights));
        let result = run_vcm(&topo, make_program(t), &vcm);
        metrics.merge(&result.metrics);
        if config.collect_states {
            per_snapshot.push((t, result.states));
        }
    }
    MsbResult {
        per_snapshot,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcm::VcmContext;
    use graphite_tgraph::fixtures::transit_graph;
    use graphite_tgraph::graph::VertexId;

    /// Per-snapshot BFS level from vertex A (a TI algorithm).
    struct Bfs {
        source: VertexId,
    }

    impl VcmProgram for Bfs {
        type State = i64;
        type Msg = i64;
        fn init(&self, _v: u32, vid: VertexId) -> i64 {
            if vid == self.source {
                0
            } else {
                i64::MAX
            }
        }
        fn compute(&self, ctx: &mut VcmContext<i64>, state: &mut i64, msgs: &[i64]) {
            let best = msgs.iter().copied().min().unwrap_or(i64::MAX);
            let improved = best < *state;
            if improved {
                *state = best;
            }
            if (ctx.superstep() == 1 && *state == 0) || improved {
                let next = state.saturating_add(1);
                let targets: Vec<u32> = ctx.out_edges().iter().map(|e| e.target).collect();
                for target in targets {
                    ctx.send(target, next);
                }
            }
        }
        fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
            Some(*a.min(b))
        }
    }

    #[test]
    fn msb_runs_every_snapshot_independently() {
        let graph = Arc::new(transit_graph());
        let a_idx = graph.vertex_index(VertexId(0)).unwrap().0;
        let b_idx = graph.vertex_index(VertexId(1)).unwrap().0;
        let r = run_msb(
            Arc::clone(&graph),
            |_| {
                Arc::new(Bfs {
                    source: VertexId(0),
                })
            },
            &MsbConfig {
                workers: 2,
                ..Default::default()
            },
        );
        // Window is [0,9): nine snapshot runs.
        assert_eq!(r.per_snapshot.len(), 9);
        // A is level 0 everywhere.
        for t in 0..9 {
            assert_eq!(r.state_at(a_idx, t), Some(&0), "t={t}");
        }
        // Edge A->B exists only during [3,6): B is level 1 there, else inf.
        for t in 0..9 {
            let want = if (3..6).contains(&t) { 1 } else { i64::MAX };
            assert_eq!(r.state_at(b_idx, t), Some(&want), "t={t}");
        }
        // Each snapshot charges at least one compute call per live vertex.
        assert!(r.metrics.counters.compute_calls >= 9 * 6);
        assert!(r.metrics.supersteps >= 9);
    }

    #[test]
    fn states_collection_is_optional() {
        let graph = Arc::new(transit_graph());
        let r = run_msb(
            graph,
            |_| {
                Arc::new(Bfs {
                    source: VertexId(0),
                })
            },
            &MsbConfig {
                collect_states: false,
                ..Default::default()
            },
        );
        assert!(r.per_snapshot.is_empty());
        assert!(r.metrics.counters.compute_calls > 0);
    }
}
