//! [`VcmTopology`] adapters: a temporal graph frozen at one time-point
//! (for MSB / Chlonos / GoFFish) and the time-expanded transformed graph
//! (for TGB).

use crate::vcm::{VcmEdge, VcmTopology};
use graphite_bsp::partition::splitmix64;
use graphite_tgraph::graph::{TemporalGraph, VIdx, VertexId};
use graphite_tgraph::property::{LabelId, PropValue};
use graphite_tgraph::time::Interval;
use graphite_tgraph::time::Time;
use graphite_tgraph::transform::{TransformedEdgeKind, TransformedGraph};
use std::sync::Arc;

/// Which edge properties to resolve into [`VcmEdge::w1`] / [`VcmEdge::w2`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeWeights {
    /// Property resolved into `w1` (e.g. travel cost); missing → 0.
    pub w1: Option<LabelId>,
    /// Property resolved into `w2` (e.g. travel time); missing → 1.
    pub w2: Option<LabelId>,
}

/// A temporal graph restricted to a single time-point: the snapshot the
/// multi-snapshot baselines execute on. Dense indices coincide with the
/// temporal graph's internal vertex indices.
pub struct SnapshotTopology {
    graph: Arc<TemporalGraph>,
    t: Time,
    weights: EdgeWeights,
}

impl SnapshotTopology {
    /// The snapshot of `graph` at `t`, resolving `weights` per edge.
    pub fn new(graph: Arc<TemporalGraph>, t: Time, weights: EdgeWeights) -> Self {
        SnapshotTopology { graph, t, weights }
    }

    /// The snapshot time-point.
    pub fn time(&self) -> Time {
        self.t
    }

    /// The underlying temporal graph.
    pub fn graph(&self) -> &Arc<TemporalGraph> {
        &self.graph
    }

    fn resolve(&self, e: graphite_tgraph::graph::EIdx) -> (i64, i64) {
        let props = &self.graph.edge(e).props;
        let w1 = self
            .weights
            .w1
            .and_then(|l| props.value_at(l, self.t))
            .and_then(PropValue::as_long)
            .unwrap_or(0);
        let w2 = self
            .weights
            .w2
            .and_then(|l| props.value_at(l, self.t))
            .and_then(PropValue::as_long)
            .unwrap_or(1);
        (w1, w2)
    }
}

impl VcmTopology for SnapshotTopology {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn is_active(&self, v: u32) -> bool {
        self.graph.vertex(VIdx(v)).lifespan.contains_point(self.t)
    }

    fn out_edges(&self, v: u32, out: &mut Vec<VcmEdge>) {
        for &e in self.graph.out_edges(VIdx(v)) {
            let ed = self.graph.edge(e);
            if ed.lifespan.contains_point(self.t) {
                let (w1, w2) = self.resolve(e);
                out.push(VcmEdge {
                    target: ed.dst.0,
                    w1,
                    w2,
                    kind: 0,
                });
            }
        }
    }

    fn in_edges(&self, v: u32, out: &mut Vec<VcmEdge>) {
        for &e in self.graph.in_edges(VIdx(v)) {
            let ed = self.graph.edge(e);
            if ed.lifespan.contains_point(self.t) {
                let (w1, w2) = self.resolve(e);
                out.push(VcmEdge {
                    target: ed.src.0,
                    w1,
                    w2,
                    kind: 0,
                });
            }
        }
    }

    fn partition_key(&self, v: u32) -> u64 {
        self.graph.vertex(VIdx(v)).vid.0
    }

    fn logical_vid(&self, v: u32) -> VertexId {
        self.graph.vertex(VIdx(v)).vid
    }
}

/// The transformed (time-expanded) graph as a VCM topology: replicas are
/// the vertices; transit edges carry their cost in `w1`; waiting edges are
/// tagged `kind = 1` (TGB's replica state-transfer channel).
pub struct TransformedTopology {
    graph: Arc<TemporalGraph>,
    transformed: Arc<TransformedGraph>,
}

impl TransformedTopology {
    /// Wraps a transformed graph (and the temporal graph it came from,
    /// for id reporting).
    pub fn new(graph: Arc<TemporalGraph>, transformed: Arc<TransformedGraph>) -> Self {
        TransformedTopology { graph, transformed }
    }

    /// The replica table, for mapping results back to `(vertex, time)`.
    pub fn transformed(&self) -> &Arc<TransformedGraph> {
        &self.transformed
    }

    /// The replica's `(logical vertex, time)` pair.
    pub fn replica(&self, v: u32) -> (VIdx, Time) {
        self.transformed.replicas[v as usize]
    }
}

impl VcmTopology for TransformedTopology {
    fn num_vertices(&self) -> usize {
        self.transformed.num_vertices()
    }

    fn out_edges(&self, v: u32, out: &mut Vec<VcmEdge>) {
        for e in self.transformed.out_edges(v) {
            out.push(VcmEdge {
                target: e.dst,
                w1: e.weight,
                w2: 0,
                kind: u8::from(e.kind == TransformedEdgeKind::Waiting),
            });
        }
    }

    fn in_edges(&self, v: u32, out: &mut Vec<VcmEdge>) {
        for e in self.transformed.in_edges(v) {
            out.push(VcmEdge {
                target: e.dst, // source replica, by reverse-CSR convention
                w1: e.weight,
                w2: 0,
                kind: u8::from(e.kind == TransformedEdgeKind::Waiting),
            });
        }
    }

    fn partition_key(&self, v: u32) -> u64 {
        // Each replica is its own Giraph vertex: hash replica identity
        // (vertex id mixed with its time-point).
        let (orig, t) = self.transformed.replicas[v as usize];
        splitmix64(self.graph.vertex(orig).vid.0 ^ (t as u64).rotate_left(32))
    }

    fn logical_vid(&self, v: u32) -> VertexId {
        let (orig, _) = self.transformed.replicas[v as usize];
        self.graph.vertex(orig).vid
    }
}

/// Re-exported helper: static-topology detection (see
/// [`graphite_tgraph::snapshot::is_topology_static`]).
pub fn is_topology_static_helper(graph: &TemporalGraph, window: Interval) -> bool {
    graphite_tgraph::snapshot::is_topology_static(graph, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};
    use graphite_tgraph::transform::{transform_for_paths, TransformOptions};

    fn weights(g: &TemporalGraph) -> EdgeWeights {
        EdgeWeights {
            w1: g.label("travel-cost"),
            w2: g.label("travel-time"),
        }
    }

    #[test]
    fn snapshot_topology_respects_time() {
        let g = Arc::new(transit_graph());
        let w = weights(&g);
        let a = g.vertex_index(transit_ids::A).unwrap().0;
        let t3 = SnapshotTopology::new(Arc::clone(&g), 3, w);
        let mut out = Vec::new();
        t3.out_edges(a, &mut out);
        // At t=3: A->B (cost 4) and A->D (cost 2) are alive; A->C ended.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.w2 == 1));
        let costs: Vec<i64> = out.iter().map(|e| e.w1).collect();
        assert!(costs.contains(&4) && costs.contains(&2));
        // At t=5 the A->B cost property value changed to 3.
        let t5 = SnapshotTopology::new(Arc::clone(&g), 5, w);
        out.clear();
        t5.out_edges(a, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].w1, 3);
    }

    #[test]
    fn snapshot_in_edges_mirror_out_edges() {
        let g = Arc::new(transit_graph());
        let w = weights(&g);
        let t8 = SnapshotTopology::new(Arc::clone(&g), 8, w);
        let e = g.vertex_index(transit_ids::E).unwrap().0;
        let mut ins = Vec::new();
        t8.in_edges(e, &mut ins);
        assert_eq!(ins.len(), 1); // B->E alive at 8
        assert_eq!(ins[0].target, g.vertex_index(transit_ids::B).unwrap().0);
    }

    #[test]
    fn transformed_topology_marks_waiting_edges() {
        let g = Arc::new(transit_graph());
        let tg = Arc::new(transform_for_paths(&g, &TransformOptions::default()));
        let topo = TransformedTopology::new(Arc::clone(&g), Arc::clone(&tg));
        let mut waiting = 0;
        let mut transit = 0;
        for v in 0..topo.num_vertices() as u32 {
            let mut out = Vec::new();
            topo.out_edges(v, &mut out);
            for e in out {
                if e.kind == 1 {
                    waiting += 1;
                    assert_eq!(e.w1, 0);
                } else {
                    transit += 1;
                }
            }
        }
        assert_eq!(transit, 14);
        assert!(waiting > 0);
        assert_eq!(waiting + transit, tg.num_edges());
    }

    #[test]
    fn replica_partition_keys_spread() {
        let g = Arc::new(transit_graph());
        let tg = Arc::new(transform_for_paths(&g, &TransformOptions::default()));
        let topo = TransformedTopology::new(g, tg);
        // Two replicas of the same vertex get different keys.
        let (v0, _) = topo.replica(0);
        let mut same_vertex = Vec::new();
        for v in 0..topo.num_vertices() as u32 {
            if topo.replica(v).0 == v0 {
                same_vertex.push(topo.partition_key(v));
            }
        }
        same_vertex.dedup();
        assert!(same_vertex.len() > 1);
    }
}
