//! A plain vertex-centric (Pregel-style) engine — the common core of all
//! four baseline platforms (Sec. VII-A3).
//!
//! The engine runs a [`VcmProgram`] over an abstract [`VcmTopology`]: a
//! static directed graph whose vertices are dense `u32` indices. Concrete
//! topologies adapt a single snapshot of a temporal graph (MSB, Chlonos,
//! GoFFish) or the time-expanded transformed graph (TGB). Running every
//! baseline on the same BSP substrate as GRAPHITE keeps the programming
//! primitives — not the runtime — as the experimental variable.

use graphite_bsp::aggregate::{Aggregators, MasterDecision};
use graphite_bsp::codec::{get_varint, put_varint, Wire};
use graphite_bsp::engine::{run_bsp, BspConfig, Inbox, Outbox, WorkerLogic};
use graphite_bsp::error::BspError;
use graphite_bsp::fault::FaultPlan;
use graphite_bsp::metrics::{RunMetrics, UserCounters};
use graphite_bsp::partition::{splitmix64, PartitionMap};
use graphite_bsp::recover::{run_bsp_recoverable, RecoveryConfig};
use graphite_bsp::snapshot::Snapshot;
use graphite_bsp::trace::{TraceConfig, TraceSink};
use graphite_bsp::MasterHook;
use graphite_part::PartitionStrategy;
use graphite_tgraph::builder::TemporalGraphBuilder;
use graphite_tgraph::graph::{VIdx, VertexId};
use graphite_tgraph::time::Interval;
use std::collections::HashMap;
use std::sync::Arc;

/// One out-edge as seen by VCM user logic: a target vertex plus up to two
/// resolved numeric payloads (travel cost / travel time in the paper's TD
/// algorithms) and a kind tag (used by TGB to mark waiting edges).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcmEdge {
    /// Target vertex (dense index in the topology).
    pub target: u32,
    /// Primary weight (e.g. travel cost at the snapshot instant).
    pub w1: i64,
    /// Secondary weight (e.g. travel time at the snapshot instant).
    pub w2: i64,
    /// Topology-specific tag: 0 = ordinary, 1 = TGB waiting edge.
    pub kind: u8,
}

/// A static directed graph the VCM engine can execute over.
pub trait VcmTopology: Send + Sync + 'static {
    /// Number of dense vertex slots (including inactive ones).
    fn num_vertices(&self) -> usize;

    /// Whether slot `v` holds a live vertex (a vertex absent from this
    /// snapshot is skipped entirely).
    fn is_active(&self, v: u32) -> bool {
        let _ = v;
        true
    }

    /// Appends the out-edges of `v` to `out`.
    fn out_edges(&self, v: u32, out: &mut Vec<VcmEdge>);

    /// Appends the in-edges of `v` to `out` (needed by reverse-traversing
    /// algorithms such as Latest Departure).
    fn in_edges(&self, v: u32, out: &mut Vec<VcmEdge>) {
        let _ = (v, out);
        unimplemented!("this topology does not expose in-edges");
    }

    /// A stable key used for hash partitioning (Giraph hashes the vertex
    /// id; TGB replicas hash their replica identity).
    fn partition_key(&self, v: u32) -> u64;

    /// The external id of the *logical* vertex behind slot `v` (for
    /// result reporting; several TGB replicas map to one logical vertex).
    fn logical_vid(&self, v: u32) -> VertexId;
}

/// Pregel-style user logic.
pub trait VcmProgram: Send + Sync + 'static {
    /// Per-vertex state.
    type State: Clone + Send + Sync + 'static;
    /// Message payload.
    type Msg: Wire;

    /// Initial state of vertex `v`.
    fn init(&self, topo_vertex: u32, vid: VertexId) -> Self::State;

    /// Vertex compute: read messages, mutate state, send messages.
    /// Invoked for every active vertex at superstep 1 (with no messages)
    /// and thereafter only for vertices that received messages.
    fn compute(
        &self,
        ctx: &mut VcmContext<'_, Self::Msg>,
        state: &mut Self::State,
        msgs: &[Self::Msg],
    );

    /// Optional associative message combiner (applied receiver-side before
    /// compute, like a Giraph combiner).
    fn combine(&self, a: &Self::Msg, b: &Self::Msg) -> Option<Self::Msg> {
        let _ = (a, b);
        None
    }

    /// When `true` for a superstep, every active-topology vertex computes
    /// even without messages (fixed-iteration algorithms like PageRank).
    fn all_active(&self, step: u64, globals: &Aggregators) -> bool {
        let _ = (step, globals);
        false
    }
}

/// Context handed to [`VcmProgram::compute`].
pub struct VcmContext<'a, M> {
    pub(crate) vertex: u32,
    pub(crate) vid: VertexId,
    pub(crate) superstep: u64,
    pub(crate) out_edges: &'a [VcmEdge],
    pub(crate) in_edges: &'a [VcmEdge],
    pub(crate) globals: &'a Aggregators,
    pub(crate) partial: &'a mut Aggregators,
    pub(crate) sends: &'a mut Vec<(u32, M)>,
}

impl<'a, M> VcmContext<'a, M> {
    /// The 1-based superstep number.
    pub fn superstep(&self) -> u64 {
        self.superstep
    }

    /// The dense topology index of this vertex.
    pub fn vertex(&self) -> u32 {
        self.vertex
    }

    /// The external id of the logical vertex.
    pub fn vid(&self) -> VertexId {
        self.vid
    }

    /// This vertex's out-edges.
    pub fn out_edges(&self) -> &'a [VcmEdge] {
        self.out_edges
    }

    /// This vertex's in-edges (empty unless the run requested them).
    pub fn in_edges(&self) -> &'a [VcmEdge] {
        self.in_edges
    }

    /// Sends `msg` to topology vertex `target` for the next superstep.
    pub fn send(&mut self, target: u32, msg: M) {
        self.sends.push((target, msg));
    }

    /// Merged aggregators from the previous superstep.
    pub fn globals(&self) -> &'a Aggregators {
        self.globals
    }

    /// This worker's aggregator contributions.
    pub fn aggregate(&mut self) -> &mut Aggregators {
        self.partial
    }
}

/// Configuration of one VCM run.
#[derive(Clone, Debug)]
pub struct VcmConfig {
    /// Number of BSP workers.
    pub workers: usize,
    /// Safety cap on supersteps.
    pub max_supersteps: u64,
    /// Forwarded to [`BspConfig::superstep_budget`]: an optional per-query
    /// execution budget below the safety cap (serving-layer fault domain,
    /// DESIGN.md §15).
    pub superstep_budget: Option<u64>,
    /// Also materialize in-edges for the user logic.
    pub need_in_edges: bool,
    /// Record per-superstep timing.
    pub keep_per_step_timing: bool,
    /// Forwarded to [`BspConfig::perturb_schedule`]: permute the BSP
    /// scheduling freedoms with this seed (race-harness use; results must
    /// not change).
    pub perturb_schedule: Option<u64>,
    /// Forwarded to [`BspConfig::trace`]: structured-trace recording
    /// level. Off by default; results are bit-identical at every level.
    pub trace: TraceConfig,
    /// Forwarded to [`BspConfig::fault_plan`]: deterministic fault
    /// injection (fault-tolerance harness use; recovered results must be
    /// bit-identical to fault-free ones).
    pub fault_plan: Option<FaultPlan>,
    /// Vertex-placement strategy applied to the synthetic partition-key
    /// graph (see `graphite-part`, DESIGN.md §13). Results are
    /// placement-invariant. Default: hash, the paper's (Sec. VII-A4).
    pub partition: PartitionStrategy,
}

impl Default for VcmConfig {
    fn default() -> Self {
        VcmConfig {
            workers: 4,
            max_supersteps: 100_000,
            superstep_budget: None,
            need_in_edges: false,
            keep_per_step_timing: false,
            perturb_schedule: None,
            trace: TraceConfig::default(),
            fault_plan: None,
            partition: PartitionStrategy::default(),
        }
    }
}

/// Result of a VCM run: final state per dense topology vertex, plus
/// metrics.
#[derive(Clone, Debug)]
pub struct VcmResult<S> {
    /// Final state of every active vertex, by dense index.
    pub states: HashMap<u32, S>,
    /// Run metrics.
    pub metrics: RunMetrics,
}

struct VcmWorker<T: VcmTopology, P: VcmProgram> {
    topology: Arc<T>,
    program: Arc<P>,
    owned: Vec<u32>,
    need_in_edges: bool,
    states: HashMap<u32, P::State>,
    scratch_out: Vec<VcmEdge>,
    scratch_in: Vec<VcmEdge>,
}

impl<T: VcmTopology, P: VcmProgram> VcmWorker<T, P> {
    #[allow(clippy::too_many_arguments)]
    fn run_vertex(
        &mut self,
        v: u32,
        step: u64,
        msgs: &[P::Msg],
        outbox: &mut Outbox<(u32, P::Msg)>,
        globals: &Aggregators,
        partial: &mut Aggregators,
        counters: &mut UserCounters,
    ) {
        let vid = self.topology.logical_vid(v);
        let state = match self.states.entry(v) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(self.program.init(v, vid)),
        };
        self.scratch_out.clear();
        self.topology.out_edges(v, &mut self.scratch_out);
        self.scratch_in.clear();
        if self.need_in_edges {
            self.topology.in_edges(v, &mut self.scratch_in);
        }
        let mut sends: Vec<(u32, P::Msg)> = Vec::new();
        let mut ctx = VcmContext {
            vertex: v,
            vid,
            superstep: step,
            out_edges: &self.scratch_out,
            in_edges: &self.scratch_in,
            globals,
            partial,
            sends: &mut sends,
        };
        counters.compute_calls += 1;
        self.program.compute(&mut ctx, state, msgs);
        for (target, msg) in sends {
            // Message routing is by the *message partition map* index,
            // which equals the topology index.
            outbox.send(VIdx(target), (target, msg));
        }
    }

    fn combined(&self, msgs: &[(u32, P::Msg)]) -> Vec<P::Msg> {
        let mut out: Vec<P::Msg> = Vec::with_capacity(msgs.len());
        for (_, m) in msgs {
            if let Some(last) = out.last_mut() {
                if let Some(c) = self.program.combine(last, m) {
                    *last = c;
                    continue;
                }
            }
            out.push(m.clone());
        }
        out
    }
}

impl<T: VcmTopology, P: VcmProgram> WorkerLogic for VcmWorker<T, P> {
    // The payload repeats the dense target so decode needs no side table.
    type Msg = (u32, P::Msg);

    fn superstep(
        &mut self,
        step: u64,
        inbox: &Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
        globals: &Aggregators,
        partial: &mut Aggregators,
        counters: &mut UserCounters,
        _sink: &mut TraceSink,
    ) {
        if step == 1 {
            let owned = std::mem::take(&mut self.owned);
            for &v in &owned {
                if self.topology.is_active(v) {
                    self.run_vertex(v, step, &[], outbox, globals, partial, counters);
                }
            }
            self.owned = owned;
            return;
        }
        let mut active: Vec<(u32, Vec<P::Msg>)> = Vec::new();
        if self.program.all_active(step, globals) {
            let owned = self.owned.clone();
            for v in owned {
                let msgs = inbox
                    .messages_for(VIdx(v))
                    .map(|raw| self.combined(raw))
                    .unwrap_or_default();
                active.push((v, msgs));
            }
        } else {
            for (v, raw) in inbox.iter() {
                active.push((v.0, self.combined(raw)));
            }
        }
        for (v, msgs) in active {
            if self.topology.is_active(v) {
                self.run_vertex(v, step, &msgs, outbox, globals, partial, counters);
            }
        }
    }
}

/// Checkpointing for VCM workers (available when the program's state is
/// wire-encodable): the per-vertex state map is the complete user state —
/// the scratch edge buffers are ephemeral and the config fields never
/// change mid-run. Keys are serialized in sorted order so the blob is
/// canonical regardless of hash-map iteration order.
impl<T: VcmTopology, P: VcmProgram> Snapshot for VcmWorker<T, P>
where
    P::State: Wire,
{
    fn checkpoint(&self, buf: &mut Vec<u8>) {
        put_varint(self.states.len() as u64, buf);
        let mut keys: Vec<u32> = self.states.keys().copied().collect();
        keys.sort_unstable();
        for v in keys {
            if let Some(s) = self.states.get(&v) {
                put_varint(u64::from(v), buf);
                s.encode(buf);
            }
        }
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        let mut cur = bytes;
        let count = get_varint(&mut cur).ok_or("vertex state count")?;
        let mut states = HashMap::new();
        for _ in 0..count {
            let raw = get_varint(&mut cur).ok_or("vertex id")?;
            let v = u32::try_from(raw).map_err(|_| "vertex id exceeds u32")?;
            let s = P::State::decode(&mut cur).ok_or("vertex state")?;
            states.insert(v, s);
        }
        if !cur.is_empty() {
            return Err("trailing bytes in worker checkpoint");
        }
        self.states = states;
        Ok(())
    }
}

/// A partition map over the dense topology vertices, placing each vertex
/// by its [`VcmTopology::partition_key`] under `strategy`.
fn topology_partition<T: VcmTopology>(
    topology: &T,
    workers: usize,
    strategy: &PartitionStrategy,
) -> Result<PartitionMap, BspError> {
    // PartitionMap is keyed by a TemporalGraph; build a synthetic one with
    // vids equal to the topology's partition keys so the same placement
    // rules apply. Cheap: vertices only.
    let mut b = TemporalGraphBuilder::with_capacity(topology.num_vertices(), 0);
    for v in 0..topology.num_vertices() as u32 {
        let key = topology.partition_key(v);
        // Keys may collide across slots; disambiguate while keeping the
        // hash distribution (mix the slot in only on collision).
        let mut vid = key;
        while b.add_vertex(VertexId(vid), Interval::all()).is_err() {
            vid = splitmix64(vid ^ u64::from(v)).wrapping_add(1);
        }
    }
    strategy.build(&b.build().expect("synthetic partition graph"), workers)
}

/// Runs `program` over `topology` to convergence.
///
/// # Panics
///
/// Panics when the run fails (a worker thread panicked or the wire codec
/// rejected a batch); use [`try_run_vcm`] to handle those as errors.
pub fn run_vcm<T: VcmTopology, P: VcmProgram>(
    topology: &Arc<T>,
    program: Arc<P>,
    config: &VcmConfig,
) -> VcmResult<P::State> {
    try_run_vcm(topology, program, config).unwrap_or_else(|e| panic!("VCM run failed: {e}"))
}

/// [`run_vcm`] with a MasterCompute hook.
///
/// # Panics
///
/// Panics when the run fails; use [`try_run_vcm_with_master`] to handle
/// failures as errors.
pub fn run_vcm_with_master<T: VcmTopology, P: VcmProgram>(
    topology: &Arc<T>,
    program: Arc<P>,
    config: &VcmConfig,
    master: Option<MasterHook<'_>>,
) -> VcmResult<P::State> {
    try_run_vcm_with_master(topology, program, config, master)
        .unwrap_or_else(|e| panic!("VCM run failed: {e}"))
}

/// Fallible [`run_vcm`]: surfaces poisoned workers and codec corruption as
/// [`BspError`] instead of panicking.
///
/// # Errors
///
/// See [`BspError`].
pub fn try_run_vcm<T: VcmTopology, P: VcmProgram>(
    topology: &Arc<T>,
    program: Arc<P>,
    config: &VcmConfig,
) -> Result<VcmResult<P::State>, BspError> {
    try_run_vcm_with_master(topology, program, config, None)
}

/// Fallible [`run_vcm_with_master`].
///
/// # Errors
///
/// See [`BspError`].
pub fn try_run_vcm_with_master<T: VcmTopology, P: VcmProgram>(
    topology: &Arc<T>,
    program: Arc<P>,
    config: &VcmConfig,
    master: Option<MasterHook<'_>>,
) -> Result<VcmResult<P::State>, BspError> {
    let partition = Arc::new(topology_partition(
        topology.as_ref(),
        config.workers,
        &config.partition,
    )?);
    let workers = build_workers(topology, &program, config, &partition);
    let bsp = bsp_config(config);
    let mut wrapper = keepalive_master(Arc::clone(&program), master);
    let (workers, metrics) = run_bsp(&bsp, workers, partition, Some(&mut wrapper))?;
    Ok(collect_result(workers, metrics))
}

/// Fault-tolerant [`try_run_vcm`]: runs over the checkpoint/rollback
/// driver ([`run_bsp_recoverable`]), so faults injected via
/// [`VcmConfig::fault_plan`] — or real worker panics — roll the run back
/// to the last checkpoint and replay instead of failing it. Requires the
/// program state to be wire-encodable.
///
/// # Errors
///
/// See [`BspError`]; exhausting the retry budget is
/// [`BspError::RecoveryExhausted`].
pub fn try_run_vcm_recoverable<T: VcmTopology, P: VcmProgram>(
    topology: &Arc<T>,
    program: Arc<P>,
    config: &VcmConfig,
    recovery: &RecoveryConfig,
) -> Result<VcmResult<P::State>, BspError>
where
    P::State: Wire,
{
    let partition = Arc::new(topology_partition(
        topology.as_ref(),
        config.workers,
        &config.partition,
    )?);
    let workers = build_workers(topology, &program, config, &partition);
    let bsp = bsp_config(config);
    let mut wrapper = keepalive_master(Arc::clone(&program), None);
    let (workers, metrics) =
        run_bsp_recoverable(&bsp, recovery, workers, partition, Some(&mut wrapper))?;
    Ok(collect_result(workers, metrics))
}

/// One VCM worker per partition, with empty state maps and fresh buffers.
fn build_workers<T: VcmTopology, P: VcmProgram>(
    topology: &Arc<T>,
    program: &Arc<P>,
    config: &VcmConfig,
    partition: &Arc<PartitionMap>,
) -> Vec<VcmWorker<T, P>> {
    (0..config.workers)
        .map(|w| VcmWorker {
            topology: Arc::clone(topology),
            program: Arc::clone(program),
            owned: partition.owned_by(w).into_iter().map(|v| v.0).collect(),
            need_in_edges: config.need_in_edges,
            states: HashMap::new(),
            scratch_out: Vec::new(),
            scratch_in: Vec::new(),
        })
        .collect()
}

/// The VCM-level config lowered onto the BSP substrate.
fn bsp_config(config: &VcmConfig) -> BspConfig {
    BspConfig {
        max_supersteps: config.max_supersteps,
        superstep_budget: config.superstep_budget,
        keep_per_step_timing: config.keep_per_step_timing,
        perturb_schedule: config.perturb_schedule,
        trace: config.trace,
        fault_plan: config.fault_plan.clone(),
    }
}

/// Keeps phased programs alive through idle barriers when they request an
/// all-active next superstep.
fn keepalive_master<'a, P: VcmProgram>(
    program: Arc<P>,
    mut user_master: Option<MasterHook<'a>>,
) -> impl FnMut(u64, &Aggregators) -> MasterDecision + 'a {
    move |step: u64, globals: &Aggregators| {
        let user = match user_master.as_mut() {
            Some(hook) => hook(step, globals),
            None => MasterDecision::Continue,
        };
        if user == MasterDecision::Continue && program.all_active(step + 1, globals) {
            MasterDecision::ForceContinue
        } else {
            user
        }
    }
}

/// Merges the per-worker state maps into the result.
fn collect_result<T: VcmTopology, P: VcmProgram>(
    workers: Vec<VcmWorker<T, P>>,
    metrics: RunMetrics,
) -> VcmResult<P::State> {
    let mut states = HashMap::new();
    for w in workers {
        states.extend(w.states);
    }
    VcmResult { states, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed little DAG topology: 0 -> 1 -> 2, 0 -> 2, with weights.
    struct Dag;

    impl VcmTopology for Dag {
        fn num_vertices(&self) -> usize {
            3
        }
        fn out_edges(&self, v: u32, out: &mut Vec<VcmEdge>) {
            let edges: &[(u32, i64)] = match v {
                0 => &[(1, 5), (2, 20)],
                1 => &[(2, 4)],
                _ => &[],
            };
            out.extend(edges.iter().map(|&(target, w1)| VcmEdge {
                target,
                w1,
                w2: 0,
                kind: 0,
            }));
        }
        fn partition_key(&self, v: u32) -> u64 {
            u64::from(v)
        }
        fn logical_vid(&self, v: u32) -> VertexId {
            VertexId(u64::from(v))
        }
    }

    /// Static SSSP from vertex 0.
    struct Sssp;

    impl VcmProgram for Sssp {
        type State = i64;
        type Msg = i64;
        fn init(&self, _v: u32, vid: VertexId) -> i64 {
            if vid == VertexId(0) {
                0
            } else {
                i64::MAX
            }
        }
        fn compute(&self, ctx: &mut VcmContext<i64>, state: &mut i64, msgs: &[i64]) {
            let best = msgs.iter().copied().min().unwrap_or(*state);
            if ctx.superstep() == 1 || best < *state {
                if best < *state {
                    *state = best;
                }
                if *state < i64::MAX {
                    let dist = *state;
                    let edges: Vec<VcmEdge> = ctx.out_edges().to_vec();
                    for e in edges {
                        ctx.send(e.target, dist + e.w1);
                    }
                }
            }
        }
        fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
            Some(*a.min(b))
        }
    }

    #[test]
    fn static_sssp_converges() {
        for workers in [1, 2, 3] {
            let r = run_vcm(
                &Arc::new(Dag),
                Arc::new(Sssp),
                &VcmConfig {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(r.states[&0], 0);
            assert_eq!(r.states[&1], 5);
            assert_eq!(r.states[&2], 9, "workers={workers}");
        }
    }

    #[test]
    fn counts_are_stable_across_workers() {
        let r1 = run_vcm(
            &Arc::new(Dag),
            Arc::new(Sssp),
            &VcmConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let r3 = run_vcm(
            &Arc::new(Dag),
            Arc::new(Sssp),
            &VcmConfig {
                workers: 3,
                ..Default::default()
            },
        );
        assert_eq!(
            r1.metrics.counters.compute_calls,
            r3.metrics.counters.compute_calls
        );
        assert_eq!(
            r1.metrics.counters.messages_sent,
            r3.metrics.counters.messages_sent
        );
    }

    /// Inactive vertices are skipped at superstep 1 and never computed.
    struct HalfActive;

    impl VcmTopology for HalfActive {
        fn num_vertices(&self) -> usize {
            4
        }
        fn is_active(&self, v: u32) -> bool {
            v.is_multiple_of(2)
        }
        fn out_edges(&self, _v: u32, _out: &mut Vec<VcmEdge>) {}
        fn partition_key(&self, v: u32) -> u64 {
            u64::from(v)
        }
        fn logical_vid(&self, v: u32) -> VertexId {
            VertexId(u64::from(v))
        }
    }

    struct CountOnly;

    impl VcmProgram for CountOnly {
        type State = u64;
        type Msg = ();
        fn init(&self, _v: u32, _vid: VertexId) -> u64 {
            0
        }
        fn compute(&self, _ctx: &mut VcmContext<()>, state: &mut u64, _msgs: &[()]) {
            *state += 1;
        }
    }

    #[test]
    fn inactive_vertices_are_skipped() {
        let r = run_vcm(
            &Arc::new(HalfActive),
            Arc::new(CountOnly),
            &VcmConfig::default(),
        );
        assert_eq!(r.metrics.counters.compute_calls, 2);
        assert!(r.states.contains_key(&0));
        assert!(!r.states.contains_key(&1));
    }
}
