//! # graphite-bsp — the distributed BSP substrate
//!
//! A shared-nothing, multi-worker bulk-synchronous-parallel engine that
//! stands in for Apache Giraph in this reproduction of the ICM paper.
//! Workers are OS threads owning hash-partitioned vertex sets; supersteps
//! alternate a parallel compute phase with a barrier-synchronized message
//! exchange; messages crossing worker boundaries are serialized through a
//! compact wire codec (with the paper's varint interval compression) and
//! all primitive counts and time splits are recorded per run.
//!
//! The interval-centric engine (`graphite-icm`) and all four baseline
//! platforms (`graphite-baselines`) execute on this substrate, so — as in
//! the paper — the programming primitives are the experimental variable,
//! not the runtime.
//!
//! Runs are fault-tolerant on request: [`run_bsp_recoverable`] checkpoints
//! worker [`Snapshot`]s and in-flight inboxes every few supersteps and
//! rolls back on recoverable faults, while a deterministic [`FaultPlan`]
//! on [`BspConfig`] injects worker panics and wire bit-flips to prove —
//! via pinned digests — that recovered results are bit-identical to
//! fault-free ones.
//!
//! Every run can additionally record a structured [`trace`]: per-worker,
//! per-superstep span events (DESIGN.md §12) that never perturb results
//! and serialize to the `graphite-trace/1` JSONL schema.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod check;
pub mod codec;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod partition;
pub mod recover;
pub mod snapshot;
pub mod trace;

pub use aggregate::{Agg, Aggregators, MasterDecision};
pub use check::RunChecker;
pub use codec::Wire;
pub use engine::{run_bsp, BspConfig, Inbox, MasterHook, Outbox, WorkerLogic, MESSAGES_SENT_AGG};
pub use error::BspError;
pub use fault::{Fault, FaultInjector, FaultKind, FaultMode, FaultPlan};
pub use metrics::{RecoveryMetrics, RunMetrics, StepTiming, UserCounters};
pub use partition::{hash_partition, PartitionMap};
pub use recover::{run_bsp_recoverable, RecoveryConfig};
pub use snapshot::{Checkpoint, CheckpointStorage, CheckpointStore, Snapshot};
pub use trace::{RunTrace, TraceConfig, TraceEvent, TraceLevel, TraceSink};
