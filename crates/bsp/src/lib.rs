//! # graphite-bsp — the distributed BSP substrate
//!
//! A shared-nothing, multi-worker bulk-synchronous-parallel engine that
//! stands in for Apache Giraph in this reproduction of the ICM paper.
//! Workers are OS threads owning hash-partitioned vertex sets; supersteps
//! alternate a parallel compute phase with a barrier-synchronized message
//! exchange; messages crossing worker boundaries are serialized through a
//! compact wire codec (with the paper's varint interval compression) and
//! all primitive counts and time splits are recorded per run.
//!
//! The interval-centric engine (`graphite-icm`) and all four baseline
//! platforms (`graphite-baselines`) execute on this substrate, so — as in
//! the paper — the programming primitives are the experimental variable,
//! not the runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod check;
pub mod codec;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod partition;

pub use aggregate::{Agg, Aggregators, MasterDecision};
pub use check::RunChecker;
pub use codec::Wire;
pub use engine::{run_bsp, BspConfig, Inbox, MasterHook, Outbox, WorkerLogic, MESSAGES_SENT_AGG};
pub use error::BspError;
pub use metrics::{RunMetrics, StepTiming, UserCounters};
pub use partition::{hash_partition, PartitionMap};
