//! Deterministic fault injection for the BSP engine.
//!
//! A [`FaultPlan`] is *configuration*, not a compile-time feature: it rides
//! on [`crate::engine::BspConfig::fault_plan`] and is evaluated by release
//! and debug builds alike, so the recovery layer is exercised against
//! exactly the code that ships (the `fault-isolation` rule of
//! `graphite-analyze` rejects any `cfg`-gating of these hooks). With no plan
//! configured the hooks are two branch-free `None` checks per superstep.
//!
//! Two fault kinds are injectable, matching the two recoverable
//! [`crate::error::BspError`] classes:
//!
//! * [`FaultKind::WorkerPanic`] — the chosen worker's compute closure
//!   panics at the chosen superstep, exercising the poisoned-worker path
//!   (`BspError::WorkerPanicked`).
//! * [`FaultKind::WireCorruption`] — one deterministically-chosen bit of
//!   the first remote batch bound for the chosen worker at the chosen
//!   superstep is flipped after encoding, exercising the codec-integrity
//!   path (`BspError::Codec`; the batch checksum makes detection certain).
//!
//! Faults are [`FaultMode::Transient`] (fire once, then stay quiet — the
//! classic crash-restart model, recoverable by rollback) or
//! [`FaultMode::Persistent`] (fire on every attempt — e.g. a determinism
//! bug or bad hardware, which must exhaust the retry budget rather than
//! loop forever). The firing state lives in a [`FaultInjector`] owned by
//! the driver, *outside* the rolled-back run state, so "already fired"
//! survives rollbacks.

use graphite_tgraph::rng::SplitMix64;

/// What an injected fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the worker's compute closure.
    WorkerPanic,
    /// Flip one bit of an encoded remote batch bound for the worker.
    WireCorruption,
}

/// Whether a fault fires once or on every recovery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Fires the first time its `(worker, step)` trigger is reached, then
    /// never again — replays after a rollback pass cleanly.
    Transient,
    /// Fires every time its trigger is reached, including on replays.
    Persistent,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Worker index the fault targets (for wire corruption: the
    /// *destination* worker of the corrupted batch).
    pub worker: usize,
    /// 1-based superstep at which the fault triggers.
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
    /// Transient (fire once) or persistent (fire every attempt).
    pub mode: FaultMode,
}

/// A deterministic schedule of injected faults, configured on
/// [`crate::engine::BspConfig::fault_plan`]. The same plan against the
/// same workload produces the same fault sequence on every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with a single transient worker panic at `(worker, step)`.
    #[must_use]
    pub fn panic_at(worker: usize, step: u64) -> Self {
        FaultPlan {
            faults: vec![Fault {
                worker,
                step,
                kind: FaultKind::WorkerPanic,
                mode: FaultMode::Transient,
            }],
        }
    }

    /// A plan with a single transient wire-corruption fault on the first
    /// remote batch bound for `worker` at `step`.
    #[must_use]
    pub fn corrupt_at(worker: usize, step: u64) -> Self {
        FaultPlan {
            faults: vec![Fault {
                worker,
                step,
                kind: FaultKind::WireCorruption,
                mode: FaultMode::Transient,
            }],
        }
    }

    /// Adds another fault to the plan.
    #[must_use]
    pub fn and(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Marks every fault in the plan persistent.
    #[must_use]
    pub fn persistent(mut self) -> Self {
        for f in &mut self.faults {
            f.mode = FaultMode::Persistent;
        }
        self
    }

    /// A seeded schedule of `count` transient faults drawn deterministically
    /// over `workers` worker indices and supersteps `1..=max_step`,
    /// alternating panic and wire-corruption kinds by draw parity. The same
    /// seed always yields the same schedule.
    #[must_use]
    pub fn seeded(seed: u64, workers: usize, max_step: u64, count: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x4641_554c_5453); // "FAULTS"
        let faults = (0..count)
            .map(|i| Fault {
                // lint:allow(worker-assignment) — picks a random fault
                // target, not a vertex placement.
                worker: (rng.next_u64() % workers.max(1) as u64) as usize,
                step: 1 + rng.next_u64() % max_step.max(1),
                kind: if i % 2 == 0 {
                    FaultKind::WorkerPanic
                } else {
                    FaultKind::WireCorruption
                },
                mode: FaultMode::Transient,
            })
            .collect();
        FaultPlan { faults }
    }
}

/// Runtime state of a [`FaultPlan`]: which faults already fired, and which
/// recovery attempt is executing. Owned by the run driver, outside the
/// rolled-back engine state, so transient faults stay fired across
/// rollbacks.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<bool>,
    attempt: u64,
}

impl FaultInjector {
    /// An injector for `plan` (`None` = no faults; hooks never fire).
    #[must_use]
    pub fn new(plan: Option<FaultPlan>) -> Self {
        let plan = plan.unwrap_or_default();
        let fired = vec![false; plan.faults.len()];
        FaultInjector {
            plan,
            fired,
            attempt: 0,
        }
    }

    /// The driver rolled back and is about to replay: subsequent trigger
    /// checks belong to the next attempt (feeds the corruption bit choice,
    /// so a persistent corruption fault flips a different — but still
    /// deterministic — bit each attempt).
    pub fn next_attempt(&mut self) {
        self.attempt += 1;
    }

    /// Whether any fault could ever fire (lets the engine skip per-step
    /// bookkeeping entirely for fault-free configs).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        !self.plan.faults.is_empty()
    }

    fn arm(&mut self, worker: usize, step: u64, kind: FaultKind) -> bool {
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.worker == worker && f.step == step && f.kind == kind {
                let fires = match f.mode {
                    FaultMode::Persistent => true,
                    FaultMode::Transient => !self.fired[i],
                };
                if fires {
                    self.fired[i] = true;
                    return true;
                }
            }
        }
        false
    }

    /// Should `worker`'s compute closure panic at `step` this attempt?
    #[must_use]
    pub fn arm_panic(&mut self, worker: usize, step: u64) -> bool {
        self.arm(worker, step, FaultKind::WorkerPanic)
    }

    /// Should the next remote batch bound for `dst_worker` at `step` be
    /// corrupted? Returns the 64-bit draw selecting the flipped bit
    /// (`draw % len` picks the byte, `(draw >> 32) % 8` the bit), or
    /// `None` when no corruption fault triggers.
    #[must_use]
    pub fn arm_corruption(&mut self, dst_worker: usize, step: u64) -> Option<u64> {
        if !self.arm(dst_worker, step, FaultKind::WireCorruption) {
            return None;
        }
        let mut rng = SplitMix64::new(
            (dst_worker as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(step)
                .wrapping_add(self.attempt << 48),
        );
        Some(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_fault_fires_exactly_once() {
        let mut inj = FaultInjector::new(Some(FaultPlan::panic_at(1, 3)));
        assert!(!inj.arm_panic(1, 2), "wrong step must not fire");
        assert!(!inj.arm_panic(0, 3), "wrong worker must not fire");
        assert!(inj.arm_panic(1, 3), "trigger must fire");
        inj.next_attempt();
        assert!(!inj.arm_panic(1, 3), "transient fault must stay fired");
    }

    #[test]
    fn persistent_fault_fires_every_attempt() {
        let mut inj = FaultInjector::new(Some(FaultPlan::panic_at(0, 2).persistent()));
        for _ in 0..3 {
            assert!(inj.arm_panic(0, 2));
            inj.next_attempt();
        }
    }

    #[test]
    fn corruption_draw_is_deterministic_per_attempt() {
        let plan = FaultPlan::corrupt_at(2, 4).persistent();
        let mut a = FaultInjector::new(Some(plan.clone()));
        let mut b = FaultInjector::new(Some(plan));
        let d1 = a.arm_corruption(2, 4);
        assert_eq!(d1, b.arm_corruption(2, 4));
        assert!(d1.is_some());
        a.next_attempt();
        b.next_attempt();
        let d2 = a.arm_corruption(2, 4);
        assert_eq!(d2, b.arm_corruption(2, 4));
        assert_ne!(d1, d2, "each attempt flips a different bit");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let p1 = FaultPlan::seeded(99, 4, 6, 8);
        let p2 = FaultPlan::seeded(99, 4, 6, 8);
        assert_eq!(p1, p2);
        assert_eq!(p1.faults.len(), 8);
        for f in &p1.faults {
            assert!(f.worker < 4);
            assert!((1..=6).contains(&f.step));
            assert_eq!(f.mode, FaultMode::Transient);
        }
        assert_ne!(p1, FaultPlan::seeded(100, 4, 6, 8));
    }

    #[test]
    fn unarmed_injector_never_fires() {
        let mut inj = FaultInjector::new(None);
        assert!(!inj.is_armed());
        for step in 1..10 {
            for w in 0..4 {
                assert!(!inj.arm_panic(w, step));
                assert!(inj.arm_corruption(w, step).is_none());
            }
        }
    }
}
