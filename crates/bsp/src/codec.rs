//! Wire format for inter-worker messages.
//!
//! The paper (Sec. VI, "Interval Messages") observes that shipping a fixed
//! 16-byte `(start, end)` pair with every message dominates network cost on
//! billion-message runs, and that variable byte-length encoding plus special
//! flags for unit-length and right-unbounded intervals cuts message sizes by
//! 59–78 %. This module implements exactly that: LEB128 varints with zigzag
//! for signed values, and a one-byte interval header with `UNIT` / `TO_INF` /
//! `FROM_NEG_INF` flags so degenerate endpoints cost nothing.
//!
//! Everything that crosses a worker boundary implements [`Wire`]; the BSP
//! router encodes remote batches through it and charges the byte counts to
//! the run's metrics, making message-size optimizations observable in the
//! Fig. 5/6 reproductions and the `codec` criterion bench.

use graphite_tgraph::graph::VIdx;
use graphite_tgraph::time::{Interval, TIME_MAX, TIME_MIN};

/// A value that can be serialized into the inter-worker wire format.
pub trait Wire: Sized + Send + Sync + Clone + 'static {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value from the front of `buf`, advancing it. Returns
    /// `None` on malformed input.
    fn decode(buf: &mut &[u8]) -> Option<Self>;

    /// The encoded size in bytes (default: encode into a scratch buffer).
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::with_capacity(16);
        self.encode(&mut buf);
        buf.len()
    }
}

/// Appends an unsigned LEB128 varint.
pub fn put_varint(mut v: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint.
pub fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value for varint encoding.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag varint.
pub fn put_signed(v: i64, buf: &mut Vec<u8>) {
    put_varint(zigzag(v), buf);
}

/// Reads a zigzag varint.
pub fn get_signed(buf: &mut &[u8]) -> Option<i64> {
    get_varint(buf).map(unzigzag)
}

/// Size of the integrity trailer [`encode_batch`] appends after the
/// payload: an FNV-1a checksum over the payload bytes, 8 bytes
/// little-endian. Framing overhead, not message payload — the router
/// charges only `wire.len() - BATCH_TRAILER` to the byte metric so the
/// paper's message-size numbers are unchanged by the integrity layer.
pub const BATCH_TRAILER: usize = 8;

/// FNV-1a over `bytes`: the checksum guarding batch frames. Each step
/// `h = (h ^ b) * p` is a bijection of the running hash for any fixed
/// byte (and injective in the byte for a fixed hash), so *any*
/// single-byte — hence any single-bit — payload corruption is guaranteed
/// to change the final value; the fault injector's bit-flips can never
/// slip through undetected.
#[must_use]
pub fn batch_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a routed batch — `(vertex, message)` pairs, in order — into
/// `wire`: the framing the BSP router ships between workers, followed by
/// an FNV-1a integrity trailer ([`BATCH_TRAILER`] bytes) over exactly the
/// payload this call appended. The buffer is appended to, never cleared,
/// so one allocation serves every batch of every superstep.
pub fn encode_batch<M: Wire>(batch: &[(VIdx, M)], wire: &mut Vec<u8>) {
    let start = wire.len();
    for (v, m) in batch {
        put_varint(u64::from(v.0), wire);
        m.encode(wire);
    }
    let sum = batch_checksum(&wire[start..]);
    wire.extend_from_slice(&sum.to_le_bytes());
}

/// Decodes exactly `count` pairs written by [`encode_batch`], handing each
/// to `deliver` in encoding order. The integrity trailer is verified
/// *before* any message is delivered, so a corrupted batch delivers
/// nothing at all — there is no partially-applied decode to unwind.
///
/// # Errors
///
/// Returns a static description of the corruption when the checksum does
/// not match, the buffer is malformed, or it is not consumed exactly.
pub fn decode_batch<M: Wire>(
    wire: &[u8],
    count: usize,
    mut deliver: impl FnMut(VIdx, M),
) -> Result<(), &'static str> {
    if wire.len() < BATCH_TRAILER {
        return Err("batch shorter than its checksum trailer");
    }
    let (payload, trailer) = wire.split_at(wire.len() - BATCH_TRAILER);
    let want = u64::from_le_bytes(trailer.try_into().map_err(|_| "checksum trailer")?);
    if batch_checksum(payload) != want {
        return Err("batch checksum mismatch");
    }
    let mut cursor = payload;
    for _ in 0..count {
        let raw = get_varint(&mut cursor).ok_or("vertex id varint")?;
        let v = VIdx(u32::try_from(raw).map_err(|_| "vertex id exceeds u32")?);
        let m = M::decode(&mut cursor).ok_or("message payload")?;
        deliver(v, m);
    }
    if !cursor.is_empty() {
        return Err("trailing bytes after batch");
    }
    Ok(())
}

// Interval header flags.
const F_UNIT: u8 = 0b0001;
const F_TO_INF: u8 = 0b0010;
const F_FROM_NEG_INF: u8 = 0b0100;

/// Encodes an interval compactly: a flag byte, then the start point
/// (zigzag varint, omitted when `-∞`), then the *length* (varint, omitted
/// for unit-length or right-unbounded intervals).
pub fn put_interval(iv: Interval, buf: &mut Vec<u8>) {
    let mut flags = 0u8;
    if iv.start() == TIME_MIN {
        flags |= F_FROM_NEG_INF;
    }
    if iv.end() == TIME_MAX {
        flags |= F_TO_INF;
    } else if iv.start() != TIME_MIN && iv.len() == 1 {
        flags |= F_UNIT;
    }
    buf.push(flags);
    if flags & F_FROM_NEG_INF == 0 {
        put_signed(iv.start(), buf);
    }
    if flags & (F_TO_INF | F_UNIT) == 0 {
        if flags & F_FROM_NEG_INF == 0 {
            // Bounded on both sides: store the length, which is small for
            // the short intervals that dominate real workloads. Computed in
            // i128 so extreme spans (e.g. nearly the whole i64 domain)
            // don't saturate.
            let len = (iv.end() as i128 - iv.start() as i128) as u64;
            put_varint(len, buf);
        } else {
            // (-inf, end): store the end point itself.
            put_signed(iv.end(), buf);
        }
    }
}

/// Decodes an interval written by [`put_interval`].
pub fn get_interval(buf: &mut &[u8]) -> Option<Interval> {
    let (&flags, rest) = buf.split_first()?;
    *buf = rest;
    let start = if flags & F_FROM_NEG_INF != 0 {
        TIME_MIN
    } else {
        get_signed(buf)?
    };
    let end = if flags & F_TO_INF != 0 {
        TIME_MAX
    } else if flags & F_UNIT != 0 {
        start.checked_add(1)?
    } else if flags & F_FROM_NEG_INF != 0 {
        get_signed(buf)?
    } else {
        let len = get_varint(buf)?;
        i64::try_from(start as i128 + len as i128).ok()?
    };
    Interval::try_new(start, end)
}

/// The naive fixed-width encoding the paper improves on (two 8-byte
/// longs); kept for the `codec` bench's size comparison.
pub fn put_interval_fixed(iv: Interval, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&iv.start().to_le_bytes());
    buf.extend_from_slice(&iv.end().to_le_bytes());
}

/// Decodes [`put_interval_fixed`].
pub fn get_interval_fixed(buf: &mut &[u8]) -> Option<Interval> {
    if buf.len() < 16 {
        return None;
    }
    let start = i64::from_le_bytes(buf[..8].try_into().ok()?);
    let end = i64::from_le_bytes(buf[8..16].try_into().ok()?);
    *buf = &buf[16..];
    Interval::try_new(start, end)
}

impl Wire for Interval {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_interval(*self, buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_interval(buf)
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(*self, buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_varint(buf)
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_signed(*self, buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_signed(buf)
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(u64::from(*self), buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        get_varint(buf).and_then(|v| u32::try_from(v).ok())
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        let v = f64::from_le_bytes(buf[..8].try_into().ok()?);
        *buf = &buf[8..];
        Some(v)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&b, rest) = buf.split_first()?;
        *buf = rest;
        Some(b != 0)
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
    fn encoded_len(&self) -> usize {
        0
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::decode(buf)?,
            B::decode(buf)?,
            C::decode(buf)?,
            D::decode(buf)?,
        ))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(self.len() as u64, buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let n = get_varint(buf)? as usize;
        // Guard against malformed lengths: each element needs >= 1 byte.
        if n > buf.len() {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(buf)?);
        }
        Some(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&tag, rest) = buf.split_first()?;
        *buf = rest;
        match tag {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut slice = buf.as_slice();
        assert_eq!(T::decode(&mut slice), Some(v));
        assert!(slice.is_empty(), "decoder must consume exactly its bytes");
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            round_trip(v);
        }
    }

    #[test]
    fn signed_round_trips() {
        for v in [0i64, 1, -1, 63, -64, 64, i64::MIN, i64::MAX] {
            round_trip(v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(unzigzag(zigzag(-12345)), -12345);
    }

    #[test]
    fn interval_round_trips() {
        for iv in [
            Interval::new(0, 1),
            Interval::new(5, 6),
            Interval::new(-3, 400),
            Interval::point(1_000_000),
            Interval::from_start(9),
            Interval::until(-2),
            Interval::all(),
            Interval::new(TIME_MIN + 1, TIME_MAX - 1),
        ] {
            round_trip(iv);
        }
    }

    #[test]
    fn unit_and_unbounded_intervals_are_tiny() {
        // A unit interval costs flag + small start varint: 2 bytes.
        assert_eq!(Interval::point(5).encoded_len(), 2);
        // [t, inf): flag + start.
        assert_eq!(Interval::from_start(9).encoded_len(), 2);
        // [-inf, inf): just the flag.
        assert_eq!(Interval::all().encoded_len(), 1);
        // All far below the fixed 16-byte encoding.
        let mut buf = Vec::new();
        put_interval_fixed(Interval::point(5), &mut buf);
        assert_eq!(buf.len(), 16);
    }

    #[test]
    fn compact_vs_fixed_size_reduction_matches_paper_range() {
        // A workload-like mixture: mostly unit and right-unbounded message
        // intervals with small coordinates, as in the paper's graphs.
        let mut compact = Vec::new();
        let mut fixed = Vec::new();
        for t in 0..200 {
            let iv = match t % 4 {
                0 => Interval::point(t),
                1 => Interval::from_start(t),
                2 => Interval::new(t, t + 5),
                _ => Interval::new(t, t + 40),
            };
            put_interval(iv, &mut compact);
            put_interval_fixed(iv, &mut fixed);
        }
        let reduction = 1.0 - compact.len() as f64 / fixed.len() as f64;
        // Paper reports 59–78 % drops in overall message size.
        assert!(reduction > 0.59, "got {reduction}");
    }

    #[test]
    fn fixed_interval_round_trips() {
        let mut buf = Vec::new();
        put_interval_fixed(Interval::new(-9, 88), &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(get_interval_fixed(&mut s), Some(Interval::new(-9, 88)));
        assert!(s.is_empty());
    }

    #[test]
    fn composite_round_trips() {
        round_trip((Interval::new(0, 9), 42i64));
        round_trip((1u64, -2i64, Interval::point(3)));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some((Interval::all(), 7u64)));
        round_trip(Option::<u64>::None);
        round_trip(3.25f64);
        round_trip(true);
    }

    #[test]
    fn batch_round_trips_and_checksum_guards_every_bit() {
        let batch: Vec<(VIdx, (Interval, i64))> = vec![
            (VIdx(3), (Interval::new(0, 5), -7)),
            (VIdx(0), (Interval::point(2), 400)),
            (VIdx(9), (Interval::from_start(1), 0)),
        ];
        let mut wire = Vec::new();
        encode_batch(&batch, &mut wire);
        let mut got = Vec::new();
        decode_batch::<(Interval, i64)>(&wire, batch.len(), |v, m| got.push((v, m)))
            .expect("clean round trip");
        assert_eq!(got, batch);
        // Every single-bit flip anywhere in the frame (payload or trailer)
        // must be detected — never a panic, never a silent mis-decode.
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                let res = decode_batch::<(Interval, i64)>(&bad, batch.len(), |_, _| {});
                assert!(
                    res.is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn empty_batch_has_only_the_trailer() {
        let mut wire = Vec::new();
        encode_batch::<u64>(&[], &mut wire);
        assert_eq!(wire.len(), BATCH_TRAILER);
        decode_batch::<u64>(&wire, 0, |_, _| panic!("nothing to deliver")).expect("empty ok");
    }

    #[test]
    fn truncated_batch_is_rejected_without_delivery() {
        let batch: Vec<(VIdx, u64)> = (0..8).map(|i| (VIdx(i), u64::from(i) * 1000)).collect();
        let mut wire = Vec::new();
        encode_batch(&batch, &mut wire);
        for keep in 0..wire.len() {
            let mut delivered = 0u32;
            let res = decode_batch::<u64>(&wire[..keep], batch.len(), |_, _| delivered += 1);
            assert!(res.is_err(), "truncation to {keep} bytes went undetected");
            assert_eq!(delivered, 0, "truncated batch must deliver nothing");
        }
    }

    #[test]
    fn malformed_input_is_rejected() {
        let mut empty: &[u8] = &[];
        assert_eq!(u64::decode(&mut empty), None);
        assert_eq!(Interval::decode(&mut empty), None);
        // Truncated varint (continuation bit set, nothing follows).
        let mut bad: &[u8] = &[0x80];
        assert_eq!(u64::decode(&mut bad), None);
        // Vec with an absurd length header.
        let mut buf = Vec::new();
        put_varint(1 << 40, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(Vec::<u64>::decode(&mut s), None);
        // Overlong varint (>64 bits of payload).
        let mut overlong: &[u8] = &[0xff; 11];
        assert_eq!(u64::decode(&mut overlong), None);
        // Interval that decodes to empty is rejected.
        let mut buf = Vec::new();
        buf.push(0u8);
        put_signed(5, &mut buf);
        put_varint(0, &mut buf); // zero length
        let mut s = buf.as_slice();
        assert_eq!(Interval::decode(&mut s), None);
    }
}
