//! Vertex partitioning across workers.
//!
//! Giraph's default hash partitioner assigns each vertex to
//! `hash(vid) mod workers`; the paper runs all platforms with it
//! (Sec. VII-A4). We hash the *external* vertex id through splitmix64 so
//! the placement is independent of load order, and precompute a dense
//! `VIdx → worker` map once per run.

use graphite_tgraph::graph::{TemporalGraph, VIdx, VertexId};

/// Finalizing mix of splitmix64 — a fast, well-distributed 64-bit hash.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The worker owning `vid` among `workers` workers.
#[inline]
pub fn hash_partition(vid: VertexId, workers: usize) -> usize {
    debug_assert!(workers > 0);
    (splitmix64(vid.0) % workers as u64) as usize
}

/// A precomputed vertex → worker assignment for one graph and worker count.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    assignment: Vec<u16>,
    workers: usize,
    /// Vertices per worker, precomputed so ownership lists and per-worker
    /// buffers can be sized exactly instead of growing incrementally.
    counts: Vec<u32>,
}

impl PartitionMap {
    /// Hash-partitions `graph` over `workers` workers.
    pub fn hash(graph: &TemporalGraph, workers: usize) -> Self {
        assert!(workers > 0 && workers <= u16::MAX as usize);
        let assignment: Vec<u16> = graph
            .vertices()
            .map(|(_, v)| hash_partition(v.vid, workers) as u16)
            .collect();
        let mut counts = vec![0u32; workers];
        for &w in &assignment {
            counts[w as usize] += 1;
        }
        PartitionMap {
            assignment,
            workers,
            counts,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker owning internal vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: VIdx) -> usize {
        self.assignment[v.idx()] as usize
    }

    /// Number of vertices owned by `worker`.
    #[inline]
    pub fn owned_count(&self, worker: usize) -> usize {
        self.counts.get(worker).map_or(0, |&c| c as usize)
    }

    /// The internal vertex indices owned by `worker`, in index order.
    pub fn owned_by(&self, worker: usize) -> Vec<VIdx> {
        let mut owned = Vec::with_capacity(self.owned_count(worker));
        owned.extend(
            self.assignment
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w as usize == worker)
                .map(|(i, _)| VIdx(i as u32)),
        );
        owned
    }

    /// Vertex counts per worker (for balance diagnostics).
    pub fn load(&self) -> Vec<usize> {
        self.counts.iter().map(|&c| c as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::time::Interval;

    fn line_graph(n: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            b.add_vertex(VertexId(i), Interval::new(0, 10)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn assignment_is_stable_and_total() {
        let g = line_graph(100);
        let p = PartitionMap::hash(&g, 4);
        assert_eq!(p.workers(), 4);
        for v in g.vertex_indices() {
            let w = p.worker_of(v);
            assert!(w < 4);
            // Matches the direct hash of the external id.
            assert_eq!(w, hash_partition(g.vertex(v).vid, 4));
        }
        // Every vertex appears in exactly one ownership list.
        let total: usize = (0..4).map(|w| p.owned_by(w).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn single_worker_owns_everything() {
        let g = line_graph(10);
        let p = PartitionMap::hash(&g, 1);
        assert_eq!(p.owned_by(0).len(), 10);
    }

    #[test]
    fn hash_spreads_reasonably() {
        let g = line_graph(10_000);
        let p = PartitionMap::hash(&g, 8);
        let load = p.load();
        let expected = 10_000 / 8;
        for (w, &l) in load.iter().enumerate() {
            assert!(
                (l as i64 - expected as i64).unsigned_abs() < expected as u64 / 2,
                "worker {w} has pathological load {l}"
            );
        }
    }

    #[test]
    fn splitmix_distinguishes_consecutive_keys() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xff, b & 0xff, "low bits should differ for 1 vs 2");
    }
}
