//! Vertex partitioning across workers.
//!
//! Giraph's default hash partitioner assigns each vertex to
//! `hash(vid) mod workers`; the paper runs all platforms with it
//! (Sec. VII-A4). We hash the *external* vertex id through splitmix64 so
//! the placement is independent of load order, and precompute a dense
//! `VIdx → worker` map once per run.
//!
//! Hashing is no longer the only way to build a [`PartitionMap`]:
//! [`PartitionMap::from_assignment`] accepts any explicit total
//! assignment, which is what the pluggable strategies in `graphite-part`
//! (chunked, LDG, temporal-balance) produce. This module and that crate
//! are the *only* places allowed to compute a worker from a vertex id —
//! enforced by graphite-analyze's `worker-assignment` rule — so every engine
//! routes through a [`PartitionMap`] and placement stays swappable.

use crate::error::BspError;
use graphite_tgraph::graph::{TemporalGraph, VIdx, VertexId};

/// Finalizing mix of splitmix64 — a fast, well-distributed 64-bit hash.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The worker owning `vid` among `workers` workers.
#[inline]
pub fn hash_partition(vid: VertexId, workers: usize) -> usize {
    debug_assert!(workers > 0);
    (splitmix64(vid.0) % workers as u64) as usize
}

/// Validates a requested worker count: it must be non-zero (someone has to
/// own the vertices) and fit the `u16` worker-index wire encoding.
fn check_workers(workers: usize) -> Result<(), BspError> {
    if workers == 0 {
        return Err(BspError::Config {
            detail: "0 workers requested; at least 1 is required".to_string(),
        });
    }
    if workers > u16::MAX as usize {
        return Err(BspError::Config {
            detail: format!(
                "{workers} workers requested; worker indices are wire-encoded \
                 as u16, so at most {} are supported",
                u16::MAX
            ),
        });
    }
    Ok(())
}

/// A precomputed vertex → worker assignment for one graph and worker count.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    assignment: Vec<u16>,
    workers: usize,
    /// Vertices per worker, precomputed so ownership lists and per-worker
    /// buffers can be sized exactly instead of growing incrementally.
    counts: Vec<u32>,
}

impl PartitionMap {
    /// Hash-partitions `graph` over `workers` workers.
    ///
    /// # Errors
    ///
    /// [`BspError::Config`] when `workers` is zero or exceeds the `u16`
    /// worker-index encoding. The worker count is user-controlled input
    /// (CLI flag, config field), so the bound is a typed error rather than
    /// an assertion.
    pub fn hash(graph: &TemporalGraph, workers: usize) -> Result<Self, BspError> {
        check_workers(workers)?;
        let assignment: Vec<u16> = graph
            .vertices()
            .map(|(_, v)| hash_partition(v.vid, workers) as u16)
            .collect();
        let mut counts = vec![0u32; workers];
        for &w in &assignment {
            counts[w as usize] += 1;
        }
        Ok(PartitionMap {
            assignment,
            workers,
            counts,
        })
    }

    /// Builds a map from an explicit per-vertex assignment (indexed by
    /// dense [`VIdx`], one entry per vertex of the graph it was computed
    /// for). This is the generalized constructor the pluggable strategies
    /// in `graphite-part` use; `hash` is equivalent to passing the
    /// splitmix64 assignment.
    ///
    /// # Errors
    ///
    /// [`BspError::Config`] when `workers` is out of range or any entry
    /// names a worker `>= workers` (the assignment would route messages to
    /// a worker that does not exist).
    pub fn from_assignment(assignment: Vec<u16>, workers: usize) -> Result<Self, BspError> {
        check_workers(workers)?;
        if let Some((v, &w)) = assignment
            .iter()
            .enumerate()
            .find(|&(_, &w)| w as usize >= workers)
        {
            return Err(BspError::Config {
                detail: format!(
                    "assignment maps vertex index {v} to worker {w}, but only \
                     {workers} worker(s) exist"
                ),
            });
        }
        let mut counts = vec![0u32; workers];
        for &w in &assignment {
            counts[w as usize] += 1;
        }
        Ok(PartitionMap {
            assignment,
            workers,
            counts,
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of assigned vertices (the graph's vertex count).
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the map covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The worker owning internal vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: VIdx) -> usize {
        self.assignment[v.idx()] as usize
    }

    /// Number of vertices owned by `worker`.
    #[inline]
    pub fn owned_count(&self, worker: usize) -> usize {
        self.counts.get(worker).map_or(0, |&c| c as usize)
    }

    /// The internal vertex indices owned by `worker`, in index order.
    pub fn owned_by(&self, worker: usize) -> Vec<VIdx> {
        let mut owned = Vec::with_capacity(self.owned_count(worker));
        owned.extend(
            self.assignment
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w as usize == worker)
                .map(|(i, _)| VIdx(i as u32)),
        );
        owned
    }

    /// Vertex counts per worker (for balance diagnostics).
    pub fn load(&self) -> Vec<usize> {
        self.counts.iter().map(|&c| c as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::time::Interval;

    fn line_graph(n: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            b.add_vertex(VertexId(i), Interval::new(0, 10)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn assignment_is_stable_and_total() {
        let g = line_graph(100);
        let p = PartitionMap::hash(&g, 4).unwrap();
        assert_eq!(p.workers(), 4);
        assert_eq!(p.len(), 100);
        for v in g.vertex_indices() {
            let w = p.worker_of(v);
            assert!(w < 4);
            // Matches the direct hash of the external id.
            assert_eq!(w, hash_partition(g.vertex(v).vid, 4));
        }
        // Every vertex appears in exactly one ownership list.
        let total: usize = (0..4).map(|w| p.owned_by(w).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn single_worker_owns_everything() {
        let g = line_graph(10);
        let p = PartitionMap::hash(&g, 1).unwrap();
        assert_eq!(p.owned_by(0).len(), 10);
    }

    #[test]
    fn hash_spreads_reasonably() {
        let g = line_graph(10_000);
        let p = PartitionMap::hash(&g, 8).unwrap();
        let load = p.load();
        let expected = 10_000 / 8;
        for (w, &l) in load.iter().enumerate() {
            assert!(
                (l as i64 - expected as i64).unsigned_abs() < expected as u64 / 2,
                "worker {w} has pathological load {l}"
            );
        }
    }

    #[test]
    fn worker_count_boundaries_are_typed_errors() {
        let g = line_graph(4);
        // Valid: 1, 2, and the u16::MAX ceiling itself.
        for workers in [1usize, 2, u16::MAX as usize - 1, u16::MAX as usize] {
            let p = PartitionMap::hash(&g, workers).unwrap();
            assert_eq!(p.workers(), workers);
        }
        // Invalid: zero and one past the ceiling — typed errors, no panic.
        for workers in [0usize, u16::MAX as usize + 1] {
            let e = PartitionMap::hash(&g, workers).unwrap_err();
            assert!(matches!(e, BspError::Config { .. }), "got {e:?}");
            assert!(!e.is_recoverable());
            assert!(e.to_string().contains("worker"));
        }
    }

    #[test]
    fn from_assignment_matches_hash_and_validates() {
        let g = line_graph(50);
        let hashed = PartitionMap::hash(&g, 3).unwrap();
        let explicit: Vec<u16> = g
            .vertex_indices()
            .map(|v| hashed.worker_of(v) as u16)
            .collect();
        let rebuilt = PartitionMap::from_assignment(explicit, 3).unwrap();
        assert_eq!(rebuilt.load(), hashed.load());
        for v in g.vertex_indices() {
            assert_eq!(rebuilt.worker_of(v), hashed.worker_of(v));
        }
        // Out-of-range worker index is a typed error naming the vertex.
        let e = PartitionMap::from_assignment(vec![0, 1, 3], 3).unwrap_err();
        assert!(matches!(e, BspError::Config { .. }), "got {e:?}");
        assert!(e.to_string().contains('3'));
        // Worker-count bounds apply here too.
        assert!(PartitionMap::from_assignment(vec![], 0).is_err());
        assert!(PartitionMap::from_assignment(vec![], u16::MAX as usize + 1).is_err());
    }

    #[test]
    fn splitmix_distinguishes_consecutive_keys() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xff, b & 0xff, "low bits should differ for 1 vs 2");
    }
}
