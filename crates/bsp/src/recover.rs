//! Checkpoint/rollback recovery driver for the BSP engine.
//!
//! [`run_bsp_recoverable`] wraps the plain superstep loop of
//! [`crate::engine::run_bsp`] with fault tolerance: it captures a
//! [`Checkpoint`] of the complete run state (worker [`Snapshot`] blobs,
//! in-flight inboxes, aggregator globals, metrics) every
//! [`RecoveryConfig::checkpoint_interval`] supersteps, and on a
//! *recoverable* failure ([`BspError::is_recoverable`]: poisoned workers,
//! wire corruption) rolls the run back to the latest checkpoint and
//! replays. Replays are bit-deterministic — the fault-matrix tests pin
//! that a recovered run's result digest is identical to the fault-free
//! digest — because everything the computation can observe is inside the
//! checkpoint, and everything outside it (the fault injector's
//! fired-state, the recovery counters) is invisible to the computation.
//!
//! The retry budget is bounded: after [`RecoveryConfig::max_attempts`]
//! rollbacks the driver gives up with [`BspError::RecoveryExhausted`],
//! carrying the complete fault history — a persistent fault (same failure
//! on every replay) must terminate with a diagnosis, not loop forever or
//! return a wrong answer. Non-recoverable errors (configuration mismatch,
//! non-convergence, checkpoint I/O) propagate immediately.

use crate::engine::{BspConfig, ComputePool, MasterHook, RunState, WorkerLogic};
use crate::error::BspError;
use crate::fault::FaultInjector;
use crate::metrics::{now, RunMetrics};
use crate::partition::PartitionMap;
use crate::snapshot::{Checkpoint, CheckpointStorage, CheckpointStore, Snapshot};
use crate::trace::TraceEvent;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the recovery driver, orthogonal to [`BspConfig`].
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Take a checkpoint after every this-many completed supersteps (a
    /// checkpoint at superstep 0 — before the first — is always taken, so
    /// the run can roll back to the beginning). Must be at least 1.
    pub checkpoint_interval: u64,
    /// How many rollbacks the driver performs before giving up with
    /// [`BspError::RecoveryExhausted`].
    pub max_attempts: u64,
    /// Sleep inserted before each replay, doubling per consecutive
    /// rollback (transient environmental faults often need time to clear).
    /// [`Duration::ZERO`] — the default, and what every test uses — never
    /// sleeps and never reads the clock.
    pub backoff: Duration,
    /// Where checkpoint payloads live.
    pub storage: CheckpointStorage,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: 8,
            max_attempts: 3,
            backoff: Duration::ZERO,
            storage: CheckpointStorage::Memory,
        }
    }
}

impl RecoveryConfig {
    /// An in-memory config with the given checkpoint interval.
    #[must_use]
    pub fn every(checkpoint_interval: u64) -> Self {
        RecoveryConfig {
            checkpoint_interval,
            ..Default::default()
        }
    }
}

/// Runs `workers` to convergence like [`crate::engine::run_bsp`], but
/// survives recoverable faults by rolling back to the latest checkpoint
/// and replaying.
///
/// The happy path is identical to the plain driver apart from checkpoint
/// capture: same superstep loop, same convergence rule, same metrics —
/// plus [`crate::metrics::RecoveryMetrics`] accounting for checkpoints
/// taken/bytes, rollbacks, and replayed supersteps (which never enter
/// result digests, like the other environment-sensitive metrics).
///
/// # Errors
///
/// Non-recoverable failures ([`BspError::WorkerMismatch`],
/// [`BspError::SuperstepLimit`], [`BspError::BudgetExceeded`],
/// [`BspError::Checkpoint`]) propagate immediately. Recoverable faults trigger rollback; once
/// `recovery.max_attempts` rollbacks are spent, the driver returns
/// [`BspError::RecoveryExhausted`] with the full fault history.
pub fn run_bsp_recoverable<L: WorkerLogic + Snapshot>(
    config: &BspConfig,
    recovery: &RecoveryConfig,
    workers: Vec<L>,
    partition: Arc<PartitionMap>,
    mut master: Option<MasterHook<'_>>,
) -> Result<(Vec<L>, RunMetrics), BspError> {
    if recovery.checkpoint_interval == 0 {
        return Err(BspError::Checkpoint {
            detail: "checkpoint_interval must be at least 1".into(),
        });
    }
    let mut injector = FaultInjector::new(config.fault_plan.clone());
    let mut state = RunState::new(workers, &partition)?;
    let mut store = CheckpointStore::new(recovery.storage.clone());
    let mut history: Vec<BspError> = Vec::new();
    let mut rollbacks = 0u64;
    let run_start = now();

    let tracing = config.trace.is_enabled();
    // Always checkpoint the virgin state: the very first superstep may be
    // the one that faults.
    save_checkpoint(&mut store, &mut state, tracing)?;
    let mut since_checkpoint = 0u64;

    // The compute pool lives for the whole recovered run — across
    // checkpoints, rollbacks and retries — so recovery pays thread
    // creation once, like the straight-through driver.
    let n = state.workers.len();
    std::thread::scope(|scope| {
        let mut pool = ComputePool::start(scope, n);
        while !state.halted {
            if state.step >= config.max_supersteps {
                return Err(BspError::SuperstepLimit {
                    limit: config.max_supersteps,
                });
            }
            if let Some(budget) = config.superstep_budget {
                if state.step >= budget {
                    return Err(BspError::BudgetExceeded { budget });
                }
            }
            match state.superstep(config, &mut master, &mut injector, &mut pool) {
                Ok(()) => {
                    since_checkpoint += 1;
                    if !state.halted && since_checkpoint >= recovery.checkpoint_interval {
                        save_checkpoint(&mut store, &mut state, tracing)?;
                        since_checkpoint = 0;
                    }
                }
                Err(err) if err.is_recoverable() => {
                    history.push(err.clone());
                    if rollbacks >= recovery.max_attempts {
                        return Err(BspError::RecoveryExhausted {
                            attempts: history.len() as u64,
                            last: Box::new(err),
                            history,
                        });
                    }
                    if !recovery.backoff.is_zero() {
                        // Exponential: 1x, 2x, 4x, ... per consecutive rollback.
                        let factor = 1u32 << rollbacks.min(16) as u32;
                        std::thread::sleep(recovery.backoff.saturating_mul(factor));
                    }
                    let ckpt: Checkpoint = store.load()?.ok_or_else(|| BspError::Checkpoint {
                        detail: "no checkpoint available for rollback".into(),
                    })?;
                    // Supersteps to re-execute: the completed ones since the
                    // checkpoint, plus the faulted superstep's retry.
                    let lost = state.step.saturating_sub(ckpt.step) + 1;
                    let from_step = state.step;
                    state.rollback(&ckpt)?;
                    if tracing {
                        state.metrics.trace.push(TraceEvent::Rollback {
                            from_step,
                            to_step: ckpt.step,
                        });
                    }
                    state.metrics.recovery.rollbacks += 1;
                    state.metrics.recovery.supersteps_replayed += lost;
                    rollbacks += 1;
                    since_checkpoint = 0;
                    injector.next_attempt();
                }
                Err(err) => return Err(err),
            }
        }
        Ok(())
    })?;
    state.metrics.makespan = run_start.elapsed();
    Ok((state.workers, state.metrics))
}

/// Captures and persists the current boundary, bumping the recovery
/// counters (and, when tracing, marking the trace stream).
fn save_checkpoint<L: WorkerLogic + Snapshot>(
    store: &mut CheckpointStore,
    state: &mut RunState<L>,
    tracing: bool,
) -> Result<(), BspError> {
    let ckpt = state.take_checkpoint();
    let bytes = store.save(ckpt)?;
    state.metrics.recovery.checkpoints_taken += 1;
    state.metrics.recovery.checkpoint_bytes += bytes;
    if tracing {
        state.metrics.trace.push(TraceEvent::Checkpoint {
            step: state.step,
            bytes,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Aggregators, MasterDecision};
    use crate::engine::{Inbox, Outbox};
    use crate::fault::{Fault, FaultKind, FaultMode, FaultPlan};
    use crate::metrics::UserCounters;
    use crate::trace::TraceSink;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::{EdgeId, TemporalGraph, VIdx, VertexId};
    use graphite_tgraph::time::Interval;

    fn ring(n: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            b.add_vertex(VertexId(i), Interval::new(0, 10)).unwrap();
        }
        for i in 0..n {
            b.add_edge(
                EdgeId(i),
                VertexId(i),
                VertexId((i + 1) % n),
                Interval::new(0, 10),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    /// Token-passing logic with snapshotable state: counts every token
    /// observation per worker, so a replayed superstep that double-counted
    /// would corrupt `total`.
    #[derive(Debug)]
    struct CountingToken {
        graph: Arc<TemporalGraph>,
        owned: Vec<VIdx>,
        hops: u64,
        total: u64,
    }

    impl WorkerLogic for CountingToken {
        type Msg = u64;
        fn superstep(
            &mut self,
            step: u64,
            inbox: &Inbox<u64>,
            outbox: &mut Outbox<u64>,
            _globals: &Aggregators,
            _partial: &mut Aggregators,
            _counters: &mut UserCounters,
            _sink: &mut TraceSink,
        ) {
            if step == 1 {
                for &v in &self.owned {
                    if self.graph.vertex(v).vid == VertexId(0) {
                        let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
                        outbox.send(next, 1);
                    }
                }
                return;
            }
            for (v, msgs) in inbox.iter() {
                for &m in msgs {
                    self.total += m;
                    if m < self.hops {
                        let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
                        outbox.send(next, m + 1);
                    }
                }
            }
        }
    }

    impl Snapshot for CountingToken {
        fn checkpoint(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.total.to_le_bytes());
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| "counting-token blob")?;
            self.total = u64::from_le_bytes(arr);
            Ok(())
        }
    }

    fn logics(
        graph: &Arc<TemporalGraph>,
        partition: &Arc<PartitionMap>,
        hops: u64,
    ) -> Vec<CountingToken> {
        (0..partition.workers())
            .map(|w| CountingToken {
                graph: Arc::clone(graph),
                owned: partition.owned_by(w),
                hops,
                total: 0,
            })
            .collect()
    }

    fn totals(workers: &[CountingToken]) -> u64 {
        workers.iter().map(|w| w.total).sum()
    }

    #[test]
    fn fault_free_recoverable_run_matches_plain_run() {
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 3).expect("partition"));
        let (plain, pm) = crate::engine::run_bsp(
            &BspConfig::default(),
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        let (rec, rm) = run_bsp_recoverable(
            &BspConfig::default(),
            &RecoveryConfig::every(2),
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        assert_eq!(totals(&plain), totals(&rec));
        assert_eq!(pm.supersteps, rm.supersteps);
        assert_eq!(pm.counters, rm.counters);
        assert!(rm.recovery.checkpoints_taken > 1);
        assert_eq!(rm.recovery.rollbacks, 0);
        assert_eq!(rm.recovery.supersteps_replayed, 0);
        assert_eq!(
            pm.recovery.checkpoints_taken, 0,
            "plain run never checkpoints"
        );
    }

    #[test]
    fn transient_panic_is_rolled_back_and_replayed() {
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 3).expect("partition"));
        let (plain, pm) = crate::engine::run_bsp(
            &BspConfig::default(),
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        let config = BspConfig {
            fault_plan: Some(FaultPlan::panic_at(1, 5)),
            ..Default::default()
        };
        let (rec, rm) = run_bsp_recoverable(
            &config,
            &RecoveryConfig::every(2),
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        assert_eq!(totals(&plain), totals(&rec), "recovered result must match");
        assert_eq!(
            pm.supersteps, rm.supersteps,
            "replay is invisible in supersteps"
        );
        assert_eq!(pm.counters, rm.counters, "replay is invisible in counters");
        assert_eq!(rm.recovery.rollbacks, 1);
        assert!(rm.recovery.supersteps_replayed >= 1);
    }

    #[test]
    fn persistent_panic_exhausts_the_retry_budget() {
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let config = BspConfig {
            fault_plan: Some(FaultPlan::panic_at(0, 3).persistent()),
            ..Default::default()
        };
        let recovery = RecoveryConfig {
            checkpoint_interval: 2,
            max_attempts: 3,
            ..Default::default()
        };
        let err = run_bsp_recoverable(
            &config,
            &recovery,
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap_err();
        let BspError::RecoveryExhausted {
            attempts,
            last,
            history,
        } = err
        else {
            panic!("expected RecoveryExhausted, got something else");
        };
        assert_eq!(attempts, 4, "initial attempt + 3 replays");
        assert_eq!(history.len(), 4);
        assert!(
            last.is_recoverable(),
            "the final fault itself was recoverable"
        );
        for h in &history {
            assert!(matches!(h, BspError::WorkerPanicked { step: 3, .. }));
        }
    }

    #[test]
    fn multiple_transient_faults_across_attempts_recover() {
        let graph = Arc::new(ring(12));
        let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
        let (plain, _) = crate::engine::run_bsp(
            &BspConfig::default(),
            logics(&graph, &partition, 12),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        // Two separate transient panics: the replay of the first runs into
        // the second, needing a second rollback.
        let plan = FaultPlan::panic_at(0, 4).and(Fault {
            worker: 2,
            step: 7,
            kind: FaultKind::WorkerPanic,
            mode: FaultMode::Transient,
        });
        let config = BspConfig {
            fault_plan: Some(plan),
            ..Default::default()
        };
        let (rec, rm) = run_bsp_recoverable(
            &config,
            &RecoveryConfig::every(3),
            logics(&graph, &partition, 12),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        assert_eq!(totals(&plain), totals(&rec));
        assert_eq!(rm.recovery.rollbacks, 2);
    }

    #[test]
    fn wire_corruption_recovers_on_disk_store() {
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
        let (plain, _) = crate::engine::run_bsp(
            &BspConfig::default(),
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        let dir = std::env::temp_dir().join("graphite_recover_disk_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Corrupt batches bound for every worker at step 3: whichever
        // worker receives remote traffic then will trip the checksum.
        let mut plan = FaultPlan::default();
        for w in 0..4 {
            plan = plan.and(Fault {
                worker: w,
                step: 3,
                kind: FaultKind::WireCorruption,
                mode: FaultMode::Transient,
            });
        }
        let config = BspConfig {
            fault_plan: Some(plan),
            ..Default::default()
        };
        let recovery = RecoveryConfig {
            checkpoint_interval: 2,
            storage: CheckpointStorage::Disk(dir.clone()),
            ..Default::default()
        };
        let (rec, rm) = run_bsp_recoverable(
            &config,
            &recovery,
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            None,
        )
        .unwrap();
        assert_eq!(totals(&plain), totals(&rec));
        assert!(rm.recovery.rollbacks >= 1, "corruption must have fired");
        assert!(rm.recovery.checkpoint_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_checkpoint_interval_is_rejected() {
        let graph = Arc::new(ring(4));
        let partition = Arc::new(PartitionMap::hash(&graph, 1).expect("partition"));
        let recovery = RecoveryConfig {
            checkpoint_interval: 0,
            ..Default::default()
        };
        let err = run_bsp_recoverable(
            &BspConfig::default(),
            &recovery,
            logics(&graph, &partition, 4),
            partition,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, BspError::Checkpoint { .. }));
    }

    #[test]
    fn master_hook_replays_consistently() {
        // A master that records every step it sees: after a rollback it is
        // re-consulted for the replayed steps, and the final sequence it
        // observed must end in the same barrier decision sequence as a
        // fault-free run (the hook itself is outside the checkpoint, so it
        // sees replays — what matters is the run result stays identical).
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let config = BspConfig {
            fault_plan: Some(FaultPlan::panic_at(1, 4)),
            ..Default::default()
        };
        let mut steps_seen = Vec::new();
        let mut hook = |step: u64, _: &Aggregators| {
            steps_seen.push(step);
            MasterDecision::Continue
        };
        let (rec, rm) = run_bsp_recoverable(
            &config,
            &RecoveryConfig::every(2),
            logics(&graph, &partition, 8),
            Arc::clone(&partition),
            Some(&mut hook),
        )
        .unwrap();
        assert_eq!(rm.recovery.rollbacks, 1);
        // 8 hops => 9 supersteps; the replayed steps appear twice.
        assert_eq!(rm.supersteps, 9);
        assert_eq!(totals(&rec), (1..=8).sum::<u64>());
        assert!(steps_seen.len() as u64 > rm.supersteps);
        assert_eq!(steps_seen.last(), Some(&9));
    }
}
