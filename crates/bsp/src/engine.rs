//! The bulk-synchronous-parallel superstep driver.
//!
//! This is the substrate that replaces Apache Giraph in our reproduction: a
//! shared-nothing engine where each *worker* owns a disjoint vertex
//! partition, supersteps alternate a parallel compute phase (one OS thread
//! per worker) with a message-exchange phase at a global barrier, and every
//! message that crosses a worker boundary is serialized through the
//! [`crate::codec::Wire`] format and charged to the run's byte counters.
//!
//! Both the interval-centric engine (`graphite-icm`) and the four baseline
//! platforms (`graphite-baselines`) run on this driver, which mirrors the
//! paper's setup where all five platforms share Giraph — the primitives are
//! the distinction, not the runtime (Sec. VII-A3).
//!
//! In debug builds every run is verified against the barrier-protocol state
//! machine in [`crate::check`]; [`BspConfig::perturb_schedule`] additionally
//! lets the schedule-perturbation race harness permute the scheduling
//! freedoms the BSP contract leaves open (thread join order, batch delivery
//! order) to detect accidental order dependence.
//!
//! The run loop itself lives in `RunState`, one resumable superstep at a
//! time: [`run_bsp`] drives it straight through, while the recovery driver
//! ([`crate::recover::run_bsp_recoverable`]) interleaves checkpoints and
//! rolls it back to the last [`crate::snapshot::Checkpoint`] after a
//! recoverable fault. Deterministic fault injection
//! ([`BspConfig::fault_plan`]) is plain configuration evaluated on every
//! build — never `cfg`-gated — so recovery is exercised against exactly
//! the code that ships.

use crate::aggregate::{Aggregators, MasterDecision};
use crate::check::RunChecker;
use crate::codec::{decode_batch, encode_batch, get_varint, put_varint, Wire, BATCH_TRAILER};
use crate::error::BspError;
use crate::fault::{FaultInjector, FaultPlan};
use crate::metrics::{now, RunMetrics, StepTiming, UserCounters};
use crate::partition::PartitionMap;
use crate::snapshot::{Checkpoint, Snapshot};
use crate::trace::{duration_ns, TraceConfig, TraceEvent, TraceSink};
use graphite_tgraph::graph::VIdx;
use graphite_tgraph::rng::SplitMix64;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct BspConfig {
    /// Hard cap on supersteps: exhausting it without halting is surfaced
    /// as [`BspError::SuperstepLimit`] (non-convergence is an error, not a
    /// silently truncated result).
    pub max_supersteps: u64,
    /// Optional per-query execution budget, enforced cooperatively at the
    /// BSP barrier exactly like `max_supersteps` but surfaced as the
    /// distinct [`BspError::BudgetExceeded`]. The serving layer derives
    /// this from its admission cost model (DESIGN.md §15) so a runaway
    /// query releases its executor slot deterministically — no wall
    /// clock is involved. `None` (the default) enforces nothing beyond
    /// `max_supersteps`.
    pub superstep_budget: Option<u64>,
    /// Record per-superstep timing splits in the metrics.
    pub keep_per_step_timing: bool,
    /// When `Some(seed)`, deterministically permutes — per superstep — the
    /// scheduling freedoms the BSP contract leaves open: worker thread join
    /// order and remote-batch delivery order. A correct program's results
    /// must be bit-identical under every seed; the schedule-perturbation
    /// race harness asserts exactly that. `None` (the default) is natural
    /// worker-index order.
    ///
    /// Note that per-sender FIFO order is preserved in every schedule (as
    /// on a real network transport); only cross-sender interleaving moves.
    pub perturb_schedule: Option<u64>,
    /// Deterministic fault schedule (worker panics, wire bit-flips) to
    /// inject while running. `None` (the default) injects nothing. This is
    /// runtime configuration, not a test-build feature: the hooks execute
    /// in release builds so `run_bsp_recoverable` is validated against
    /// production code paths.
    pub fault_plan: Option<FaultPlan>,
    /// Structured-trace recording level (Off / Counters / Full; see
    /// [`crate::trace`]). Off by default; results and deterministic
    /// counters are bit-identical at every level.
    pub trace: TraceConfig,
}

impl BspConfig {
    /// The default superstep cap.
    pub const DEFAULT_MAX_SUPERSTEPS: u64 = 100_000;
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            max_supersteps: Self::DEFAULT_MAX_SUPERSTEPS,
            superstep_budget: None,
            keep_per_step_timing: false,
            perturb_schedule: None,
            fault_plan: None,
            trace: TraceConfig::default(),
        }
    }
}

/// The messages delivered to one worker at the start of a superstep,
/// grouped per destination vertex and iterable in vertex order (the engine
/// is deterministic end to end for a fixed worker count).
///
/// Flat storage, reused across supersteps: arrivals accumulate in a
/// staging vector during the exchange phase, then `Inbox::seal` groups
/// them into one contiguous message vector plus a per-vertex range index.
/// Clearing retains every allocation, so a steady workload delivers all
/// its messages through capacity acquired in the first supersteps.
pub struct Inbox<M> {
    /// Arrivals staged during the exchange, tagged with their arrival
    /// sequence number so sealing can keep per-vertex delivery order.
    staging: Vec<(VIdx, u32, M)>,
    /// Sealed messages, contiguous per destination vertex.
    msgs: Vec<M>,
    /// `(vertex, start, end)` ranges into `msgs`, ascending vertex order.
    index: Vec<(VIdx, usize, usize)>,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Inbox {
            staging: Vec::new(),
            msgs: Vec::new(),
            index: Vec::new(),
        }
    }
}

impl<M> Inbox<M> {
    /// `true` when no vertex received anything.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of vertices that received messages.
    pub fn active_vertices(&self) -> usize {
        self.index.len()
    }

    /// Total number of messages.
    pub fn total_messages(&self) -> usize {
        self.msgs.len()
    }

    /// Iterates `(vertex, messages)` in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VIdx, &[M])> + '_ {
        self.index.iter().map(|&(v, s, e)| (v, &self.msgs[s..e]))
    }

    /// The messages for one vertex, if any.
    pub fn messages_for(&self, v: VIdx) -> Option<&[M]> {
        let i = self
            .index
            .binary_search_by_key(&v, |&(vertex, _, _)| vertex)
            .ok()?;
        let (_, s, e) = self.index[i];
        Some(&self.msgs[s..e])
    }

    fn push(&mut self, v: VIdx, m: M) {
        let seq = self.staging.len() as u32;
        self.staging.push((v, seq, m));
    }

    /// Groups the staged arrivals per vertex. The `(vertex, sequence)` key
    /// is unique, so the in-place unstable sort is deterministic and
    /// reproduces exactly the per-vertex delivery order the router chose —
    /// the same grouping the previous tree-based inbox produced, without
    /// its per-vertex node allocations.
    fn seal(&mut self) {
        // Arrivals are frequently already vertex-grouped (single-source
        // routing, low fan-in steps); skipping the sort then saves the
        // dominant cost of sealing.
        let sorted = self
            .staging
            .windows(2)
            .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1));
        if !sorted {
            self.staging.sort_unstable_by_key(|&(v, seq, _)| (v, seq));
        }
        for (v, _, m) in self.staging.drain(..) {
            let start = self.msgs.len();
            match self.index.last_mut() {
                Some((last, _, end)) if *last == v => *end += 1,
                _ => self.index.push((v, start, start + 1)),
            }
            self.msgs.push(m);
        }
    }

    fn clear(&mut self) {
        self.staging.clear();
        self.msgs.clear();
        self.index.clear();
    }

    /// Summed capacity of the retained buffers, in elements (allocation
    /// probe for the routing-growth metric).
    fn capacity_units(&self) -> usize {
        self.staging.capacity() + self.msgs.capacity() + self.index.capacity()
    }
}

impl<M: Wire> Inbox<M> {
    /// Appends this sealed inbox's in-flight messages to `buf` in delivery
    /// order (checkpoint capture happens at barriers, where staging is
    /// empty and the inbox is sealed).
    pub(crate) fn checkpoint(&self, buf: &mut Vec<u8>) {
        put_varint(self.msgs.len() as u64, buf);
        for &(v, s, e) in &self.index {
            for m in &self.msgs[s..e] {
                put_varint(u64::from(v.0), buf);
                m.encode(buf);
            }
        }
    }

    /// Replaces this inbox's contents with the messages encoded by
    /// [`Inbox::checkpoint`], re-sealed. Re-pushing in the recorded order
    /// reassigns ascending sequence numbers, so sealing reproduces the
    /// exact per-vertex delivery order of the captured barrier.
    pub(crate) fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        self.clear();
        let mut cur = bytes;
        let count = get_varint(&mut cur).ok_or("inbox message count")?;
        for _ in 0..count {
            let raw = get_varint(&mut cur).ok_or("inbox vertex id")?;
            let v = u32::try_from(raw).map_err(|_| "inbox vertex id exceeds u32")?;
            let m = M::decode(&mut cur).ok_or("inbox message payload")?;
            self.push(VIdx(v), m);
        }
        if !cur.is_empty() {
            return Err("trailing bytes in inbox checkpoint");
        }
        self.seal();
        Ok(())
    }
}

/// Where a worker's superstep deposits outgoing messages. Routing to the
/// owning worker happens immediately; encoding happens at the barrier for
/// remote destinations. One outbox per worker lives for the whole run —
/// the exchange phase drains the batches in place, so their capacity (and
/// that of the shared wire buffer) is reused every superstep.
pub struct Outbox<M> {
    partition: Arc<PartitionMap>,
    batches: Vec<Vec<(VIdx, M)>>,
}

impl<M> Outbox<M> {
    fn new(partition: Arc<PartitionMap>) -> Self {
        let workers = partition.workers();
        Outbox {
            partition,
            batches: (0..workers).map(|_| Vec::new()).collect(),
        }
    }

    /// Sends `msg` to vertex `dst` for delivery next superstep.
    #[inline]
    pub fn send(&mut self, dst: VIdx, msg: M) {
        let w = self.partition.worker_of(dst);
        self.batches[w].push((dst, msg));
    }

    /// Messages queued so far.
    pub fn len(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }

    /// `true` when nothing was sent.
    pub fn is_empty(&self) -> bool {
        self.batches.iter().all(Vec::is_empty)
    }

    /// Drops all queued batches, keeping capacity (rollback discards the
    /// faulted superstep's partially-drained outboxes).
    fn clear_batches(&mut self) {
        for b in &mut self.batches {
            b.clear();
        }
    }

    /// Summed capacity of the per-destination batches (allocation probe).
    fn capacity_units(&self) -> usize {
        self.batches.iter().map(Vec::capacity).sum()
    }
}

/// Total element capacity of every reusable routing buffer: all outbox
/// batches, both inbox double-buffers, and the shared wire byte buffer.
/// Nothing on the routing path ever shrinks a retained buffer, so a
/// snapshot pair around one superstep detects any routing allocation.
fn routing_capacity<M>(
    outboxes: &[Outbox<M>],
    front: &[Inbox<M>],
    back: &[Inbox<M>],
    wire_capacity: usize,
) -> usize {
    let batches: usize = outboxes.iter().map(Outbox::capacity_units).sum();
    let inboxes: usize = front.iter().chain(back).map(Inbox::capacity_units).sum();
    batches + inboxes + wire_capacity
}

/// Per-worker state and behaviour. One instance per worker; the engine
/// hands each instance to its thread every superstep.
pub trait WorkerLogic: Send {
    /// Message type exchanged between vertices.
    type Msg: Wire;

    /// Executes one superstep over this worker's partition.
    ///
    /// * `step` — 1-based superstep number;
    /// * `inbox` — messages delivered from the previous superstep (empty at
    ///   superstep 1);
    /// * `outbox` — destination for messages to deliver next superstep;
    /// * `globals` — merged aggregator values from the previous superstep;
    /// * `partial` — this worker's aggregator contributions for this one;
    /// * `counters` — user-logic counters (compute calls etc.);
    /// * `sink` — this worker's trace sink for operator extras (inert
    ///   unless [`BspConfig::trace`] enables tracing).
    #[allow(clippy::too_many_arguments)]
    fn superstep(
        &mut self,
        step: u64,
        inbox: &Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
        globals: &Aggregators,
        partial: &mut Aggregators,
        counters: &mut UserCounters,
        sink: &mut TraceSink,
    );
}

/// The master hook, run at each barrier over the merged aggregators.
pub type MasterHook<'a> = &'a mut dyn FnMut(u64, &Aggregators) -> MasterDecision;

/// Name of the built-in aggregator the engine injects after every
/// superstep: the total number of messages that superstep emitted
/// (readable as `globals.get_sum_u64(MESSAGES_SENT_AGG)`).
pub const MESSAGES_SENT_AGG: &str = "__messages";

/// The identity permutation of `0..n`, or — under schedule perturbation —
/// a permutation drawn deterministically from `(seed, step, salt)`.
/// Public so the race harness can verify the perturbation is non-trivial.
pub fn schedule_order(n: usize, perturb: Option<u64>, step: u64, salt: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if let Some(seed) = perturb {
        let mut rng = SplitMix64::new(seed ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt);
        rng.shuffle(&mut order);
    }
    order
}

/// What one worker's compute phase hands back to the exchange phase (its
/// outbox stays in place in the per-worker outbox pool).
type ComputeSlot = (Aggregators, UserCounters, TraceSink);

/// Per-worker trace snapshot taken during exchange: the worker's counter
/// delta for this step plus the extras its sink accumulated.
type TraceSnap = (UserCounters, Vec<(&'static str, u64)>);

/// Extracts a printable message from a worker thread's panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything one worker's compute phase needs, moved to its pool thread
/// at the start of the phase and moved back (inside [`ComputeDone`]) at
/// the end. Ownership transfer instead of shared borrows is what lets the
/// pool threads outlive a single superstep.
struct ComputeJob<L: WorkerLogic> {
    step: u64,
    worker: usize,
    /// Injected-fault arming for this worker at this step.
    bomb: bool,
    logic: L,
    inbox: Inbox<L::Msg>,
    outbox: Outbox<L::Msg>,
    globals: Aggregators,
    trace: TraceConfig,
}

/// A finished compute phase: the moved-in pieces come home along with the
/// worker's per-step products. `panic` carries the payload message when
/// the logic panicked — the logic itself still comes home (mid-superstep
/// garbage, exactly like the panicked-thread state of a spawn-per-step
/// scheme), so the recovery driver can roll it back and retry.
struct ComputeDone<L: WorkerLogic> {
    logic: L,
    inbox: Inbox<L::Msg>,
    outbox: Outbox<L::Msg>,
    partial: Aggregators,
    counters: UserCounters,
    sink: TraceSink,
    took: Duration,
    panic: Option<String>,
}

/// Runs one worker's compute phase to completion: the single execution
/// path shared by the pool threads and the inline (small-step) path, so
/// fault arming, timing and panic capture are identical wherever a
/// superstep runs.
fn execute_compute<L: WorkerLogic>(mut job: ComputeJob<L>) -> ComputeDone<L> {
    let mut partial = Aggregators::new();
    let mut counters = UserCounters::default();
    let mut sink = TraceSink::new(job.trace);
    let (step, w, bomb) = (job.step, job.worker, job.bomb);
    let t0 = now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        assert!(!bomb, "injected fault: worker {w} at superstep {step}");
        job.logic.superstep(
            step,
            &job.inbox,
            &mut job.outbox,
            &job.globals,
            &mut partial,
            &mut counters,
            &mut sink,
        );
    }));
    let took = t0.elapsed();
    ComputeDone {
        logic: job.logic,
        inbox: job.inbox,
        outbox: job.outbox,
        partial,
        counters,
        sink,
        took,
        panic: outcome.err().map(panic_message),
    }
}

/// A superstep whose total staged work (owned vertices at superstep 1,
/// delivered messages afterwards) is at or below this bound runs its
/// compute phases *inline* on the driver thread instead of fanning out to
/// the pool. At that scale a worker's compute costs a few microseconds —
/// less than a single cross-thread wakeup — so parallelism is pure loss.
/// The measure is a deterministic function of the message flow, never of
/// wall time, so the same run always picks the same path (and results are
/// path-independent anyway: both paths feed identical per-worker products
/// to the same single-threaded exchange).
const INLINE_COMPUTE_WORK: usize = 4096;

/// A resident pool of compute threads, one per worker, living for a whole
/// run. Spawning OS threads per superstep costs tens of microseconds per
/// barrier — comparable to an entire superstep's compute on bench-sized
/// graphs — so the pool amortizes thread creation across the run and
/// synchronizes each phase with two channel hops instead of spawn + join.
/// Threads spawn lazily at the first dispatched superstep: a run whose
/// supersteps all stay under [`INLINE_COMPUTE_WORK`] never creates them.
///
/// Determinism is unaffected: the same per-worker products are handed to
/// the same single-threaded exchange phase, and worker panics are caught
/// and reported through the same [`BspError::WorkerPanicked`] path
/// (message text included) as thread-per-step joins produced.
pub(crate) struct ComputePool<'scope, 'env, L: WorkerLogic> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    n: usize,
    jobs: Vec<mpsc::Sender<ComputeJob<L>>>,
    dones: Vec<mpsc::Receiver<ComputeDone<L>>>,
}

impl<'scope, 'env, L: WorkerLogic + 'scope> ComputePool<'scope, 'env, L> {
    /// A pool of `n` threads attached to `scope`. Threads are not created
    /// until the first [`dispatch`](Self::dispatch); once spawned they exit
    /// when the pool (and with it the job senders) drops, and the scope
    /// then joins them.
    pub(crate) fn start(scope: &'scope std::thread::Scope<'scope, 'env>, n: usize) -> Self {
        ComputePool {
            scope,
            n,
            jobs: Vec::new(),
            dones: Vec::new(),
        }
    }

    fn ensure_spawned(&mut self) {
        if self.jobs.len() == self.n {
            return;
        }
        for _ in 0..self.n {
            let (jtx, jrx) = mpsc::channel::<ComputeJob<L>>();
            let (dtx, drx) = mpsc::channel::<ComputeDone<L>>();
            self.scope.spawn(move || {
                while let Ok(job) = jrx.recv() {
                    if dtx.send(execute_compute(job)).is_err() {
                        break; // driver gone; shut down
                    }
                }
            });
            self.jobs.push(jtx);
            self.dones.push(drx);
        }
    }

    /// Hands a worker's compute phase to its pool thread.
    fn dispatch(&mut self, job: ComputeJob<L>) -> Result<(), BspError> {
        self.ensure_spawned();
        let (step, w) = (job.step, job.worker);
        self.jobs[w]
            .send(job)
            .map_err(|_| Self::thread_lost(step, w))
    }

    /// Blocks until worker `w`'s compute phase finishes.
    fn collect(&mut self, step: u64, w: usize) -> Result<ComputeDone<L>, BspError> {
        self.dones[w].recv().map_err(|_| Self::thread_lost(step, w))
    }

    /// A pool thread disappeared without handing its pieces back. Panics
    /// inside worker logic are caught and reported via [`ComputeDone`],
    /// so this is only reachable through catastrophic thread death; it is
    /// surfaced as the same error the old spawn-per-step join produced.
    fn thread_lost(step: u64, w: usize) -> BspError {
        BspError::WorkerPanicked {
            step,
            workers: vec![(w, "compute pool thread terminated".to_string())],
        }
    }
}

/// The complete state of a run between superstep boundaries. [`run_bsp`]
/// drives it to convergence in one sweep; the recovery driver additionally
/// captures it into [`Checkpoint`]s and rolls it back after faults.
pub(crate) struct RunState<L: WorkerLogic> {
    pub(crate) workers: Vec<L>,
    inboxes: Vec<Inbox<L::Msg>>,
    spare: Vec<Inbox<L::Msg>>,
    outboxes: Vec<Outbox<L::Msg>>,
    wire: Vec<u8>,
    globals: Aggregators,
    checker: RunChecker,
    pub(crate) metrics: RunMetrics,
    /// Last *completed* superstep (0 before the first).
    pub(crate) step: u64,
    /// Set when a barrier finalized the halt vote.
    pub(crate) halted: bool,
    /// Total vertices across all partitions — the superstep-1 work bound
    /// for the inline-vs-pool compute decision (every owned vertex
    /// computes at initialization).
    total_vertices: usize,
}

impl<L: WorkerLogic> RunState<L> {
    pub(crate) fn new(workers: Vec<L>, partition: &Arc<PartitionMap>) -> Result<Self, BspError> {
        if workers.len() != partition.workers() {
            return Err(BspError::WorkerMismatch {
                logics: workers.len(),
                partitions: partition.workers(),
            });
        }
        let n = workers.len();
        Ok(RunState {
            workers,
            inboxes: (0..n).map(|_| Inbox::default()).collect(),
            spare: (0..n).map(|_| Inbox::default()).collect(),
            outboxes: (0..n).map(|_| Outbox::new(Arc::clone(partition))).collect(),
            wire: Vec::new(),
            globals: Aggregators::new(),
            checker: RunChecker::new(),
            metrics: RunMetrics::default(),
            step: 0,
            halted: false,
            total_vertices: partition.len(),
        })
    }

    /// Executes superstep `self.step + 1`: parallel compute, single-threaded
    /// exchange, barrier. On success `self.step` advances and `self.halted`
    /// reflects the halt vote; on error the state is mid-superstep garbage
    /// and must be either dropped or rolled back before reuse.
    pub(crate) fn superstep<'scope>(
        &mut self,
        config: &BspConfig,
        master: &mut Option<MasterHook<'_>>,
        injector: &mut FaultInjector,
        pool: &mut ComputePool<'scope, '_, L>,
    ) -> Result<(), BspError>
    where
        L: 'scope,
    {
        let n = self.workers.len();
        let step = self.step + 1;
        self.checker.begin_compute(step);
        let step_start = now();
        let cap_before = routing_capacity(
            &self.outboxes,
            &self.inboxes,
            &self.spare,
            self.wire.capacity(),
        );
        let join_order = schedule_order(n, config.perturb_schedule, step, 0x4a4f_494e);
        let route_order = schedule_order(n, config.perturb_schedule, step, 0x524f_5554);
        // Injected panics are armed up front on the driver thread, so the
        // injector needs no synchronization with the worker threads.
        let bombs: Vec<bool> = (0..n).map(|w| injector.arm_panic(w, step)).collect();
        let tracing = config.trace.is_enabled();
        let trace_full = config.trace.is_full();
        let trace_cfg = config.trace;
        // Inbox population must be sampled before compute consumes the
        // inboxes; gated on tracing so Off mode allocates nothing here.
        let inbox_stats: Vec<(u64, u64)> = if tracing {
            self.inboxes
                .iter()
                .map(|ib| (ib.active_vertices() as u64, ib.total_messages() as u64))
                .collect()
        } else {
            Vec::new()
        };

        // --- Compute phase: inline for small steps, pooled for large. ---
        // The workers, inboxes and outboxes move to the compute phases and
        // come home with the per-step products. When the staged work is at
        // or below INLINE_COMPUTE_WORK the phases run sequentially right
        // here (a cross-thread wakeup costs more than the whole phase);
        // otherwise one resident pool thread per worker runs them and the
        // driver collects in (possibly perturbed) order. Every outstanding
        // phase is collected — even after failures — so a panicking worker
        // cannot leave its state stranded, and *every* poisoned worker is
        // reported, not just the first.
        let work = if step == 1 {
            self.total_vertices
        } else {
            self.inboxes.iter().map(Inbox::total_messages).sum()
        };
        let inline = n <= 1 || work <= INLINE_COMPUTE_WORK;
        let mut slots: Vec<Option<ComputeSlot>> = (0..n).map(|_| None).collect();
        let mut compute_max = Duration::ZERO;
        let mut tooks: Vec<Duration> = if trace_full {
            vec![Duration::ZERO; n]
        } else {
            Vec::new()
        };
        let mut panicked: Vec<(usize, String)> = Vec::new();
        let workers = std::mem::take(&mut self.workers);
        let inboxes = std::mem::take(&mut self.inboxes);
        let outboxes = std::mem::take(&mut self.outboxes);
        let mut returned: Vec<Option<ComputeDone<L>>> = (0..n).map(|_| None).collect();
        let jobs = workers
            .into_iter()
            .zip(inboxes)
            .zip(outboxes)
            .enumerate()
            .map(|(w, ((logic, inbox), outbox))| ComputeJob {
                step,
                worker: w,
                bomb: bombs[w],
                logic,
                inbox,
                outbox,
                globals: self.globals.clone(),
                trace: trace_cfg,
            });
        if inline {
            for job in jobs {
                let w = job.worker;
                returned[w] = Some(execute_compute(job));
            }
        } else {
            for job in jobs {
                pool.dispatch(job)?;
            }
            for &w in &join_order {
                returned[w] = Some(pool.collect(step, w)?);
            }
        }
        self.workers = Vec::with_capacity(n);
        self.inboxes = Vec::with_capacity(n);
        self.outboxes = Vec::with_capacity(n);
        for (w, done) in returned.into_iter().enumerate() {
            let Some(done) = done else {
                continue; // unreachable: every index was collected above
            };
            self.workers.push(done.logic);
            self.inboxes.push(done.inbox);
            self.outboxes.push(done.outbox);
            match done.panic {
                Some(msg) => panicked.push((w, msg)),
                None => {
                    compute_max = compute_max.max(done.took);
                    if trace_full {
                        tooks[w] = done.took;
                    }
                    slots[w] = Some((done.partial, done.counters, done.sink));
                }
            }
        }
        if !panicked.is_empty() {
            return Err(BspError::WorkerPanicked {
                step,
                workers: panicked,
            });
        }
        let after_compute = now();
        self.checker.begin_exchange();

        // --- Exchange phase: route, serialize remote batches, regroup. ---
        // Single-threaded by design: all cross-worker message movement
        // happens here, between the compute phases, which is what makes the
        // barrier protocol checkable and the run replayable. Batches drain
        // in place so every buffer keeps its capacity for the next step.
        for inbox in self.spare.iter_mut() {
            inbox.clear();
        }
        let mut step_partial = Aggregators::new();
        let mut total_sent = 0u64;
        // Per-worker (counter delta, sink extras) snapshots, taken in route
        // order but re-emitted in worker order at the barrier.
        let mut worker_snaps: Vec<Option<TraceSnap>> = if tracing {
            (0..n).map(|_| None).collect()
        } else {
            Vec::new()
        };
        for &src in &route_order {
            let Some((partial, mut counters, mut sink)) = slots[src].take() else {
                continue;
            };
            let dst_order = schedule_order(
                n,
                config.perturb_schedule,
                step ^ (src as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                0x4445_5354,
            );
            for &dst_worker in &dst_order {
                let batch = &mut self.outboxes[src].batches[dst_worker];
                if batch.is_empty() {
                    continue;
                }
                let len = batch.len() as u64;
                counters.messages_sent += len;
                total_sent += len;
                self.checker.record_sent(len);
                if dst_worker == src {
                    self.checker.record_delivered(len);
                    for (v, m) in batch.drain(..) {
                        self.spare[dst_worker].push(v, m);
                    }
                } else {
                    counters.remote_messages += len;
                    // Serialize then deserialize: the wire format is
                    // exercised for real and its size is the byte metric.
                    // The integrity trailer is framing, not payload, so it
                    // is excluded from the paper's message-size counter.
                    self.wire.clear();
                    encode_batch(batch, &mut self.wire);
                    counters.bytes_sent += (self.wire.len() - BATCH_TRAILER) as u64;
                    if let Some(draw) = injector.arm_corruption(dst_worker, step) {
                        // Flip one deterministically-chosen bit; the batch
                        // checksum guarantees the decoder reports it.
                        let pos = (draw as usize) % self.wire.len();
                        self.wire[pos] ^= 1 << ((draw >> 32) % 8);
                    }
                    let checker = &mut self.checker;
                    let dst = &mut self.spare[dst_worker];
                    decode_batch::<L::Msg>(&self.wire, batch.len(), |v, m| {
                        checker.record_delivered(1);
                        dst.push(v, m);
                    })
                    .map_err(|detail| BspError::Codec {
                        worker: dst_worker,
                        step,
                        detail,
                    })?;
                    batch.clear();
                }
            }
            // Aggregator and counter folds are commutative, so the
            // perturbed route order cannot change their totals.
            step_partial.merge(&partial);
            self.metrics.absorb_counters(counters);
            if tracing {
                worker_snaps[src] = Some((counters, sink.take_extras()));
            }
        }
        for inbox in self.spare.iter_mut() {
            inbox.seal();
        }
        let after_exchange = now();
        if step > 2
            && routing_capacity(
                &self.outboxes,
                &self.inboxes,
                &self.spare,
                self.wire.capacity(),
            ) > cap_before
        {
            self.metrics.routing_growths += 1;
        }

        self.globals = step_partial;
        // Built-in aggregate: how many messages this superstep emitted.
        // Phased programs key their transitions off it.
        self.globals.sum_u64(MESSAGES_SENT_AGG, total_sent);
        let decision = match master.as_mut() {
            Some(hook) => hook(step, &self.globals),
            None => MasterDecision::Continue,
        };

        let timing = StepTiming {
            compute: compute_max,
            messaging: after_exchange - after_compute,
            barrier: (after_compute - step_start).saturating_sub(compute_max),
        };
        self.metrics
            .record_step(timing, config.keep_per_step_timing);
        std::mem::swap(&mut self.inboxes, &mut self.spare);

        let idle_halt = total_sent == 0 && decision != MasterDecision::ForceContinue;
        let halting = idle_halt || decision == MasterDecision::Halt;
        if tracing {
            // Worker events are emitted in worker order regardless of the
            // perturbed route order, so Counters-level streams stay
            // bit-identical across schedule perturbations.
            for (w, snap) in worker_snaps.iter_mut().enumerate() {
                let Some((counters, extras)) = snap.take() else {
                    continue;
                };
                let (active_vertices, messages_in) = inbox_stats[w];
                self.metrics.trace.push(TraceEvent::WorkerStep {
                    step,
                    worker: w as u32,
                    active_vertices,
                    messages_in,
                    counters,
                    extras,
                    compute_ns: if trace_full { duration_ns(tooks[w]) } else { 0 },
                });
            }
            self.metrics.trace.push(TraceEvent::StepEnd {
                step,
                sent: total_sent,
                halted: halting,
                compute_ns: if trace_full {
                    duration_ns(timing.compute)
                } else {
                    0
                },
                messaging_ns: if trace_full {
                    duration_ns(timing.messaging)
                } else {
                    0
                },
                barrier_ns: if trace_full {
                    duration_ns(timing.barrier)
                } else {
                    0
                },
            });
        }
        self.checker.barrier(total_sent, decision, halting);
        self.step = step;
        self.halted = halting;
        Ok(())
    }

    /// Drives the run until it halts.
    ///
    /// # Errors
    ///
    /// Propagates superstep failures; exhausting `config.max_supersteps`
    /// without halting is [`BspError::SuperstepLimit`]; exhausting an
    /// explicit `config.superstep_budget` is [`BspError::BudgetExceeded`].
    pub(crate) fn drive<'scope>(
        &mut self,
        config: &BspConfig,
        master: &mut Option<MasterHook<'_>>,
        injector: &mut FaultInjector,
        pool: &mut ComputePool<'scope, '_, L>,
    ) -> Result<(), BspError>
    where
        L: 'scope,
    {
        while !self.halted {
            if self.step >= config.max_supersteps {
                return Err(BspError::SuperstepLimit {
                    limit: config.max_supersteps,
                });
            }
            if let Some(budget) = config.superstep_budget {
                if self.step >= budget {
                    return Err(BspError::BudgetExceeded { budget });
                }
            }
            self.superstep(config, master, injector, pool)?;
        }
        Ok(())
    }
}

impl<L: WorkerLogic + Snapshot> RunState<L> {
    /// Captures the current superstep boundary: worker states, in-flight
    /// inboxes, aggregator globals, and metrics.
    pub(crate) fn take_checkpoint(&self) -> Checkpoint {
        let worker_states = self
            .workers
            .iter()
            .map(|w| {
                let mut buf = Vec::new();
                w.checkpoint(&mut buf);
                buf
            })
            .collect();
        let inboxes = self
            .inboxes
            .iter()
            .map(|ib| {
                let mut buf = Vec::new();
                ib.checkpoint(&mut buf);
                buf
            })
            .collect();
        // The trace is monotone over the recovered run (like the recovery
        // counters), so the checkpointed metrics carry none of it: a
        // rollback must not truncate events already emitted.
        let mut metrics = self.metrics.clone();
        metrics.trace.events.clear();
        Checkpoint {
            step: self.step,
            worker_states,
            inboxes,
            globals: self.globals.clone(),
            metrics,
        }
    }

    /// Transplants the run back to `ckpt`'s superstep boundary, discarding
    /// everything since: worker states and in-flight inboxes are restored
    /// from the blobs, partially-drained outboxes and the staging inboxes
    /// are dropped, and the metrics rewind — except the recovery counters
    /// and the trace stream, which are monotone over the whole recovered
    /// run (the trace keeps the rolled-back steps' events; the recovery
    /// driver marks the rewind with a [`TraceEvent::Rollback`]).
    pub(crate) fn rollback(&mut self, ckpt: &Checkpoint) -> Result<(), BspError> {
        if ckpt.worker_states.len() != self.workers.len()
            || ckpt.inboxes.len() != self.inboxes.len()
        {
            return Err(BspError::Checkpoint {
                detail: format!(
                    "checkpoint shape ({} workers, {} inboxes) does not match the run ({})",
                    ckpt.worker_states.len(),
                    ckpt.inboxes.len(),
                    self.workers.len()
                ),
            });
        }
        for (i, (w, blob)) in self.workers.iter_mut().zip(&ckpt.worker_states).enumerate() {
            w.restore(blob).map_err(|d| BspError::Checkpoint {
                detail: format!("worker {i} state: {d}"),
            })?;
        }
        for (i, (ib, blob)) in self.inboxes.iter_mut().zip(&ckpt.inboxes).enumerate() {
            ib.restore(blob).map_err(|d| BspError::Checkpoint {
                detail: format!("worker {i} inbox: {d}"),
            })?;
        }
        for ib in &mut self.spare {
            ib.clear();
        }
        for ob in &mut self.outboxes {
            ob.clear_batches();
        }
        self.globals = ckpt.globals.clone();
        let recovery = self.metrics.recovery;
        let trace = std::mem::take(&mut self.metrics.trace);
        self.metrics = ckpt.metrics.clone();
        self.metrics.recovery = recovery;
        self.metrics.trace = trace;
        self.step = ckpt.step;
        self.halted = false;
        self.checker.resume(ckpt.step);
        Ok(())
    }
}

/// Runs `workers` to convergence (no messages in flight and no master
/// continuation) and returns the worker states plus the run metrics.
///
/// Convergence rule (Sec. IV-A2): all vertices implicitly vote to halt
/// after each superstep and only messages reactivate them, so the run stops
/// at the first superstep that emits no messages. The first superstep always
/// runs (with empty inboxes) so programs can initialize.
///
/// # Errors
///
/// Surfaces poisoned workers (worker threads panicking mid-superstep) and
/// wire-codec corruption as [`BspError`] instead of panicking, per the
/// failure-injection intent of DESIGN.md §7, and non-convergence within
/// `config.max_supersteps` as [`BspError::SuperstepLimit`]. Faults injected
/// via [`BspConfig::fault_plan`] kill this driver at first trigger — use
/// [`crate::recover::run_bsp_recoverable`] to survive them.
pub fn run_bsp<L: WorkerLogic>(
    config: &BspConfig,
    workers: Vec<L>,
    partition: Arc<PartitionMap>,
    mut master: Option<MasterHook<'_>>,
) -> Result<(Vec<L>, RunMetrics), BspError> {
    let mut injector = FaultInjector::new(config.fault_plan.clone());
    let mut state = RunState::new(workers, &partition)?;
    let run_start = now();
    let n = state.workers.len();
    std::thread::scope(|scope| {
        let mut pool = ComputePool::start(scope, n);
        state.drive(config, &mut master, &mut injector, &mut pool)
    })?;
    state.metrics.makespan = run_start.elapsed();
    Ok((state.workers, state.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::{TemporalGraph, VertexId};
    use graphite_tgraph::time::Interval;

    fn ring(n: u64) -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        for i in 0..n {
            b.add_vertex(VertexId(i), Interval::new(0, 10)).unwrap();
        }
        for i in 0..n {
            b.add_edge(
                graphite_tgraph::graph::EdgeId(i),
                VertexId(i),
                VertexId((i + 1) % n),
                Interval::new(0, 10),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    /// A toy token-passing logic: vertex 0 emits a counter that travels the
    /// ring once, incrementing at every hop; every worker also aggregates
    /// the max token seen.
    struct TokenLogic {
        graph: Arc<TemporalGraph>,
        owned: Vec<VIdx>,
        seen: Vec<(VIdx, u64)>,
        hops: u64,
    }

    impl WorkerLogic for TokenLogic {
        type Msg = u64;
        fn superstep(
            &mut self,
            step: u64,
            inbox: &Inbox<u64>,
            outbox: &mut Outbox<u64>,
            _globals: &Aggregators,
            partial: &mut Aggregators,
            counters: &mut UserCounters,
            _sink: &mut TraceSink,
        ) {
            if step == 1 {
                for &v in &self.owned {
                    if self.graph.vertex(v).vid == VertexId(0) {
                        counters.compute_calls += 1;
                        let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
                        outbox.send(next, 1);
                    }
                }
                return;
            }
            for (v, msgs) in inbox.iter() {
                counters.compute_calls += 1;
                for &m in msgs {
                    self.seen.push((v, m));
                    partial.max_i64("max-token", m as i64);
                    if m < self.hops {
                        let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
                        outbox.send(next, m + 1);
                    }
                }
            }
        }
    }

    fn run_token(n: u64, workers: usize, hops: u64) -> (Vec<TokenLogic>, RunMetrics) {
        run_token_with(n, workers, hops, &BspConfig::default())
    }

    fn run_token_with(
        n: u64,
        workers: usize,
        hops: u64,
        config: &BspConfig,
    ) -> (Vec<TokenLogic>, RunMetrics) {
        let graph = Arc::new(ring(n));
        let partition = Arc::new(PartitionMap::hash(&graph, workers).expect("partition"));
        let logics = (0..workers)
            .map(|w| TokenLogic {
                graph: Arc::clone(&graph),
                owned: partition.owned_by(w),
                seen: Vec::new(),
                hops,
            })
            .collect();
        run_bsp(config, logics, partition, None).unwrap()
    }

    #[test]
    fn token_travels_the_ring() {
        for workers in [1, 2, 4] {
            let (logics, metrics) = run_token(8, workers, 8);
            let mut seen: Vec<(VIdx, u64)> = logics.into_iter().flat_map(|l| l.seen).collect();
            seen.sort_by_key(|&(_, m)| m);
            let tokens: Vec<u64> = seen.iter().map(|&(_, m)| m).collect();
            assert_eq!(tokens, (1..=8).collect::<Vec<_>>(), "workers={workers}");
            // 1 emit + 8 hops; the last hop's superstep emits nothing.
            assert_eq!(metrics.counters.messages_sent, 8);
            assert_eq!(metrics.supersteps, 9, "9th delivers token 8, sends nothing");
        }
    }

    #[test]
    fn metrics_count_remote_vs_local() {
        let (_, m1) = run_token(8, 1, 8);
        assert_eq!(m1.counters.remote_messages, 0, "single worker is all-local");
        assert_eq!(m1.counters.bytes_sent, 0);
        let (_, m4) = run_token(8, 4, 8);
        assert!(m4.counters.remote_messages > 0);
        assert!(m4.counters.bytes_sent > 0);
        assert_eq!(m4.counters.messages_sent, m1.counters.messages_sent);
    }

    #[test]
    fn aggregators_reach_master() {
        let graph = Arc::new(ring(6));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let logics = (0..2)
            .map(|w| TokenLogic {
                graph: Arc::clone(&graph),
                owned: partition.owned_by(w),
                seen: Vec::new(),
                hops: 6,
            })
            .collect();
        let mut max_seen = Vec::new();
        let mut hook = |_step: u64, agg: &Aggregators| {
            if let Some(v) = agg.get_max_i64("max-token") {
                max_seen.push(v);
            }
            MasterDecision::Continue
        };
        run_bsp(&BspConfig::default(), logics, partition, Some(&mut hook)).unwrap();
        assert_eq!(max_seen, (1..=6).collect::<Vec<_>>());
    }

    #[test]
    fn master_can_halt_early() {
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let logics = (0..2)
            .map(|w| TokenLogic {
                graph: Arc::clone(&graph),
                owned: partition.owned_by(w),
                seen: Vec::new(),
                hops: 8,
            })
            .collect();
        let mut hook = |step: u64, _: &Aggregators| {
            if step >= 3 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        };
        let (_, metrics) =
            run_bsp(&BspConfig::default(), logics, partition, Some(&mut hook)).unwrap();
        assert_eq!(metrics.supersteps, 3);
    }

    #[test]
    fn exhausting_max_supersteps_is_an_error() {
        let graph = Arc::new(ring(4));
        let partition = Arc::new(PartitionMap::hash(&graph, 1).expect("partition"));
        let logics = vec![TokenLogic {
            graph: Arc::clone(&graph),
            owned: partition.owned_by(0),
            seen: Vec::new(),
            hops: u64::MAX, // never stops on its own
        }];
        let config = BspConfig {
            max_supersteps: 5,
            ..Default::default()
        };
        let Err(err) = run_bsp(&config, logics, partition, None) else {
            panic!("non-convergence must not be a silent Ok");
        };
        assert_eq!(err, BspError::SuperstepLimit { limit: 5 });
        assert!(!err.is_recoverable(), "rollback cannot fix non-convergence");
    }

    #[test]
    fn converging_exactly_at_the_cap_is_ok() {
        // 8 hops converge at superstep 9; a cap of exactly 9 must pass.
        let config = BspConfig {
            max_supersteps: 9,
            ..Default::default()
        };
        let (_, metrics) = run_token_with(8, 2, 8, &config);
        assert_eq!(metrics.supersteps, 9);
    }

    #[test]
    fn per_step_timing_is_recorded_when_asked() {
        let graph = Arc::new(ring(4));
        let partition = Arc::new(PartitionMap::hash(&graph, 1).expect("partition"));
        let logics = vec![TokenLogic {
            graph: Arc::clone(&graph),
            owned: partition.owned_by(0),
            seen: Vec::new(),
            hops: 4,
        }];
        let config = BspConfig {
            keep_per_step_timing: true,
            ..Default::default()
        };
        let (_, metrics) = run_bsp(&config, logics, partition, None).unwrap();
        assert_eq!(metrics.per_step.len() as u64, metrics.supersteps);
        assert!(metrics.makespan >= metrics.compute_plus);
    }

    #[test]
    fn worker_count_mismatch_is_an_error() {
        let graph = Arc::new(ring(4));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let logics = vec![TokenLogic {
            graph: Arc::clone(&graph),
            owned: partition.owned_by(0),
            seen: Vec::new(),
            hops: 1,
        }];
        let Err(err) = run_bsp(&BspConfig::default(), logics, partition, None) else {
            panic!("mismatched worker count must not run");
        };
        assert_eq!(
            err,
            BspError::WorkerMismatch {
                logics: 1,
                partitions: 2
            }
        );
    }

    /// A logic whose listed workers panic at superstep 2.
    struct Bomb {
        worker: usize,
        bad: Vec<usize>,
    }

    impl WorkerLogic for Bomb {
        type Msg = u64;
        fn superstep(
            &mut self,
            step: u64,
            _inbox: &Inbox<u64>,
            outbox: &mut Outbox<u64>,
            _globals: &Aggregators,
            _partial: &mut Aggregators,
            _counters: &mut UserCounters,
            _sink: &mut TraceSink,
        ) {
            if step == 2 && self.bad.contains(&self.worker) {
                panic!("boom from {}", self.worker);
            }
            if step == 1 && self.worker == 0 {
                outbox.send(VIdx(0), 1); // keep the run alive into step 2
            }
        }
    }

    #[test]
    fn poisoned_worker_surfaces_as_error() {
        let graph = Arc::new(ring(4));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let logics = (0..2)
            .map(|worker| Bomb {
                worker,
                bad: vec![1],
            })
            .collect();
        let Err(err) = run_bsp(&BspConfig::default(), logics, partition, None) else {
            panic!("poisoned run must not succeed");
        };
        match err {
            BspError::WorkerPanicked { step, workers } => {
                assert_eq!(step, 2);
                assert_eq!(workers.len(), 1);
                assert_eq!(workers[0].0, 1);
                assert!(workers[0].1.contains("boom from 1"));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn all_poisoned_workers_are_reported() {
        // Three of four workers die in the same superstep; the error must
        // list every one of them, in worker order, under every perturbed
        // join order.
        for perturb in [None, Some(7u64), Some(0xDEAD_BEEF)] {
            let graph = Arc::new(ring(8));
            let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
            let logics = (0..4)
                .map(|worker| Bomb {
                    worker,
                    bad: vec![0, 2, 3],
                })
                .collect();
            let config = BspConfig {
                perturb_schedule: perturb,
                ..Default::default()
            };
            let Err(err) = run_bsp(&config, logics, partition, None) else {
                panic!("poisoned run must not succeed");
            };
            let BspError::WorkerPanicked { step, workers } = err else {
                panic!("expected WorkerPanicked");
            };
            assert_eq!(step, 2);
            let indices: Vec<usize> = workers.iter().map(|p| p.0).collect();
            assert_eq!(indices, vec![0, 2, 3], "perturb={perturb:?}");
            for (w, msg) in &workers {
                assert!(msg.contains(&format!("boom from {w}")));
            }
        }
    }

    #[test]
    fn injected_panic_fault_kills_a_plain_run() {
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 2).expect("partition"));
        let logics = (0..2)
            .map(|w| TokenLogic {
                graph: Arc::clone(&graph),
                owned: partition.owned_by(w),
                seen: Vec::new(),
                hops: 8,
            })
            .collect();
        let config = BspConfig {
            fault_plan: Some(FaultPlan::panic_at(1, 3)),
            ..Default::default()
        };
        let Err(err) = run_bsp(&config, logics, partition, None) else {
            panic!("injected fault must surface");
        };
        let BspError::WorkerPanicked { step, workers } = err else {
            panic!("expected WorkerPanicked");
        };
        assert_eq!(step, 3);
        assert_eq!(workers[0].0, 1);
        assert!(workers[0].1.contains("injected fault"));
    }

    #[test]
    fn injected_corruption_fault_surfaces_as_codec_error() {
        // The ring under 4 workers ships remote batches every superstep;
        // corrupting the batch bound for some worker must surface as a
        // checksum mismatch at exactly the planned superstep.
        let graph = Arc::new(ring(8));
        let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
        // The token visits one vertex per superstep; find a worker that is
        // a remote destination at step 2 by trying all of them.
        let mut hit = false;
        for dst in 0..4 {
            let logics: Vec<TokenLogic> = (0..4)
                .map(|w| TokenLogic {
                    graph: Arc::clone(&graph),
                    owned: partition.owned_by(w),
                    seen: Vec::new(),
                    hops: 8,
                })
                .collect();
            let config = BspConfig {
                fault_plan: Some(FaultPlan::corrupt_at(dst, 2)),
                ..Default::default()
            };
            match run_bsp(&config, logics, Arc::clone(&partition), None) {
                Err(BspError::Codec {
                    worker,
                    step,
                    detail,
                }) => {
                    assert_eq!(worker, dst);
                    assert_eq!(step, 2);
                    assert!(detail.contains("checksum"), "got {detail}");
                    hit = true;
                }
                Ok(_) => {} // dst received no remote batch at step 2
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(hit, "no worker was a remote destination at step 2");
    }

    #[test]
    fn perturbed_schedules_are_result_invariant() {
        let baseline = run_token(8, 4, 8);
        let canonical: Vec<(VIdx, u64)> = {
            let mut s: Vec<(VIdx, u64)> = baseline.0.into_iter().flat_map(|l| l.seen).collect();
            s.sort_unstable();
            s
        };
        for seed in 0..8u64 {
            let config = BspConfig {
                perturb_schedule: Some(seed),
                ..Default::default()
            };
            let (logics, metrics) = run_token_with(8, 4, 8, &config);
            let mut seen: Vec<(VIdx, u64)> = logics.into_iter().flat_map(|l| l.seen).collect();
            seen.sort_unstable();
            assert_eq!(seen, canonical, "seed={seed}");
            assert_eq!(
                metrics.counters.messages_sent,
                baseline.1.counters.messages_sent
            );
            assert_eq!(
                metrics.counters.remote_messages,
                baseline.1.counters.remote_messages
            );
            assert_eq!(metrics.counters.bytes_sent, baseline.1.counters.bytes_sent);
            assert_eq!(metrics.supersteps, baseline.1.supersteps);
        }
    }

    #[test]
    fn inbox_checkpoint_round_trips_delivery_order() {
        let mut ib: Inbox<u64> = Inbox::default();
        for (v, m) in [(3u32, 30u64), (1, 10), (3, 31), (0, 0), (1, 11), (3, 32)] {
            ib.push(VIdx(v), m);
        }
        ib.seal();
        let mut blob = Vec::new();
        ib.checkpoint(&mut blob);
        let mut restored: Inbox<u64> = Inbox::default();
        restored.restore(&blob).expect("restore");
        let orig: Vec<(VIdx, Vec<u64>)> = ib.iter().map(|(v, ms)| (v, ms.to_vec())).collect();
        let back: Vec<(VIdx, Vec<u64>)> = restored.iter().map(|(v, ms)| (v, ms.to_vec())).collect();
        assert_eq!(orig, back);
        // Corrupt blobs are rejected, not mis-restored.
        let mut bad = blob.clone();
        bad.truncate(bad.len() - 1);
        assert!(restored.restore(&bad).is_err());
        let mut extra = blob;
        extra.push(0);
        assert!(restored.restore(&extra).is_err());
    }
}
