//! Giraph-style aggregators and the MasterCompute hook.
//!
//! GRAPHITE leverages Giraph's Master-Compute pattern for coordination
//! (Sec. VI). Workers contribute partial aggregate values during a
//! superstep; the engine merges them at the barrier; the merged values are
//! visible to the master callback (which may halt the run or steer phased
//! algorithms such as SCC) and to every worker in the next superstep.

use std::collections::BTreeMap;
use std::fmt;

/// A single commutative-associative aggregate value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Agg {
    /// Minimum of `i64` contributions.
    MinI64(i64),
    /// Maximum of `i64` contributions.
    MaxI64(i64),
    /// Sum of `i64` contributions.
    SumI64(i64),
    /// Sum of `u64` contributions.
    SumU64(u64),
    /// Sum of `f64` contributions.
    SumF64(f64),
    /// Logical OR of boolean contributions.
    Or(bool),
}

impl Agg {
    fn merge(&mut self, other: Agg) {
        match (self, other) {
            (Agg::MinI64(a), Agg::MinI64(b)) => *a = (*a).min(b),
            (Agg::MaxI64(a), Agg::MaxI64(b)) => *a = (*a).max(b),
            (Agg::SumI64(a), Agg::SumI64(b)) => *a += b,
            (Agg::SumU64(a), Agg::SumU64(b)) => *a += b,
            (Agg::SumF64(a), Agg::SumF64(b)) => *a += b,
            (Agg::Or(a), Agg::Or(b)) => *a |= b,
            (a, b) => panic!("aggregator kind mismatch: {a:?} vs {b:?}"),
        }
    }
}

/// A named set of aggregators. One instance holds either a worker's
/// partial contributions for the current superstep or the merged globals
/// from the previous one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregators {
    vals: BTreeMap<&'static str, Agg>,
}

impl Aggregators {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn contribute(&mut self, name: &'static str, v: Agg) {
        self.vals
            .entry(name)
            .and_modify(|cur| cur.merge(v))
            .or_insert(v);
    }

    /// Contributes to a minimum aggregate.
    pub fn min_i64(&mut self, name: &'static str, v: i64) {
        self.contribute(name, Agg::MinI64(v));
    }

    /// Contributes to a maximum aggregate.
    pub fn max_i64(&mut self, name: &'static str, v: i64) {
        self.contribute(name, Agg::MaxI64(v));
    }

    /// Contributes to a signed sum aggregate.
    pub fn sum_i64(&mut self, name: &'static str, v: i64) {
        self.contribute(name, Agg::SumI64(v));
    }

    /// Contributes to an unsigned sum aggregate.
    pub fn sum_u64(&mut self, name: &'static str, v: u64) {
        self.contribute(name, Agg::SumU64(v));
    }

    /// Contributes to a floating sum aggregate.
    pub fn sum_f64(&mut self, name: &'static str, v: f64) {
        self.contribute(name, Agg::SumF64(v));
    }

    /// Contributes to a boolean OR aggregate.
    pub fn or(&mut self, name: &'static str, v: bool) {
        self.contribute(name, Agg::Or(v));
    }

    /// Reads a minimum aggregate.
    pub fn get_min_i64(&self, name: &str) -> Option<i64> {
        match self.vals.get(name)? {
            Agg::MinI64(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a maximum aggregate.
    pub fn get_max_i64(&self, name: &str) -> Option<i64> {
        match self.vals.get(name)? {
            Agg::MaxI64(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a signed sum aggregate.
    pub fn get_sum_i64(&self, name: &str) -> Option<i64> {
        match self.vals.get(name)? {
            Agg::SumI64(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads an unsigned sum aggregate.
    pub fn get_sum_u64(&self, name: &str) -> Option<u64> {
        match self.vals.get(name)? {
            Agg::SumU64(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a floating sum aggregate.
    pub fn get_sum_f64(&self, name: &str) -> Option<f64> {
        match self.vals.get(name)? {
            Agg::SumF64(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a boolean OR aggregate.
    pub fn get_or(&self, name: &str) -> Option<bool> {
        match self.vals.get(name)? {
            Agg::Or(v) => Some(*v),
            _ => None,
        }
    }

    /// Merges another set of partials into this one.
    pub fn merge(&mut self, other: &Aggregators) {
        for (&name, &v) in &other.vals {
            self.contribute(name, v);
        }
    }

    /// `true` when nothing was contributed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

impl fmt::Display for Aggregators {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, v)) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {v:?}")?;
        }
        write!(f, "}}")
    }
}

/// What the master decides after seeing a superstep's merged aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterDecision {
    /// Keep going (the run still halts when no messages are in flight).
    Continue,
    /// Keep going even when no messages are in flight — phased algorithms
    /// use idle supersteps to switch phases.
    ForceContinue,
    /// Stop after this superstep even if messages are pending.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributions_fold() {
        let mut a = Aggregators::new();
        a.min_i64("m", 5);
        a.min_i64("m", 3);
        a.min_i64("m", 9);
        a.sum_u64("s", 2);
        a.sum_u64("s", 40);
        a.or("o", false);
        a.or("o", true);
        assert_eq!(a.get_min_i64("m"), Some(3));
        assert_eq!(a.get_sum_u64("s"), Some(42));
        assert_eq!(a.get_or("o"), Some(true));
        assert_eq!(a.get_min_i64("missing"), None);
        assert_eq!(a.get_sum_u64("m"), None, "kind-checked reads");
    }

    #[test]
    fn merge_combines_workers() {
        let mut w1 = Aggregators::new();
        w1.max_i64("hi", 10);
        w1.sum_f64("rank", 0.25);
        let mut w2 = Aggregators::new();
        w2.max_i64("hi", 99);
        w2.sum_f64("rank", 0.5);
        let mut global = Aggregators::new();
        global.merge(&w1);
        global.merge(&w2);
        assert_eq!(global.get_max_i64("hi"), Some(99));
        assert!((global.get_sum_f64("rank").unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn mixing_kinds_panics() {
        let mut a = Aggregators::new();
        a.min_i64("x", 1);
        a.sum_i64("x", 1);
    }
}
