//! Checkpointing: serializable worker state and the checkpoint store.
//!
//! A checkpoint captures everything the engine needs to transplant a run
//! back to a superstep boundary: every worker's user state (via the
//! [`Snapshot`] trait, encoded with the wire-codec conventions of
//! [`crate::codec`]), every in-flight inbox (the messages delivered at the
//! last barrier but not yet consumed), the merged aggregator globals, and
//! the run metrics as of that boundary. Worker states and inboxes are
//! byte blobs — they round-trip through the same codec the network path
//! uses; the aggregator/metrics control block stays an in-memory clone
//! (aggregator keys are `&'static str` interned by user code, which bytes
//! cannot reconstruct), so the on-disk variant persists the blobs and
//! keeps the small control block resident.

use crate::aggregate::Aggregators;
use crate::error::BspError;
use crate::metrics::RunMetrics;
use std::path::PathBuf;

/// Worker logic whose user state can round-trip through bytes. Implemented
/// by the ICM and VCM workers; required by
/// [`crate::recover::run_bsp_recoverable`].
///
/// The contract mirrors [`crate::codec::Wire`], but at worker granularity
/// and fallible on restore: `restore(buf)` after `checkpoint(&mut buf)`
/// must reproduce a state that behaves identically in every subsequent
/// superstep — the fault-matrix tests pin that recovered result digests
/// are bit-identical to fault-free ones.
pub trait Snapshot {
    /// Appends this worker's complete user state to `buf`.
    fn checkpoint(&self, buf: &mut Vec<u8>);

    /// Replaces this worker's user state with the one encoded in `bytes`
    /// (written by [`Snapshot::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns a static description when `bytes` is malformed; the worker
    /// state is left unchanged in that case.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str>;
}

/// A captured superstep boundary: the unit a [`CheckpointStore`] persists
/// and a rollback restores.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The superstep this checkpoint sits after (0 = before the first).
    pub step: u64,
    /// Per-worker [`Snapshot`] blobs.
    pub worker_states: Vec<Vec<u8>>,
    /// Per-worker in-flight inbox blobs (messages delivered at the last
    /// barrier, pending consumption in superstep `step + 1`).
    pub inboxes: Vec<Vec<u8>>,
    /// Merged aggregator globals as of the barrier.
    pub(crate) globals: Aggregators,
    /// Run metrics as of the barrier (recovery counters excluded on
    /// rollback — they are monotone over the whole recovered run).
    pub(crate) metrics: RunMetrics,
}

impl Checkpoint {
    /// Serialized payload size: the bytes the store must persist.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.worker_states
            .iter()
            .chain(self.inboxes.iter())
            .map(|b| b.len() as u64)
            .sum()
    }
}

/// Where checkpoint payloads live.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CheckpointStorage {
    /// Blobs stay in memory (the default; survives rollbacks, not the
    /// process).
    #[default]
    Memory,
    /// Blobs are written to files under the given directory (conventionally
    /// somewhere under `target/`); the control block stays resident. The
    /// directory is created on first save.
    Disk(PathBuf),
}

/// Holds the most recent [`Checkpoint`] of a run. Only the latest is kept:
/// rollback always targets the newest consistent boundary, and earlier
/// boundaries are strictly worse (more supersteps to replay).
#[derive(Debug)]
pub struct CheckpointStore {
    storage: CheckpointStorage,
    latest: Option<Checkpoint>,
}

impl CheckpointStore {
    /// A store using the given storage backend.
    #[must_use]
    pub fn new(storage: CheckpointStorage) -> Self {
        CheckpointStore {
            storage,
            latest: None,
        }
    }

    /// An in-memory store.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(CheckpointStorage::Memory)
    }

    /// A store persisting blobs under `dir`.
    #[must_use]
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Self::new(CheckpointStorage::Disk(dir.into()))
    }

    /// Saves `ckpt` as the latest checkpoint, returning its payload size.
    ///
    /// # Errors
    ///
    /// [`BspError::Checkpoint`] when the disk backend cannot write.
    pub fn save(&mut self, ckpt: Checkpoint) -> Result<u64, BspError> {
        let bytes = ckpt.payload_bytes();
        if let CheckpointStorage::Disk(dir) = &self.storage {
            std::fs::create_dir_all(dir).map_err(|e| BspError::Checkpoint {
                detail: format!("create {}: {e}", dir.display()),
            })?;
            for (prefix, blobs) in [("worker", &ckpt.worker_states), ("inbox", &ckpt.inboxes)] {
                for (i, blob) in blobs.iter().enumerate() {
                    let path = dir.join(format!("{prefix}{i}.ck"));
                    std::fs::write(&path, blob).map_err(|e| BspError::Checkpoint {
                        detail: format!("write {}: {e}", path.display()),
                    })?;
                }
            }
            // Blobs live on disk; drop the resident copies, keep control.
            let control = Checkpoint {
                worker_states: vec![Vec::new(); ckpt.worker_states.len()],
                inboxes: vec![Vec::new(); ckpt.inboxes.len()],
                ..ckpt
            };
            self.latest = Some(control);
        } else {
            self.latest = Some(ckpt);
        }
        Ok(bytes)
    }

    /// The latest checkpoint, with blobs re-read from disk when the store
    /// persists them there. `None` when nothing was saved yet.
    ///
    /// # Errors
    ///
    /// [`BspError::Checkpoint`] when the disk backend cannot read.
    pub fn load(&self) -> Result<Option<Checkpoint>, BspError> {
        let Some(control) = &self.latest else {
            return Ok(None);
        };
        let mut ckpt = control.clone();
        if let CheckpointStorage::Disk(dir) = &self.storage {
            for (prefix, blobs) in [
                ("worker", &mut ckpt.worker_states),
                ("inbox", &mut ckpt.inboxes),
            ] {
                for (i, blob) in blobs.iter_mut().enumerate() {
                    let path = dir.join(format!("{prefix}{i}.ck"));
                    *blob = std::fs::read(&path).map_err(|e| BspError::Checkpoint {
                        detail: format!("read {}: {e}", path.display()),
                    })?;
                }
            }
        }
        Ok(Some(ckpt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 4,
            worker_states: vec![vec![1, 2, 3], vec![4]],
            inboxes: vec![vec![5, 6], Vec::new()],
            globals: Aggregators::new(),
            metrics: RunMetrics::default(),
        }
    }

    #[test]
    fn memory_store_round_trips() {
        let mut store = CheckpointStore::in_memory();
        assert!(store.load().expect("load").is_none());
        let bytes = store.save(sample()).expect("save");
        assert_eq!(bytes, 6);
        let got = store.load().expect("load").expect("saved");
        assert_eq!(got.step, 4);
        assert_eq!(got.worker_states, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(got.inboxes, vec![vec![5, 6], Vec::new()]);
    }

    #[test]
    fn disk_store_round_trips_blobs() {
        let dir = std::env::temp_dir().join("graphite_ckpt_store_unit_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::on_disk(&dir);
        store.save(sample()).expect("save");
        let got = store.load().expect("load").expect("saved");
        assert_eq!(got.step, 4);
        assert_eq!(got.worker_states, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(got.inboxes, vec![vec![5, 6], Vec::new()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
