//! Checkpointing: serializable worker state and the checkpoint store.
//!
//! A checkpoint captures everything the engine needs to transplant a run
//! back to a superstep boundary: every worker's user state (via the
//! [`Snapshot`] trait, encoded with the wire-codec conventions of
//! [`crate::codec`]), every in-flight inbox (the messages delivered at the
//! last barrier but not yet consumed), the merged aggregator globals, and
//! the run metrics as of that boundary. Worker states and inboxes are
//! byte blobs — they round-trip through the same codec the network path
//! uses; the aggregator/metrics control block stays an in-memory clone
//! (aggregator keys are `&'static str` interned by user code, which bytes
//! cannot reconstruct), so the on-disk variant persists the blobs and
//! keeps the small control block resident.

use crate::aggregate::Aggregators;
use crate::codec::batch_checksum;
use crate::error::BspError;
use crate::metrics::RunMetrics;
use std::path::{Path, PathBuf};

/// Worker logic whose user state can round-trip through bytes. Implemented
/// by the ICM and VCM workers; required by
/// [`crate::recover::run_bsp_recoverable`].
///
/// The contract mirrors [`crate::codec::Wire`], but at worker granularity
/// and fallible on restore: `restore(buf)` after `checkpoint(&mut buf)`
/// must reproduce a state that behaves identically in every subsequent
/// superstep — the fault-matrix tests pin that recovered result digests
/// are bit-identical to fault-free ones.
pub trait Snapshot {
    /// Appends this worker's complete user state to `buf`.
    fn checkpoint(&self, buf: &mut Vec<u8>);

    /// Replaces this worker's user state with the one encoded in `bytes`
    /// (written by [`Snapshot::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns a static description when `bytes` is malformed; the worker
    /// state is left unchanged in that case.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str>;
}

/// A captured superstep boundary: the unit a [`CheckpointStore`] persists
/// and a rollback restores.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// The superstep this checkpoint sits after (0 = before the first).
    pub step: u64,
    /// Per-worker [`Snapshot`] blobs.
    pub worker_states: Vec<Vec<u8>>,
    /// Per-worker in-flight inbox blobs (messages delivered at the last
    /// barrier, pending consumption in superstep `step + 1`).
    pub inboxes: Vec<Vec<u8>>,
    /// Merged aggregator globals as of the barrier.
    pub(crate) globals: Aggregators,
    /// Run metrics as of the barrier (recovery counters excluded on
    /// rollback — they are monotone over the whole recovered run).
    pub(crate) metrics: RunMetrics,
}

impl Checkpoint {
    /// Serialized payload size: the bytes the store must persist.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.worker_states
            .iter()
            .chain(self.inboxes.iter())
            .map(|b| b.len() as u64)
            .sum()
    }
}

/// Where checkpoint payloads live.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CheckpointStorage {
    /// Blobs stay in memory (the default; survives rollbacks, not the
    /// process).
    #[default]
    Memory,
    /// Blobs are written to files under the given directory (conventionally
    /// somewhere under `target/`); the control block stays resident. The
    /// directory is created on first save.
    Disk(PathBuf),
}

/// Size of the FNV checksum trailer appended to every persisted blob.
const TRAILER: usize = 8;

/// A retained checkpoint: the control block plus the generation number
/// that names its on-disk files (`{prefix}{i}.g{gen % 2}.ck`).
#[derive(Debug, Clone)]
struct StoredCheckpoint {
    control: Checkpoint,
    generation: u64,
}

/// Holds the two most recent [`Checkpoint`]s of a run. Rollback targets
/// the newest consistent boundary; the previous one is retained purely as
/// a fallback against torn or corrupted persistence of the latest
/// (DESIGN.md §7): disk blobs carry a checksum trailer, are written via
/// temp file + atomic rename, and generations alternate between two file
/// slots so saving generation `n` never touches generation `n - 1`'s
/// files.
#[derive(Debug)]
pub struct CheckpointStore {
    storage: CheckpointStorage,
    latest: Option<StoredCheckpoint>,
    previous: Option<StoredCheckpoint>,
    next_generation: u64,
}

impl CheckpointStore {
    /// A store using the given storage backend.
    #[must_use]
    pub fn new(storage: CheckpointStorage) -> Self {
        CheckpointStore {
            storage,
            latest: None,
            previous: None,
            next_generation: 0,
        }
    }

    /// An in-memory store.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::new(CheckpointStorage::Memory)
    }

    /// A store persisting blobs under `dir`.
    #[must_use]
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        Self::new(CheckpointStorage::Disk(dir.into()))
    }

    /// Saves `ckpt` as the latest checkpoint (demoting the current latest
    /// to the fallback slot), returning its payload size.
    ///
    /// On the disk backend every blob is written with an appended
    /// [`batch_checksum`] trailer, to a temp file first, then moved into
    /// place with an atomic rename — a crash mid-save can tear at most
    /// the generation being written, never the previous one.
    ///
    /// # Errors
    ///
    /// [`BspError::Checkpoint`] when the disk backend cannot write.
    pub fn save(&mut self, ckpt: Checkpoint) -> Result<u64, BspError> {
        let bytes = ckpt.payload_bytes();
        let generation = self.next_generation;
        self.next_generation += 1;
        let stored = if let CheckpointStorage::Disk(dir) = &self.storage {
            std::fs::create_dir_all(dir).map_err(|e| BspError::Checkpoint {
                detail: format!("create {}: {e}", dir.display()),
            })?;
            for (prefix, blobs) in [("worker", &ckpt.worker_states), ("inbox", &ckpt.inboxes)] {
                for (i, blob) in blobs.iter().enumerate() {
                    write_blob(dir, prefix, i, generation, blob)?;
                }
            }
            // Blobs live on disk; drop the resident copies, keep control.
            let control = Checkpoint {
                worker_states: vec![Vec::new(); ckpt.worker_states.len()],
                inboxes: vec![Vec::new(); ckpt.inboxes.len()],
                ..ckpt
            };
            StoredCheckpoint {
                control,
                generation,
            }
        } else {
            StoredCheckpoint {
                control: ckpt,
                generation,
            }
        };
        self.previous = self.latest.take();
        self.latest = Some(stored);
        Ok(bytes)
    }

    /// The newest *verifiable* checkpoint, with blobs re-read from disk
    /// (and their checksum trailers validated) when the store persists
    /// them there. When the latest generation is torn or corrupt, the
    /// previous good checkpoint is returned instead — a rollback replays
    /// more supersteps but the run survives. `None` when nothing was
    /// saved yet.
    ///
    /// # Errors
    ///
    /// [`BspError::Checkpoint`] when no retained generation passes
    /// verification (the error reports every failed generation).
    pub fn load(&self) -> Result<Option<Checkpoint>, BspError> {
        let Some(latest) = &self.latest else {
            return Ok(None);
        };
        let mut failures: Vec<String> = Vec::new();
        for stored in [Some(latest), self.previous.as_ref()].into_iter().flatten() {
            match self.read_generation(stored) {
                Ok(ckpt) => return Ok(Some(ckpt)),
                Err(detail) => failures.push(detail),
            }
        }
        Err(BspError::Checkpoint {
            detail: format!(
                "no verifiable checkpoint generation: {}",
                failures.join("; ")
            ),
        })
    }

    /// Reconstructs one retained generation, verifying every blob's
    /// checksum trailer on the disk backend. Memory blobs are resident
    /// and trusted as-is.
    fn read_generation(&self, stored: &StoredCheckpoint) -> Result<Checkpoint, String> {
        let mut ckpt = stored.control.clone();
        if let CheckpointStorage::Disk(dir) = &self.storage {
            for (prefix, blobs) in [
                ("worker", &mut ckpt.worker_states),
                ("inbox", &mut ckpt.inboxes),
            ] {
                for (i, blob) in blobs.iter_mut().enumerate() {
                    *blob = read_blob(dir, prefix, i, stored.generation)?;
                }
            }
        }
        Ok(ckpt)
    }
}

/// The file slot for one blob of one generation. Generations alternate
/// between two slots, so writing generation `n` only ever overwrites the
/// files of generation `n - 2` (already demoted out of the store).
fn blob_path(dir: &Path, prefix: &str, index: usize, generation: u64) -> PathBuf {
    dir.join(format!("{prefix}{index}.g{}.ck", generation % 2))
}

/// Persists one blob with a checksum trailer via temp file + rename.
fn write_blob(
    dir: &Path,
    prefix: &str,
    index: usize,
    generation: u64,
    blob: &[u8],
) -> Result<(), BspError> {
    let path = blob_path(dir, prefix, index, generation);
    let tmp = path.with_extension("tmp");
    let mut framed = Vec::with_capacity(blob.len() + TRAILER);
    framed.extend_from_slice(blob);
    framed.extend_from_slice(&batch_checksum(blob).to_le_bytes());
    std::fs::write(&tmp, &framed).map_err(|e| BspError::Checkpoint {
        detail: format!("write {}: {e}", tmp.display()),
    })?;
    std::fs::rename(&tmp, &path).map_err(|e| BspError::Checkpoint {
        detail: format!("rename {} -> {}: {e}", tmp.display(), path.display()),
    })
}

/// Reads one blob back, detecting truncation and corruption through the
/// checksum trailer. Errors are strings here — the caller aggregates them
/// across generations into one typed [`BspError::Checkpoint`].
fn read_blob(dir: &Path, prefix: &str, index: usize, generation: u64) -> Result<Vec<u8>, String> {
    let path = blob_path(dir, prefix, index, generation);
    let mut framed = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if framed.len() < TRAILER {
        return Err(format!(
            "truncated blob {} ({} byte(s), trailer needs {TRAILER})",
            path.display(),
            framed.len()
        ));
    }
    let payload_len = framed.len() - TRAILER;
    let mut trailer = [0u8; TRAILER];
    trailer.copy_from_slice(&framed[payload_len..]);
    let want = u64::from_le_bytes(trailer);
    framed.truncate(payload_len);
    let got = batch_checksum(&framed);
    if got != want {
        return Err(format!(
            "corrupt blob {}: checksum {got:#018x} != trailer {want:#018x}",
            path.display()
        ));
    }
    Ok(framed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 4,
            worker_states: vec![vec![1, 2, 3], vec![4]],
            inboxes: vec![vec![5, 6], Vec::new()],
            globals: Aggregators::new(),
            metrics: RunMetrics::default(),
        }
    }

    #[test]
    fn memory_store_round_trips() {
        let mut store = CheckpointStore::in_memory();
        assert!(store.load().expect("load").is_none());
        let bytes = store.save(sample()).expect("save");
        assert_eq!(bytes, 6);
        let got = store.load().expect("load").expect("saved");
        assert_eq!(got.step, 4);
        assert_eq!(got.worker_states, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(got.inboxes, vec![vec![5, 6], Vec::new()]);
    }

    #[test]
    fn disk_store_round_trips_blobs() {
        let dir = std::env::temp_dir().join("graphite_ckpt_store_unit_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::on_disk(&dir);
        store.save(sample()).expect("save");
        let got = store.load().expect("load").expect("saved");
        assert_eq!(got.step, 4);
        assert_eq!(got.worker_states, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(got.inboxes, vec![vec![5, 6], Vec::new()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_at(step: u64, fill: u8) -> Checkpoint {
        Checkpoint {
            step,
            worker_states: vec![vec![fill; 3], vec![fill]],
            inboxes: vec![vec![fill; 2], Vec::new()],
            globals: Aggregators::new(),
            metrics: RunMetrics::default(),
        }
    }

    /// The torn-write regression: a truncated latest generation must fall
    /// back to the previous good checkpoint; corrupting that one too must
    /// surface a typed [`BspError::Checkpoint`], never a garbage restore.
    #[test]
    fn torn_latest_generation_falls_back_to_the_previous_good_checkpoint() {
        let dir = std::env::temp_dir().join("graphite_ckpt_torn_write_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::on_disk(&dir);
        store.save(sample_at(4, 0xA1)).expect("save gen 0");
        store.save(sample_at(8, 0xB2)).expect("save gen 1");

        // Intact: the newest generation wins.
        assert_eq!(store.load().expect("load").expect("saved").step, 8);

        // Tear the latest generation (generation 1 lives in slot g1):
        // truncate one blob below even the trailer length.
        let torn = dir.join("worker0.g1.ck");
        std::fs::write(&torn, [0xB2, 0xB2]).expect("truncate");
        let got = store.load().expect("fallback").expect("previous kept");
        assert_eq!(got.step, 4, "must fall back to the previous generation");
        assert_eq!(got.worker_states, vec![vec![0xA1; 3], vec![0xA1]]);

        // Flip a payload bit in the previous generation as well: with no
        // verifiable generation left, loading is a typed error naming
        // both failures.
        let victim = dir.join("worker0.g0.ck");
        let mut bytes = std::fs::read(&victim).expect("read");
        bytes[0] ^= 0x01;
        std::fs::write(&victim, &bytes).expect("corrupt");
        let err = store.load().expect_err("no good generation remains");
        let BspError::Checkpoint { detail } = &err else {
            panic!("expected a typed checkpoint error, got: {err}");
        };
        assert!(detail.contains("truncated"), "{detail}");
        assert!(detail.contains("checksum"), "{detail}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bit flip that leaves the length intact is still caught by the
    /// checksum trailer (truncation is not the only torn-write shape).
    #[test]
    fn bit_flipped_blob_is_rejected_by_the_checksum_trailer() {
        let dir = std::env::temp_dir().join("graphite_ckpt_bitflip_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::on_disk(&dir);
        store.save(sample_at(6, 0x33)).expect("save");
        let victim = dir.join("inbox0.g0.ck");
        let mut bytes = std::fs::read(&victim).expect("read");
        bytes[1] ^= 0x80;
        std::fs::write(&victim, &bytes).expect("corrupt");
        let err = store.load().expect_err("single corrupt generation");
        assert!(
            matches!(&err, BspError::Checkpoint { detail } if detail.contains("checksum")),
            "expected checksum failure, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Saving alternates two file slots: generation `n` never touches the
    /// files of generation `n - 1`, so the fallback stays intact even
    /// when a save crashes halfway through.
    #[test]
    fn generations_alternate_file_slots() {
        let dir = std::env::temp_dir().join("graphite_ckpt_genslot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::on_disk(&dir);
        store.save(sample_at(2, 1)).expect("gen 0");
        let gen0 = std::fs::read(dir.join("worker0.g0.ck")).expect("g0");
        store.save(sample_at(4, 2)).expect("gen 1");
        assert_eq!(
            std::fs::read(dir.join("worker0.g0.ck")).expect("g0 again"),
            gen0,
            "saving generation 1 must not rewrite generation 0's files"
        );
        store.save(sample_at(6, 3)).expect("gen 2");
        assert_ne!(
            std::fs::read(dir.join("worker0.g0.ck")).expect("g0 recycled"),
            gen0,
            "generation 2 recycles slot 0 (its occupant was already demoted)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
