//! Execution metrics (Sec. VII-A4).
//!
//! The paper reports, per run: the *makespan* (wall-clock from the first to
//! the last user superstep), split into *compute+* time (user-logic calls
//! overlapping with messaging) and *exclusive messaging* time, plus barrier
//! time when substantial; and the intrinsic primitive counts — calls to the
//! user's compute logic and messages sent — which Fig. 4 correlates against
//! the time splits. This module is the single source of truth for all of
//! those numbers across GRAPHITE and the four baselines.

use std::ops::AddAssign;
use std::time::{Duration, Instant};

/// The single sanctioned wall-clock source of the workspace.
///
/// Timing belongs to metrics and nowhere else: wall-clock reads anywhere
/// else in the engines would be invisible nondeterminism (and are denied by
/// the `wall-clock` rule of `graphite-analyze`). Everything that needs a
/// timestamp goes through this function so the policy has one audited
/// exception.
#[inline]
#[must_use]
pub fn now() -> Instant {
    Instant::now() // lint:allow(wall-clock) — the one sanctioned clock read
}

/// Counters the user-logic layers (ICM / VCM) bump while running inside a
/// worker superstep. Message and byte counts are bumped by the router.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UserCounters {
    /// Invocations of the user's compute logic (per interval-vertex for
    /// ICM, per vertex-snapshot for the baselines).
    pub compute_calls: u64,
    /// Invocations of the user's scatter logic.
    pub scatter_calls: u64,
    /// Messages handed to the outbox.
    pub messages_sent: u64,
    /// Messages that crossed a worker boundary (serialized).
    pub remote_messages: u64,
    /// Serialized bytes shipped between workers.
    pub bytes_sent: u64,
    /// Times the warp operator ran (ICM only).
    pub warp_invocations: u64,
    /// Times warp was suppressed in favour of time-point execution
    /// (ICM only; Sec. VI "Warp Suppression").
    pub warp_suppressions: u64,
}

impl AddAssign for UserCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.compute_calls += rhs.compute_calls;
        self.scatter_calls += rhs.scatter_calls;
        self.messages_sent += rhs.messages_sent;
        self.remote_messages += rhs.remote_messages;
        self.bytes_sent += rhs.bytes_sent;
        self.warp_invocations += rhs.warp_invocations;
        self.warp_suppressions += rhs.warp_suppressions;
    }
}

/// Wall-clock split of one superstep.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTiming {
    /// Longest worker compute phase this superstep (workers run in
    /// parallel, so the slowest one gates the barrier) — the paper's
    /// "compute+" contribution.
    pub compute: Duration,
    /// Message exchange (serialize, route, deserialize, regroup).
    pub messaging: Duration,
    /// Synchronization overhead: thread orchestration around the barrier.
    pub barrier: Duration,
}

/// Counters of the checkpoint/rollback recovery layer
/// (`run_bsp_recoverable`). Like [`RunMetrics::routing_growths`], these
/// describe the *execution*, not the *result*: a recovered run must be
/// bit-identical to a fault-free run in states and [`UserCounters`], so
/// recovery counters never enter a result digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryMetrics {
    /// Checkpoints captured (including the mandatory step-0 checkpoint).
    pub checkpoints_taken: u64,
    /// Total serialized checkpoint payload (worker states + in-flight
    /// inboxes), summed over all checkpoints taken.
    pub checkpoint_bytes: u64,
    /// Rollbacks performed after a recoverable fault.
    pub rollbacks: u64,
    /// Supersteps re-executed after rollbacks: completed supersteps that
    /// were discarded, plus each faulted superstep's retry (so every
    /// rollback replays at least one).
    pub supersteps_replayed: u64,
}

impl AddAssign for RecoveryMetrics {
    fn add_assign(&mut self, rhs: Self) {
        self.checkpoints_taken += rhs.checkpoints_taken;
        self.checkpoint_bytes += rhs.checkpoint_bytes;
        self.rollbacks += rhs.rollbacks;
        self.supersteps_replayed += rhs.supersteps_replayed;
    }
}

/// Full metrics of one platform run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Wall-clock from the first to the last superstep.
    pub makespan: Duration,
    /// Cumulative compute+ time (sum over supersteps of the slowest
    /// worker's compute phase).
    pub compute_plus: Duration,
    /// Cumulative exclusive messaging time.
    pub messaging: Duration,
    /// Cumulative barrier/orchestration time.
    pub barrier: Duration,
    /// Aggregated user-logic counters over all workers and supersteps.
    pub counters: UserCounters,
    /// Supersteps after the second whose exchange grew any reusable
    /// routing buffer (outbox batches, inbox storage, the wire buffer).
    /// Ramp-up growth in the first two supersteps is expected and not
    /// counted; a steady workload must keep this at zero thereafter — the
    /// allocation-regression test pins exactly that.
    pub routing_growths: u64,
    /// Checkpoint/rollback counters (all zero for non-recoverable runs).
    /// Excluded from result digests, like `routing_growths`.
    pub recovery: RecoveryMetrics,
    /// Per-superstep timing splits (empty unless requested).
    pub per_step: Vec<StepTiming>,
    /// Structured trace events (empty unless [`crate::trace::TraceConfig`]
    /// enables tracing). Like the timing fields, trace content never
    /// enters result digests or pinned counter keys.
    pub trace: crate::trace::RunTrace,
}

impl RunMetrics {
    /// Accumulates one superstep's timing.
    pub fn record_step(&mut self, timing: StepTiming, keep_per_step: bool) {
        self.supersteps += 1;
        self.compute_plus += timing.compute;
        self.messaging += timing.messaging;
        self.barrier += timing.barrier;
        if keep_per_step {
            self.per_step.push(timing);
        }
    }

    /// Merges counters from one worker-superstep.
    pub fn absorb_counters(&mut self, c: UserCounters) {
        self.counters += c;
    }

    /// Folds several runs (e.g. one per snapshot in the MSB baseline) into
    /// a single cumulative report, as the paper does when charging MSB the
    /// total across snapshots.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.supersteps += other.supersteps;
        self.makespan += other.makespan;
        self.compute_plus += other.compute_plus;
        self.messaging += other.messaging;
        self.barrier += other.barrier;
        self.counters += other.counters;
        self.routing_growths += other.routing_growths;
        self.recovery += other.recovery;
        self.per_step.extend(other.per_step.iter().copied());
        self.trace.events.extend(other.trace.events.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = UserCounters {
            compute_calls: 2,
            messages_sent: 5,
            ..Default::default()
        };
        let b = UserCounters {
            compute_calls: 3,
            bytes_sent: 100,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.compute_calls, 5);
        assert_eq!(a.messages_sent, 5);
        assert_eq!(a.bytes_sent, 100);
    }

    #[test]
    fn run_metrics_record_and_merge() {
        let mut m = RunMetrics::default();
        m.record_step(
            StepTiming {
                compute: Duration::from_millis(10),
                messaging: Duration::from_millis(4),
                barrier: Duration::from_millis(1),
            },
            true,
        );
        m.absorb_counters(UserCounters {
            compute_calls: 7,
            ..Default::default()
        });
        assert_eq!(m.supersteps, 1);
        assert_eq!(m.per_step.len(), 1);

        let mut total = RunMetrics::default();
        total.merge(&m);
        total.merge(&m);
        assert_eq!(total.supersteps, 2);
        assert_eq!(total.counters.compute_calls, 14);
        assert_eq!(total.compute_plus, Duration::from_millis(20));
    }

    #[test]
    fn per_step_is_opt_in() {
        let mut m = RunMetrics::default();
        m.record_step(StepTiming::default(), false);
        assert!(m.per_step.is_empty());
    }
}
