//! Runtime verification of the BSP barrier protocol (debug builds only).
//!
//! The engine's determinism claims rest on a strict superstep protocol:
//! compute happens in parallel, *all* message routing happens in the
//! single-threaded exchange phase, and the barrier evaluates halting from
//! the built-in messages-sent aggregate. [`RunChecker`] asserts that
//! protocol as a state machine while the engine runs:
//!
//! 1. **Phase discipline** — message batches are delivered to next-step
//!    inboxes only during the exchange phase; a delivery after the barrier
//!    (or during compute) is a protocol violation.
//! 2. **Ledger balance** — every message recorded as sent by an outbox is
//!    delivered exactly once, and the built-in [`MESSAGES_SENT_AGG`]
//!    aggregate published at the barrier equals the router's send/receive
//!    ledger.
//! 3. **Halt-vote monotonicity** — vertices implicitly vote to halt every
//!    superstep (Sec. IV-A2); once a barrier observes zero messages in
//!    flight and no `ForceContinue` master decision, the vote is final and
//!    no further superstep may run.
//!
//! All methods compile to empty inline bodies in release builds, so the
//! checker costs nothing in benchmarked configurations; `cargo test` (a
//! debug build) runs every engine test under full verification.
//!
//! [`MESSAGES_SENT_AGG`]: crate::engine::MESSAGES_SENT_AGG

use crate::aggregate::MasterDecision;

/// The protocol phase the engine is currently in (debug builds).
#[cfg(debug_assertions)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Between runs or at a barrier: no sends or deliveries are legal.
    Barrier,
    /// Worker threads are computing; outboxes accumulate, nothing routes.
    Compute,
    /// The single-threaded router is moving batches into next-step inboxes.
    Exchange,
}

/// State machine asserting the BSP barrier protocol. See the module docs.
#[derive(Debug)]
pub struct RunChecker {
    #[cfg(debug_assertions)]
    inner: Inner,
}

#[cfg(debug_assertions)]
#[derive(Debug)]
struct Inner {
    phase: Phase,
    step: u64,
    /// Messages recorded as emitted by outboxes this superstep.
    sent: u64,
    /// Messages delivered into next-step inboxes this superstep.
    delivered: u64,
    /// Set when a barrier finalized the implicit halt vote; any further
    /// superstep is a monotonicity violation.
    halt_final: bool,
}

impl RunChecker {
    /// A checker for a fresh run.
    #[must_use]
    pub fn new() -> Self {
        RunChecker {
            #[cfg(debug_assertions)]
            inner: Inner {
                phase: Phase::Barrier,
                step: 0,
                sent: 0,
                delivered: 0,
                halt_final: false,
            },
        }
    }

    /// Rewinds the checker to the barrier after superstep `step`, as if the
    /// run had just completed that superstep. Used by the recovery driver
    /// when rolling a run back to a checkpoint: the replayed supersteps are
    /// re-verified against the full protocol, but the step-monotonicity and
    /// halt-finality state of the abandoned attempt must not leak into the
    /// replay.
    #[inline]
    pub fn resume(&mut self, step: u64) {
        let _ = step;
        #[cfg(debug_assertions)]
        {
            self.inner = Inner {
                phase: Phase::Barrier,
                step,
                sent: 0,
                delivered: 0,
                halt_final: false,
            };
        }
    }

    /// Superstep `step` begins its compute phase.
    #[inline]
    pub fn begin_compute(&mut self, step: u64) {
        let _ = step;
        #[cfg(debug_assertions)]
        {
            assert!(
                !self.inner.halt_final,
                "BSP invariant: superstep {step} started after the halt vote \
                 became final (halt-vote monotonicity violated)"
            );
            assert_eq!(
                self.inner.phase,
                Phase::Barrier,
                "BSP invariant: compute phase of superstep {step} started outside a barrier"
            );
            assert_eq!(
                self.inner.step + 1,
                step,
                "BSP invariant: superstep skipped or repeated"
            );
            self.inner.phase = Phase::Compute;
            self.inner.step = step;
            self.inner.sent = 0;
            self.inner.delivered = 0;
        }
    }

    /// Compute ended; the single-threaded exchange begins.
    #[inline]
    pub fn begin_exchange(&mut self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.inner.phase,
                Phase::Compute,
                "BSP invariant: exchange started without a compute phase"
            );
            self.inner.phase = Phase::Exchange;
        }
    }

    /// An outbox handed `count` messages to the router.
    #[inline]
    pub fn record_sent(&mut self, count: u64) {
        let _ = count;
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.inner.phase,
                Phase::Exchange,
                "BSP invariant: outbox drained outside the exchange phase"
            );
            self.inner.sent += count;
        }
    }

    /// `count` messages were delivered into a next-step inbox.
    #[inline]
    pub fn record_delivered(&mut self, count: u64) {
        let _ = count;
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.inner.phase,
                Phase::Exchange,
                "BSP invariant: batch delivered outside the exchange phase \
                 (delivery after the superstep barrier)"
            );
            self.inner.delivered += count;
        }
    }

    /// The barrier: exchange is complete, the messages-sent aggregate is
    /// `aggregate_sent`, the master decided `decision`, and the engine will
    /// halt iff `halting`.
    #[inline]
    pub fn barrier(&mut self, aggregate_sent: u64, decision: MasterDecision, halting: bool) {
        let _ = (aggregate_sent, decision, halting);
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.inner.phase,
                Phase::Exchange,
                "BSP invariant: barrier reached without an exchange phase"
            );
            assert_eq!(
                self.inner.sent, self.inner.delivered,
                "BSP invariant: send/receive ledger unbalanced at superstep {} \
                 ({} sent, {} delivered)",
                self.inner.step, self.inner.sent, self.inner.delivered
            );
            assert_eq!(
                aggregate_sent, self.inner.sent,
                "BSP invariant: messages-in-flight aggregate ({aggregate_sent}) \
                 disagrees with the router ledger ({}) at superstep {}",
                self.inner.sent, self.inner.step
            );
            let idle = self.inner.sent == 0 && decision != MasterDecision::ForceContinue;
            if idle || decision == MasterDecision::Halt {
                // The implicit halt vote is final (or the master forced a
                // halt): the engine must stop here.
                assert!(
                    halting,
                    "BSP invariant: halt vote final at superstep {} but the \
                     engine did not halt",
                    self.inner.step
                );
                self.inner.halt_final = true;
            }
            self.inner.phase = Phase::Barrier;
        }
    }
}

impl Default for RunChecker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    fn full_step(c: &mut RunChecker, step: u64, msgs: u64, halting: bool) {
        c.begin_compute(step);
        c.begin_exchange();
        c.record_sent(msgs);
        c.record_delivered(msgs);
        c.barrier(msgs, MasterDecision::Continue, halting);
    }

    #[test]
    fn well_formed_run_passes() {
        let mut c = RunChecker::new();
        full_step(&mut c, 1, 5, false);
        full_step(&mut c, 2, 3, false);
        full_step(&mut c, 3, 0, true);
    }

    #[test]
    #[should_panic(expected = "delivery after the superstep barrier")]
    fn delivery_outside_exchange_is_caught() {
        let mut c = RunChecker::new();
        c.begin_compute(1);
        c.record_delivered(1); // still in compute: illegal
    }

    #[test]
    #[should_panic(expected = "ledger unbalanced")]
    fn dropped_message_is_caught() {
        let mut c = RunChecker::new();
        c.begin_compute(1);
        c.begin_exchange();
        c.record_sent(4);
        c.record_delivered(3); // one message vanished
        c.barrier(4, MasterDecision::Continue, false);
    }

    #[test]
    #[should_panic(expected = "disagrees with the router ledger")]
    fn aggregate_mismatch_is_caught() {
        let mut c = RunChecker::new();
        c.begin_compute(1);
        c.begin_exchange();
        c.record_sent(4);
        c.record_delivered(4);
        c.barrier(5, MasterDecision::Continue, false);
    }

    #[test]
    #[should_panic(expected = "halt-vote monotonicity")]
    fn superstep_after_final_halt_is_caught() {
        let mut c = RunChecker::new();
        full_step(&mut c, 1, 0, true); // idle barrier: vote is final
        c.begin_compute(2); // illegal continuation
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn ignoring_the_halt_vote_is_caught() {
        let mut c = RunChecker::new();
        c.begin_compute(1);
        c.begin_exchange();
        c.record_sent(0);
        c.record_delivered(0);
        c.barrier(0, MasterDecision::Continue, false); // engine claims it continues
    }

    #[test]
    fn force_continue_keeps_the_vote_open() {
        let mut c = RunChecker::new();
        c.begin_compute(1);
        c.begin_exchange();
        c.record_sent(0);
        c.record_delivered(0);
        c.barrier(0, MasterDecision::ForceContinue, false);
        full_step(&mut c, 2, 0, true);
    }
}
