//! Structured superstep tracing: deterministic per-worker span events.
//!
//! The BSP engine already proves *what* a run computed (result digests,
//! deterministic counters); this module records *how*: one
//! [`TraceEvent::WorkerStep`] per worker per superstep (active
//! interval-vertices, messages in/out, bytes, the worker's own
//! [`UserCounters`] delta, operator extras such as warp tuple counts),
//! one [`TraceEvent::StepEnd`] per superstep (phase timings, halt vote),
//! plus [`TraceEvent::Checkpoint`] / [`TraceEvent::Rollback`] markers
//! from the recovery path.
//!
//! Three disciplines keep the trace compatible with the determinism
//! story (DESIGN.md §12):
//!
//! 1. **Content split.** Every field is either *deterministic* (counts,
//!    step/worker ids — bit-identical across schedule perturbations) or
//!    *timing* (`*_ns` fields and `*_ns` extras — wall-clock, never
//!    compared). [`RunTrace::normalized`] zeroes the timing half so
//!    tests can assert stream equality across seeds.
//! 2. **Digest exclusion.** Traces live in
//!    [`RunMetrics`](crate::metrics::RunMetrics) next to the timing
//!    fields and never enter result digests or pinned counter keys.
//! 3. **Clock confinement.** The only clock reads happen in
//!    [`TraceSink::timed`] via [`metrics::now`](crate::metrics::now);
//!    `graphite-analyze` blesses exactly this module, `bsp::metrics`, and
//!    `bench::timing` for wall-clock access.
//!
//! Collection is lock-free: each worker thread owns a [`TraceSink`]
//! (plain `Vec` accumulation, no sharing) that the single-threaded
//! exchange loop drains at the barrier, so `TraceLevel::Off` costs one
//! branch per worker per superstep.
//!
//! Serialization is the versioned JSONL schema `graphite-trace/1`
//! ([`RunTrace::to_jsonl`]): a header object naming the schema and run
//! label, then one object per event. `graphite-bench`'s `trace_report`
//! binary renders it as a per-superstep profile.

use crate::metrics::{now, UserCounters};
use std::time::Duration;

/// The JSONL schema identifier emitted in the header line.
pub const TRACE_SCHEMA: &str = "graphite-trace/1";

/// How much the engine records per superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TraceLevel {
    /// Record nothing. The engine takes one branch per worker per
    /// superstep and allocates nothing; results are bit-identical to
    /// the other levels.
    #[default]
    Off,
    /// Record deterministic content only: per-worker counts and
    /// checkpoint/rollback markers, with every timing field zero.
    /// Streams are bit-identical across schedule perturbations.
    Counters,
    /// Everything in `Counters` plus wall-clock spans (per-worker
    /// compute time, per-step phase timings, `*_ns` operator extras).
    Full,
}

impl TraceLevel {
    /// Parses the spelling used by the `GRAPHITE_TRACE` environment
    /// variable: `off` / `0`, `counters`, or `full` / `1` (any case).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TraceLevel::Off),
            "counters" => Some(TraceLevel::Counters),
            "full" | "1" | "on" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// Tracing configuration carried by every engine config
/// (`BspConfig::trace`, `IcmConfig::trace`, `VcmConfig::trace`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Recording level; defaults to [`TraceLevel::Off`].
    pub level: TraceLevel,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
        }
    }

    /// Deterministic counters only.
    pub fn counters() -> Self {
        TraceConfig {
            level: TraceLevel::Counters,
        }
    }

    /// Counters plus wall-clock spans.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
        }
    }

    /// Reads `GRAPHITE_TRACE` (`off` / `counters` / `full`). When it is
    /// unset, defaults to `full` if `GRAPHITE_TRACE_JSON` names an
    /// output file (asking for a trace file implies wanting one) and
    /// `off` otherwise.
    pub fn from_env() -> Self {
        if let Ok(s) = std::env::var("GRAPHITE_TRACE") {
            if let Some(level) = TraceLevel::parse(&s) {
                return TraceConfig { level };
            }
            eprintln!("trace: unrecognized GRAPHITE_TRACE={s:?}, tracing off");
            return TraceConfig::off();
        }
        match std::env::var("GRAPHITE_TRACE_JSON") {
            Ok(path) if !path.is_empty() => TraceConfig::full(),
            _ => TraceConfig::off(),
        }
    }

    /// True for `Counters` and `Full`.
    pub fn is_enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// True only for `Full`.
    pub fn is_full(&self) -> bool {
        self.level == TraceLevel::Full
    }
}

/// One structured event in a run's trace stream.
///
/// Events appear in a deterministic order: per superstep, `WorkerStep`
/// for workers `0..n` (worker order, not exchange order) followed by
/// one `StepEnd`; `Checkpoint` after the step it snapshots; `Rollback`
/// where recovery rewinds. The trace is monotone across rollbacks —
/// events from rolled-back supersteps stay in the stream, so replayed
/// step numbers repeat after a `Rollback` marker (the profile of a
/// recovered run *should* show the replay).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// One worker's share of one superstep, drained at the barrier.
    WorkerStep {
        /// 1-based superstep number.
        step: u64,
        /// Worker index in `0..workers`.
        worker: u32,
        /// Interval-vertices with pending messages when the step began.
        active_vertices: u64,
        /// Messages delivered to this worker's inbox for this step.
        messages_in: u64,
        /// This worker's counter delta for this step (compute calls,
        /// messages/bytes out, warp invocations/suppressions, ...).
        counters: UserCounters,
        /// Operator-specific extras recorded through [`TraceSink::add`],
        /// e.g. `warp_tuples` / `warp_group_msgs` from the ICM warp
        /// path. Keys ending in `_ns` are timing content.
        extras: Vec<(&'static str, u64)>,
        /// Wall-clock compute span (timing content; 0 under
        /// [`TraceLevel::Counters`]).
        compute_ns: u64,
    },
    /// Barrier summary of one superstep.
    StepEnd {
        /// 1-based superstep number.
        step: u64,
        /// Messages routed this step (equals the sum of the workers'
        /// `messages_sent` deltas).
        sent: u64,
        /// Whether the vote-to-halt check ended the run here.
        halted: bool,
        /// Slowest worker's compute span (timing content).
        compute_ns: u64,
        /// Single-threaded exchange span (timing content).
        messaging_ns: u64,
        /// Barrier/bookkeeping remainder of the step (timing content).
        barrier_ns: u64,
    },
    /// The recovery path snapshotted the run after `step`.
    Checkpoint {
        /// Superstep the checkpoint covers (state *after* this step).
        step: u64,
        /// Serialized checkpoint payload size.
        bytes: u64,
    },
    /// The recovery path rewound the run to a checkpoint.
    Rollback {
        /// Superstep the failed attempt had reached.
        from_step: u64,
        /// Checkpointed superstep execution resumes after.
        to_step: u64,
    },
}

impl TraceEvent {
    /// The event with all wall-clock content zeroed: `*_ns` fields set
    /// to 0 and `*_ns` extras dropped. What remains must be
    /// bit-identical across schedule perturbations.
    pub fn normalized(&self) -> TraceEvent {
        match self {
            TraceEvent::WorkerStep {
                step,
                worker,
                active_vertices,
                messages_in,
                counters,
                extras,
                compute_ns: _,
            } => TraceEvent::WorkerStep {
                step: *step,
                worker: *worker,
                active_vertices: *active_vertices,
                messages_in: *messages_in,
                counters: *counters,
                extras: extras
                    .iter()
                    .filter(|(k, _)| !k.ends_with("_ns"))
                    .copied()
                    .collect(),
                compute_ns: 0,
            },
            TraceEvent::StepEnd {
                step, sent, halted, ..
            } => TraceEvent::StepEnd {
                step: *step,
                sent: *sent,
                halted: *halted,
                compute_ns: 0,
                messaging_ns: 0,
                barrier_ns: 0,
            },
            other => other.clone(),
        }
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            TraceEvent::WorkerStep {
                step,
                worker,
                active_vertices,
                messages_in,
                counters,
                extras,
                compute_ns,
            } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"worker_step\",\"step\":{step},\"worker\":{worker},\
                     \"active\":{active_vertices},\"msgs_in\":{messages_in},\
                     \"compute_calls\":{},\"scatter_calls\":{},\"msgs_out\":{},\
                     \"remote_msgs\":{},\"bytes_out\":{},\"warp_invocations\":{},\
                     \"warp_suppressions\":{},\"compute_ns\":{compute_ns},\"extras\":{{",
                    counters.compute_calls,
                    counters.scatter_calls,
                    counters.messages_sent,
                    counters.remote_messages,
                    counters.bytes_sent,
                    counters.warp_invocations,
                    counters.warp_suppressions,
                );
                for (i, (k, v)) in extras.iter().enumerate() {
                    let comma = if i == 0 { "" } else { "," };
                    let _ = write!(out, "{comma}\"{k}\":{v}");
                }
                out.push_str("}}");
            }
            TraceEvent::StepEnd {
                step,
                sent,
                halted,
                compute_ns,
                messaging_ns,
                barrier_ns,
            } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"step_end\",\"step\":{step},\"sent\":{sent},\
                     \"halted\":{halted},\"compute_ns\":{compute_ns},\
                     \"messaging_ns\":{messaging_ns},\"barrier_ns\":{barrier_ns}}}"
                );
            }
            TraceEvent::Checkpoint { step, bytes } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"checkpoint\",\"step\":{step},\"bytes\":{bytes}}}"
                );
            }
            TraceEvent::Rollback { from_step, to_step } => {
                let _ = write!(
                    out,
                    "{{\"ev\":\"rollback\",\"from_step\":{from_step},\"to_step\":{to_step}}}"
                );
            }
        }
    }
}

/// The accumulated event stream of one run, carried in
/// [`RunMetrics::trace`](crate::metrics::RunMetrics::trace).
///
/// Empty when tracing is off. [`RunMetrics::merge`](crate::metrics::RunMetrics::merge)
/// concatenates streams, so multi-run platforms (MSB/Chlonos snapshot
/// sweeps) produce one stream whose step numbers restart per sub-run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTrace {
    /// Events in emission order (see [`TraceEvent`] for the ordering
    /// contract).
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Appends one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// True when no events were recorded (always true with tracing off).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The stream with every event [`TraceEvent::normalized`]: the
    /// deterministic content only, for cross-seed equality assertions.
    pub fn normalized(&self) -> RunTrace {
        RunTrace {
            events: self.events.iter().map(TraceEvent::normalized).collect(),
        }
    }

    /// Serializes the stream as `graphite-trace/1` JSONL: a header line
    /// `{"schema":"graphite-trace/1","label":...}` followed by one JSON
    /// object per event.
    pub fn to_jsonl(&self, label: &str) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 128);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"label\":\"");
        escape_into(label, &mut out);
        out.push_str("\"}\n");
        for ev in &self.events {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Writes [`Self::to_jsonl`] to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path, label: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl(label))
    }

    /// Writes the stream to the file named by `GRAPHITE_TRACE_JSON`, if
    /// that variable is set and non-empty. Failures are reported on
    /// stderr, never escalated — tracing must not fail a run.
    pub fn maybe_emit(&self, label: &str) {
        let Ok(path) = std::env::var("GRAPHITE_TRACE_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        match self.write_jsonl(std::path::Path::new(&path), label) {
            Ok(()) => eprintln!("trace: wrote {} event(s) to {path}", self.events.len()),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }
}

/// Minimal JSON string escaping for the run label (event keys are
/// static identifiers and never need it).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Saturating nanosecond count of a span (a run would have to exceed
/// ~584 years to saturate).
pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A worker-thread-local event accumulator.
///
/// Each worker owns one sink per superstep; user logic records operator
/// extras through it ([`Self::add`], [`Self::timed`]) and the exchange
/// loop drains it at the barrier into [`TraceEvent::WorkerStep`]
/// `extras`. No locks, no sharing: determinism and the Off-mode cost
/// model both fall out of single ownership.
#[derive(Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    full: bool,
    extras: Vec<(&'static str, u64)>,
}

impl TraceSink {
    /// A sink honoring `config` (inert under [`TraceLevel::Off`]).
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            enabled: config.is_enabled(),
            full: config.is_full(),
            extras: Vec::new(),
        }
    }

    /// An inert sink that records nothing (for tests and direct
    /// `WorkerLogic` invocations outside a traced run).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// True under `Counters` or `Full`.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True under `Full` only.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Accumulates `n` under `key` (first use of a key defines its
    /// slot; keys must be deterministic — use a `_ns` suffix for
    /// anything derived from the clock). No-op when disabled.
    pub fn add(&mut self, key: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        for (k, v) in &mut self.extras {
            if *k == key {
                *v = v.saturating_add(n);
                return;
            }
        }
        self.extras.push((key, n));
    }

    /// Runs `f`, accumulating its wall-clock span under `key` when the
    /// level is `Full` (under `Counters` the span is not measured at
    /// all, keeping the stream deterministic). `key` should end in
    /// `_ns`.
    pub fn timed<R>(&mut self, key: &'static str, f: impl FnOnce() -> R) -> R {
        if !self.full {
            return f();
        }
        let t0 = now();
        let r = f();
        let d = t0.elapsed();
        self.add(key, duration_ns(d));
        r
    }

    /// Drains the accumulated extras (leaving the sink reusable).
    pub fn take_extras(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.extras)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("COUNTERS"), Some(TraceLevel::Counters));
        assert_eq!(TraceLevel::parse("Full"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(!TraceConfig::off().is_enabled());
        assert!(TraceConfig::counters().is_enabled());
        assert!(!TraceConfig::counters().is_full());
        assert!(TraceConfig::full().is_full());
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::disabled();
        sink.add("warp_tuples", 3);
        let r = sink.timed("warp_ns", || 41 + 1);
        assert_eq!(r, 42);
        assert!(sink.take_extras().is_empty());
    }

    #[test]
    fn counters_sink_accumulates_but_never_times() {
        let mut sink = TraceSink::new(TraceConfig::counters());
        sink.add("warp_tuples", 3);
        sink.add("warp_tuples", 2);
        sink.timed("warp_ns", || ());
        assert_eq!(sink.take_extras(), vec![("warp_tuples", 5)]);
    }

    #[test]
    fn full_sink_times_closures() {
        let mut sink = TraceSink::new(TraceConfig::full());
        sink.timed("span_ns", || std::thread::sleep(Duration::from_millis(1)));
        let extras = sink.take_extras();
        assert_eq!(extras.len(), 1);
        assert_eq!(extras[0].0, "span_ns");
        assert!(
            extras[0].1 >= 1_000_000,
            "slept ≥1ms, got {}ns",
            extras[0].1
        );
    }

    #[test]
    fn normalization_zeroes_timing_and_drops_ns_extras() {
        let ev = TraceEvent::WorkerStep {
            step: 3,
            worker: 1,
            active_vertices: 10,
            messages_in: 20,
            counters: UserCounters::default(),
            extras: vec![("warp_tuples", 7), ("warp_ns", 999)],
            compute_ns: 123,
        };
        let TraceEvent::WorkerStep {
            extras, compute_ns, ..
        } = ev.normalized()
        else {
            panic!("normalization must preserve the event kind");
        };
        assert_eq!(extras, vec![("warp_tuples", 7)]);
        assert_eq!(compute_ns, 0);

        let end = TraceEvent::StepEnd {
            step: 3,
            sent: 5,
            halted: true,
            compute_ns: 1,
            messaging_ns: 2,
            barrier_ns: 3,
        };
        assert_eq!(
            end.normalized(),
            TraceEvent::StepEnd {
                step: 3,
                sent: 5,
                halted: true,
                compute_ns: 0,
                messaging_ns: 0,
                barrier_ns: 0,
            }
        );
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let mut trace = RunTrace::default();
        trace.push(TraceEvent::WorkerStep {
            step: 1,
            worker: 0,
            active_vertices: 2,
            messages_in: 0,
            counters: UserCounters::default(),
            extras: vec![("warp_tuples", 4)],
            compute_ns: 0,
        });
        trace.push(TraceEvent::Checkpoint { step: 1, bytes: 64 });
        trace.push(TraceEvent::Rollback {
            from_step: 3,
            to_step: 1,
        });
        let text = trace.to_jsonl("bfs \"quoted\"\n");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"schema\":\"graphite-trace/1\",\"label\":\"bfs \\\"quoted\\\"\\n\"}"
        );
        assert!(lines[1].starts_with("{\"ev\":\"worker_step\",\"step\":1,\"worker\":0,"));
        assert!(lines[1].ends_with("\"extras\":{\"warp_tuples\":4}}"));
        assert_eq!(lines[2], "{\"ev\":\"checkpoint\",\"step\":1,\"bytes\":64}");
        assert_eq!(
            lines[3],
            "{\"ev\":\"rollback\",\"from_step\":3,\"to_step\":1}"
        );
    }
}
