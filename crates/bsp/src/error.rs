//! Engine-level failures surfaced by [`crate::engine::run_bsp`].
//!
//! DESIGN.md §7 ("failure injection") requires the engine to *surface*
//! poisoned-worker conditions instead of panicking inside the barrier
//! logic: a worker thread that panics mid-superstep, or a remote batch
//! whose self-encoded bytes fail to decode, is reported to the caller as a
//! typed error carrying the worker index and superstep for diagnosis.

use std::fmt;

/// A failure during a BSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BspError {
    /// A worker thread panicked during its compute phase. The partition it
    /// owned is poisoned; the run cannot produce a sound result.
    WorkerPanicked {
        /// Index of the poisoned worker.
        worker: usize,
        /// 1-based superstep during which the panic surfaced.
        step: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A remote batch failed to decode through the wire codec even though
    /// this process encoded it — memory corruption or a codec bug.
    Codec {
        /// Destination worker whose batch failed to decode.
        worker: usize,
        /// 1-based superstep of the exchange.
        step: u64,
        /// What failed to decode.
        detail: &'static str,
    },
    /// The caller supplied a different number of worker logics than the
    /// partition map has workers.
    WorkerMismatch {
        /// Number of `WorkerLogic` instances supplied.
        logics: usize,
        /// Number of workers in the partition map.
        partitions: usize,
    },
}

impl fmt::Display for BspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BspError::WorkerPanicked {
                worker,
                step,
                message,
            } => {
                write!(f, "worker {worker} panicked in superstep {step}: {message}")
            }
            BspError::Codec {
                worker,
                step,
                detail,
            } => {
                write!(
                    f,
                    "self-encoded batch for worker {worker} failed to decode in superstep {step}: {detail}"
                )
            }
            BspError::WorkerMismatch { logics, partitions } => {
                write!(
                    f,
                    "{logics} worker logics supplied for {partitions} partitions"
                )
            }
        }
    }
}

impl std::error::Error for BspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BspError::WorkerPanicked {
            worker: 3,
            step: 7,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7') && s.contains("boom"));
        let c = BspError::Codec {
            worker: 1,
            step: 2,
            detail: "vid varint",
        };
        assert!(c.to_string().contains("vid varint"));
        let m = BspError::WorkerMismatch {
            logics: 2,
            partitions: 4,
        };
        assert!(m.to_string().contains('2') && m.to_string().contains('4'));
    }
}
