//! Engine-level failures surfaced by [`crate::engine::run_bsp`] and the
//! recovery driver [`crate::recover::run_bsp_recoverable`].
//!
//! DESIGN.md §7 ("failure injection") requires the engine to *surface*
//! poisoned-worker conditions instead of panicking inside the barrier
//! logic: worker threads that panic mid-superstep, or a remote batch
//! whose self-encoded bytes fail to decode, are reported to the caller as
//! a typed error carrying the worker indices and superstep for diagnosis.
//! The recovery driver classifies these per [`BspError::is_recoverable`]
//! and, when its retry budget runs out, wraps the full fault history in
//! [`BspError::RecoveryExhausted`].

use std::fmt;

/// A failure during a BSP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BspError {
    /// One or more worker threads panicked during the compute phase of a
    /// superstep. The partitions they owned are poisoned; the run cannot
    /// produce a sound result. Every poisoned worker of the superstep is
    /// reported, not just the first one joined.
    WorkerPanicked {
        /// 1-based superstep during which the panics surfaced.
        step: u64,
        /// `(worker index, panic payload)` for every poisoned worker,
        /// ascending by worker index (join order may be perturbed).
        workers: Vec<(usize, String)>,
    },
    /// A remote batch failed to decode through the wire codec even though
    /// this process encoded it — memory corruption or a codec bug.
    Codec {
        /// Destination worker whose batch failed to decode.
        worker: usize,
        /// 1-based superstep of the exchange.
        step: u64,
        /// What failed to decode.
        detail: &'static str,
    },
    /// The caller supplied an invalid run configuration — e.g. a worker
    /// count of zero, one that exceeds the `u16` wire encoding of worker
    /// indices, or a partition assignment that does not cover the graph.
    /// Configuration is user-controlled input, so this is a typed error,
    /// never an assertion.
    Config {
        /// What was invalid.
        detail: String,
    },
    /// The caller supplied a different number of worker logics than the
    /// partition map has workers.
    WorkerMismatch {
        /// Number of `WorkerLogic` instances supplied.
        logics: usize,
        /// Number of workers in the partition map.
        partitions: usize,
    },
    /// The superstep cap was exhausted without the run halting: the logic
    /// did not converge within `limit` supersteps. Previously this was a
    /// silent `Ok` with a truncated (wrong) result.
    SuperstepLimit {
        /// The `max_supersteps` value that was exhausted.
        limit: u64,
    },
    /// A checkpoint could not be captured, persisted, or restored.
    Checkpoint {
        /// What went wrong.
        detail: String,
    },
    /// A serving layer refused to admit a query: its estimated cost would
    /// push the engine past its configured in-flight budget and the wait
    /// queue is full. The query was *never executed* — resubmit later or
    /// against a larger budget. Surfaced by `graphite-serve`'s admission
    /// controller (DESIGN.md §14), typed here so callers can distinguish
    /// overload from execution failure.
    Admission {
        /// Estimated cost units of the rejected query.
        estimated_cost: u64,
        /// The engine's total admission budget in the same units.
        budget: u64,
        /// Queue occupancy at rejection time (queued + in-flight).
        occupancy: usize,
    },
    /// The recovery driver's retry budget ran out: every attempt ended in
    /// a recoverable fault. Carries the full fault history for diagnosis.
    RecoveryExhausted {
        /// Number of failed execution attempts (initial run + replays).
        attempts: u64,
        /// The error that ended the final attempt.
        last: Box<BspError>,
        /// Every recoverable error observed, in order of occurrence.
        history: Vec<BspError>,
    },
    /// The query's deterministic execution budget — a superstep ceiling
    /// derived from the serving layer's admission cost model (or set
    /// explicitly in the batch spec) — was exhausted at the barrier. The
    /// partial state is discarded; the executor slot is released. Unlike
    /// [`BspError::SuperstepLimit`] (an engine-wide convergence cap),
    /// this is a per-query serving policy and deliberately small.
    BudgetExceeded {
        /// The superstep budget that was exhausted.
        budget: u64,
    },
    /// The serving layer fast-failed this query without executing it:
    /// its parameter digest is quarantined after repeated terminal
    /// failures (DESIGN.md §15). Quarantine decays deterministically, so
    /// resubmission eventually executes again.
    Quarantined {
        /// Quarantine key (params digest folded with the fault plan).
        digest: u64,
        /// Terminal failures observed before quarantine engaged.
        failures: u64,
    },
    /// The serving layer shed this queued query to relieve overload:
    /// pending depth crossed the configured watermark and this query was
    /// among the cheapest-oldest queued (never-executing) work. The query
    /// was *never executed* — resubmit when the backlog drains.
    Shed {
        /// Queue occupancy (queued + in-flight) when the shed fired.
        occupancy: usize,
        /// The pending-depth watermark that was crossed.
        watermark: usize,
    },
}

impl BspError {
    /// Whether the checkpoint/rollback driver may retry after this error.
    /// Worker panics and wire corruption are execution faults a rollback
    /// can undo; mismatched configuration, non-convergence, checkpoint
    /// failures, and admission rejections (the run never started) are not.
    #[must_use]
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            BspError::WorkerPanicked { .. } | BspError::Codec { .. }
        )
    }

    /// Whether the *serving* retry layer may re-run a query that ended in
    /// this error (DESIGN.md §15). Transient means "an identical query
    /// could plausibly succeed on another attempt with an escalated
    /// recovery budget": execution faults (panics, wire corruption), an
    /// exhausted inner recovery budget, and checkpoint-store failures.
    /// Everything else — bad configuration, non-convergence, budget,
    /// admission, shed, quarantine — is deterministic policy and retrying
    /// would burn workers for the same answer.
    ///
    /// The match is deliberately exhaustive (no `_` arm): adding a
    /// variant forces a classification decision here.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            BspError::WorkerPanicked { .. }
            | BspError::Codec { .. }
            | BspError::Checkpoint { .. }
            | BspError::RecoveryExhausted { .. } => true,
            BspError::Config { .. }
            | BspError::WorkerMismatch { .. }
            | BspError::SuperstepLimit { .. }
            | BspError::Admission { .. }
            | BspError::BudgetExceeded { .. }
            | BspError::Quarantined { .. }
            | BspError::Shed { .. } => false,
        }
    }

    /// Stable machine-readable tag for this variant, used by the
    /// `graphite serve` JSONL error rows. Exhaustive for the same reason
    /// as [`BspError::is_transient`].
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            BspError::WorkerPanicked { .. } => "worker_panicked",
            BspError::Codec { .. } => "codec",
            BspError::Config { .. } => "config",
            BspError::WorkerMismatch { .. } => "worker_mismatch",
            BspError::SuperstepLimit { .. } => "superstep_limit",
            BspError::Checkpoint { .. } => "checkpoint",
            BspError::Admission { .. } => "admission",
            BspError::RecoveryExhausted { .. } => "recovery_exhausted",
            BspError::BudgetExceeded { .. } => "budget_exceeded",
            BspError::Quarantined { .. } => "quarantined",
            BspError::Shed { .. } => "shed",
        }
    }
}

impl fmt::Display for BspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BspError::WorkerPanicked { step, workers } => {
                let list = workers
                    .iter()
                    .map(|(w, msg)| format!("worker {w} ({msg})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(
                    f,
                    "{} worker(s) panicked in superstep {step}: {list}",
                    workers.len()
                )
            }
            BspError::Codec {
                worker,
                step,
                detail,
            } => {
                write!(
                    f,
                    "self-encoded batch for worker {worker} failed to decode in superstep {step}: {detail}"
                )
            }
            BspError::Config { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            BspError::WorkerMismatch { logics, partitions } => {
                write!(
                    f,
                    "{logics} worker logics supplied for {partitions} partitions"
                )
            }
            BspError::SuperstepLimit { limit } => {
                write!(f, "run did not converge within {limit} supersteps")
            }
            BspError::Checkpoint { detail } => {
                write!(f, "checkpoint failure: {detail}")
            }
            BspError::Admission {
                estimated_cost,
                budget,
                occupancy,
            } => {
                write!(
                    f,
                    "query rejected by admission control: estimated cost \
                     {estimated_cost} exceeds remaining budget (total {budget}, \
                     {occupancy} queries queued or in flight)"
                )
            }
            BspError::RecoveryExhausted {
                attempts,
                last,
                history,
            } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempt(s) \
                     ({} fault(s) observed); last: {last}",
                    history.len()
                )
            }
            BspError::BudgetExceeded { budget } => {
                write!(f, "query exceeded its superstep budget of {budget}")
            }
            BspError::Quarantined { digest, failures } => {
                write!(
                    f,
                    "query {digest:#018x} is quarantined after {failures} \
                     terminal failure(s); resubmit after decay"
                )
            }
            BspError::Shed {
                occupancy,
                watermark,
            } => {
                write!(
                    f,
                    "query shed under load: pending depth {occupancy} crossed \
                     the shed watermark {watermark}"
                )
            }
        }
    }
}

impl std::error::Error for BspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BspError::WorkerPanicked {
            step: 7,
            workers: vec![(1, "boom".into()), (3, "bang".into())],
        };
        let s = e.to_string();
        assert!(s.contains('1') && s.contains('3') && s.contains('7'));
        assert!(s.contains("boom") && s.contains("bang"));
        let c = BspError::Codec {
            worker: 1,
            step: 2,
            detail: "vid varint",
        };
        assert!(c.to_string().contains("vid varint"));
        let m = BspError::WorkerMismatch {
            logics: 2,
            partitions: 4,
        };
        assert!(m.to_string().contains('2') && m.to_string().contains('4'));
        let l = BspError::SuperstepLimit { limit: 42 };
        assert!(l.to_string().contains("42"));
        let k = BspError::Checkpoint {
            detail: "truncated blob".into(),
        };
        assert!(k.to_string().contains("truncated blob"));
        let g = BspError::Config {
            detail: "0 workers requested".into(),
        };
        assert!(g.to_string().contains("0 workers requested"));
        let a = BspError::Admission {
            estimated_cost: 900,
            budget: 500,
            occupancy: 6,
        };
        let s = a.to_string();
        assert!(s.contains("900") && s.contains("500") && s.contains('6'));
        assert!(s.contains("admission"));
        let r = BspError::RecoveryExhausted {
            attempts: 3,
            last: Box::new(l.clone()),
            history: vec![l],
        };
        assert!(r.to_string().contains('3') && r.to_string().contains("42"));
        let b = BspError::BudgetExceeded { budget: 17 };
        assert!(b.to_string().contains("17") && b.to_string().contains("budget"));
        let q = BspError::Quarantined {
            digest: 0xABCD,
            failures: 4,
        };
        assert!(q.to_string().contains("quarantined") && q.to_string().contains('4'));
        let sh = BspError::Shed {
            occupancy: 9,
            watermark: 8,
        };
        assert!(sh.to_string().contains('9') && sh.to_string().contains('8'));
    }

    #[test]
    fn recoverability_classification() {
        assert!(BspError::WorkerPanicked {
            step: 1,
            workers: vec![(0, "x".into())],
        }
        .is_recoverable());
        assert!(BspError::Codec {
            worker: 0,
            step: 1,
            detail: "d",
        }
        .is_recoverable());
        assert!(!BspError::SuperstepLimit { limit: 5 }.is_recoverable());
        assert!(!BspError::WorkerMismatch {
            logics: 1,
            partitions: 2,
        }
        .is_recoverable());
        assert!(!BspError::Checkpoint { detail: "d".into() }.is_recoverable());
        assert!(!BspError::Config { detail: "d".into() }.is_recoverable());
        assert!(!BspError::Admission {
            estimated_cost: 1,
            budget: 1,
            occupancy: 0,
        }
        .is_recoverable());
        // The new serving-policy outcomes are neither recoverable (no
        // rollback helps) nor transient (retrying reproduces them).
        for e in [
            BspError::BudgetExceeded { budget: 1 },
            BspError::Quarantined {
                digest: 1,
                failures: 1,
            },
            BspError::Shed {
                occupancy: 2,
                watermark: 1,
            },
        ] {
            assert!(!e.is_recoverable(), "{e}");
            assert!(!e.is_transient(), "{e}");
        }
    }
}
