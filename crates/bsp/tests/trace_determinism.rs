//! Trace determinism: the observability layer must be an *observer*.
//!
//! Three obligations, each pinned here against real ICM runs:
//!
//! 1. **Digest-invisible.** State digests and the deterministic counter
//!    key are bit-identical whether tracing is Off, Counters, or Full —
//!    tracing may never perturb what the engine computes.
//! 2. **Deterministic content.** The Counters-level event stream is
//!    bit-identical across schedule-perturbation seeds, and a Full-level
//!    stream equals the Counters-level stream after
//!    [`TraceEvent::normalized`] strips wall-clock fields — timing is the
//!    *only* nondeterministic content a trace may carry.
//! 3. **Self-consistent.** Per-`WorkerStep` counters sum to exactly the
//!    run's `RunMetrics` totals, and recovery markers bracket replayed
//!    supersteps monotonically.

use graphite_algorithms::bfs::IcmBfs;
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_bsp::fault::FaultPlan;
use graphite_bsp::metrics::{RunMetrics, UserCounters};
use graphite_bsp::recover::RecoveryConfig;
use graphite_bsp::trace::{TraceConfig, TraceEvent};
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, try_run_icm_recoverable, IcmConfig};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::sync::Arc;

fn profile_long() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 16,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 12.0 },
        props: PropModel {
            mean_segment: 6.0,
            max_cost: 10,
            max_travel_time: 3,
        },
        seed: 7,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn counter_key(m: &RunMetrics) -> [u64; 8] {
    [
        m.supersteps,
        m.counters.compute_calls,
        m.counters.scatter_calls,
        m.counters.messages_sent,
        m.counters.remote_messages,
        m.counters.bytes_sent,
        m.counters.warp_invocations,
        m.counters.warp_suppressions,
    ]
}

fn icm_cfg(trace: TraceConfig, perturb: Option<u64>) -> IcmConfig {
    IcmConfig {
        workers: 4,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: perturb,
        trace,
        fault_plan: None,
        partition: Default::default(),
    }
}

fn bfs_run(
    graph: &Arc<TemporalGraph>,
    trace: TraceConfig,
    perturb: Option<u64>,
) -> (u64, [u64; 8], RunMetrics) {
    let program = Arc::new(IcmBfs {
        source: source(graph),
    });
    let r = try_run_icm(graph, program, &icm_cfg(trace, perturb)).expect("traced run must succeed");
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        counter_key(&r.metrics),
        r.metrics,
    )
}

fn eat_run(graph: &Arc<TemporalGraph>, trace: TraceConfig) -> (u64, [u64; 8], RunMetrics) {
    let program = Arc::new(IcmEat {
        source: source(graph),
        start: 0,
        labels: AlgLabels::resolve(graph),
    });
    let r = try_run_icm(graph, program, &icm_cfg(trace, None)).expect("traced run must succeed");
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        counter_key(&r.metrics),
        r.metrics,
    )
}

#[test]
fn off_mode_records_no_events() {
    let graph = Arc::new(generate(&profile_long()));
    let (_, _, metrics) = bfs_run(&graph, TraceConfig::off(), None);
    assert!(
        metrics.trace.is_empty(),
        "Off-level tracing must record nothing, got {} event(s)",
        metrics.trace.len()
    );
}

#[test]
fn digests_and_counters_are_identical_across_trace_levels() {
    let graph = Arc::new(generate(&profile_long()));
    let off = bfs_run(&graph, TraceConfig::off(), None);
    let counters = bfs_run(&graph, TraceConfig::counters(), None);
    let full = bfs_run(&graph, TraceConfig::full(), None);
    assert_eq!(off.0, counters.0, "Counters tracing perturbed the digest");
    assert_eq!(off.0, full.0, "Full tracing perturbed the digest");
    assert_eq!(off.1, counters.1, "Counters tracing perturbed the counters");
    assert_eq!(off.1, full.1, "Full tracing perturbed the counters");

    let off = eat_run(&graph, TraceConfig::off());
    let full = eat_run(&graph, TraceConfig::full());
    assert_eq!(off.0, full.0, "EAT: Full tracing perturbed the digest");
    assert_eq!(off.1, full.1, "EAT: Full tracing perturbed the counters");
}

#[test]
fn counters_streams_are_bit_identical_across_perturbation_seeds() {
    let graph = Arc::new(generate(&profile_long()));
    let baseline = bfs_run(&graph, TraceConfig::counters(), None);
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let perturbed = bfs_run(&graph, TraceConfig::counters(), Some(seed));
        assert_eq!(
            baseline.2.trace.events, perturbed.2.trace.events,
            "Counters-level event stream diverged under perturbation seed {seed:#x}"
        );
    }
}

#[test]
fn full_streams_normalize_to_the_counters_stream() {
    let graph = Arc::new(generate(&profile_long()));
    let counters = bfs_run(&graph, TraceConfig::counters(), None);
    let full = bfs_run(&graph, TraceConfig::full(), None);
    assert_eq!(
        counters.2.trace.normalized().events,
        full.2.trace.normalized().events,
        "a normalized Full stream must equal the normalized Counters stream"
    );
    // Counters streams carry no timing at all: normalization is identity.
    assert_eq!(
        counters.2.trace.normalized().events,
        counters.2.trace.events
    );
    // And a normalized Full stream is perturbation-invariant too.
    let perturbed = bfs_run(&graph, TraceConfig::full(), Some(0xFEED));
    assert_eq!(
        full.2.trace.normalized().events,
        perturbed.2.trace.normalized().events,
        "normalized Full streams diverged under perturbation"
    );
}

#[test]
fn worker_step_sums_reconcile_with_run_metrics() {
    let graph = Arc::new(generate(&profile_long()));
    let (_, key, metrics) = bfs_run(&graph, TraceConfig::full(), None);
    let mut summed = UserCounters::default();
    let mut step_ends = 0u64;
    let mut sent_total = 0u64;
    for ev in &metrics.trace.events {
        match ev {
            TraceEvent::WorkerStep { counters, .. } => summed += *counters,
            TraceEvent::StepEnd { sent, .. } => {
                step_ends += 1;
                sent_total += sent;
            }
            other => panic!("fault-free run carries a recovery marker: {other:?}"),
        }
    }
    assert_eq!(summed, metrics.counters, "WorkerStep sums != RunMetrics");
    assert_eq!(step_ends, metrics.supersteps, "one StepEnd per superstep");
    assert_eq!(sent_total, metrics.counters.messages_sent);
    // The reconciled totals are the same ones the pinned counter key uses.
    assert_eq!(key[3], summed.messages_sent);
}

#[test]
fn recovery_markers_bracket_replayed_supersteps() {
    let graph = Arc::new(generate(&profile_long()));
    let program = Arc::new(IcmBfs {
        source: source(&graph),
    });
    let baseline = bfs_run(&graph, TraceConfig::off(), None);
    let mut cfg = icm_cfg(TraceConfig::counters(), None);
    cfg.fault_plan = Some(FaultPlan::panic_at(1, 3));
    let r = try_run_icm_recoverable(&graph, program, &cfg, &RecoveryConfig::every(2))
        .expect("recoverable traced run must converge");
    assert_eq!(
        fnv1a(format!("{:?}", r.states).as_bytes()),
        baseline.0,
        "tracing a recovered run perturbed its digest"
    );
    assert_eq!(counter_key(&r.metrics), baseline.1);

    let events = &r.metrics.trace.events;
    let checkpoints = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Checkpoint { .. }))
        .count();
    let rollbacks: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Rollback { from_step, to_step } => Some((*from_step, *to_step)),
            _ => None,
        })
        .collect();
    assert!(checkpoints >= 1, "recoverable run must record checkpoints");
    assert_eq!(rollbacks.len(), 1, "one panic → one rollback marker");
    // `from_step` is the failed attempt's last *completed* step, so it can
    // equal the checkpoint step when the fault hit the very next superstep.
    let (from, to) = rollbacks[0];
    assert!(
        to <= from,
        "rollback must not fast-forward ({from} -> {to})"
    );

    // The trace is monotone across the rollback: the replayed attempt's
    // first StepEnd after the marker resumes at `to + 1`.
    let marker_pos = events
        .iter()
        .position(|e| matches!(e, TraceEvent::Rollback { .. }))
        .expect("marker present");
    let resumed = events[marker_pos..]
        .iter()
        .find_map(|e| match e {
            TraceEvent::StepEnd { step, .. } => Some(*step),
            _ => None,
        })
        .expect("replay must run supersteps");
    assert_eq!(
        resumed,
        to + 1,
        "replay must resume just after the checkpoint"
    );

    // Replayed WorkerSteps are *included*: the trace totals reconcile with
    // the run's counters, which also accumulate across the replay.
    let mut summed = UserCounters::default();
    for ev in events {
        if let TraceEvent::WorkerStep { counters, .. } = ev {
            summed += *counters;
        }
    }
    assert_eq!(
        summed, r.metrics.counters,
        "recovered-run WorkerStep sums != RunMetrics"
    );
}
