//! Allocation regression guard for the routing hot path: on a steady
//! workload (constant message volume per superstep) the engine's reusable
//! routing buffers — per-worker outboxes, the inbox double-buffer, the
//! shared wire buffer — must stop growing after the two ramp-up
//! supersteps. `RunMetrics::routing_growths` counts supersteps (after the
//! second) whose exchange grew any of those capacities; a steady run must
//! report zero, and this test pins that.
//!
//! A deliberately growing workload (message volume doubling every
//! superstep) must report growth — proving the counter actually observes
//! the buffers and the steady zero is not vacuous.

use graphite_bsp::aggregate::Aggregators;
use graphite_bsp::engine::{run_bsp, BspConfig, Inbox, Outbox, WorkerLogic};
use graphite_bsp::metrics::{RunMetrics, UserCounters};
use graphite_bsp::partition::PartitionMap;
use graphite_bsp::trace::TraceSink;
use graphite_tgraph::builder::TemporalGraphBuilder;
use graphite_tgraph::graph::{EdgeId, TemporalGraph, VIdx, VertexId};
use graphite_tgraph::time::Interval;
use std::sync::Arc;

fn ring(n: u64) -> TemporalGraph {
    let mut b = TemporalGraphBuilder::new();
    for i in 0..n {
        b.add_vertex(VertexId(i), Interval::new(0, 10)).unwrap();
    }
    for i in 0..n {
        b.add_edge(
            EdgeId(i),
            VertexId(i),
            VertexId((i + 1) % n),
            Interval::new(0, 10),
        )
        .unwrap();
    }
    b.build().unwrap()
}

/// Every owned vertex sends `volume(step)` messages to its ring successor
/// while `step <= steps`; the run halts when volume drops to zero.
struct VolumeLogic {
    graph: Arc<TemporalGraph>,
    owned: Vec<VIdx>,
    steps: u64,
    volume: fn(u64) -> u64,
}

impl WorkerLogic for VolumeLogic {
    type Msg = u64;
    fn superstep(
        &mut self,
        step: u64,
        _inbox: &Inbox<u64>,
        outbox: &mut Outbox<u64>,
        _globals: &Aggregators,
        _partial: &mut Aggregators,
        counters: &mut UserCounters,
        _sink: &mut TraceSink,
    ) {
        if step > self.steps {
            return;
        }
        for &v in &self.owned {
            counters.compute_calls += 1;
            let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
            for k in 0..(self.volume)(step) {
                outbox.send(next, step * 1000 + k);
            }
        }
    }
}

fn run_volume(workers: usize, steps: u64, volume: fn(u64) -> u64) -> RunMetrics {
    let graph = Arc::new(ring(12));
    let partition = Arc::new(PartitionMap::hash(&graph, workers).expect("partition"));
    let logics = (0..workers)
        .map(|w| VolumeLogic {
            graph: Arc::clone(&graph),
            owned: partition.owned_by(w),
            steps,
            volume,
        })
        .collect();
    let (_, metrics) = run_bsp(&BspConfig::default(), logics, partition, None).unwrap();
    metrics
}

#[test]
fn steady_workload_allocates_nothing_after_ramp_up() {
    // Constant volume for 12 supersteps: every buffer reaches its working
    // capacity during the two uncounted ramp-up steps, so steps 3..12 must
    // route entirely through retained capacity.
    let metrics = run_volume(3, 12, |_| 4);
    assert_eq!(metrics.supersteps, 13, "run shape changed");
    assert!(metrics.counters.remote_messages > 0, "no remote traffic");
    assert_eq!(
        metrics.routing_growths, 0,
        "steady workload grew routing buffers after superstep 2"
    );
}

#[test]
fn steady_workload_is_allocation_free_on_one_worker_too() {
    // Single worker: the all-local path (no wire buffer involved).
    let metrics = run_volume(1, 12, |_| 4);
    assert_eq!(metrics.routing_growths, 0);
}

#[test]
fn growing_workload_is_observed_by_the_counter() {
    // Volume doubles every superstep, so every post-ramp exchange must
    // grow some buffer: the zero above is not vacuously true.
    let metrics = run_volume(3, 8, |step| 1 << step);
    assert!(
        metrics.routing_growths > 0,
        "doubling workload reported no growth — counter is blind"
    );
}
