//! Schedule-perturbation race harness (DESIGN.md §10).
//!
//! The BSP substrate promises bit-identical results regardless of worker
//! scheduling: partitioned compute plus a deterministic exchange means no
//! execution order visible to user logic may depend on thread timing.
//! `BspConfig::perturb_schedule` makes the claim testable — it permutes
//! every scheduling freedom the engine has (worker join order, exchange
//! routing order, destination delivery order of remote batches) with a
//! seeded PRNG, while preserving per-(src, dst) FIFO.
//!
//! This harness reruns BFS (time-independent) and EAT (time-dependent)
//! under ICM, and BFS under the VCM baseline, on two generator profiles
//! (long-lifespan "Twitter-like" and unit-lifespan "GPlus-like"), across
//! 8 perturbation seeds plus the unperturbed schedule, and asserts the
//! result digests and deterministic metric counters are identical. Any
//! hidden order dependence — a hash-ordered loop feeding message
//! emission, a non-commutative aggregator fold — shows up as a digest
//! mismatch under some seed.

use graphite_algorithms::bfs::{IcmBfs, VcmBfs};
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_baselines::vcm::{try_run_vcm, VcmConfig};
use graphite_baselines::{EdgeWeights, SnapshotTopology};
use graphite_bsp::metrics::RunMetrics;
use graphite_bsp::trace::TraceConfig;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, IcmConfig};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::sync::Arc;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xDEAD_BEEF, u64::MAX];
const WORKERS: usize = 4;

/// Long-lifespan profile: edges persist across most snapshots, so warp
/// aggregation and interval coalescing carry real work.
fn profile_long() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 16,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 12.0 },
        props: PropModel {
            mean_segment: 6.0,
            max_cost: 10,
            max_travel_time: 3,
        },
        seed: 7,
    }
}

/// Unit-lifespan profile: every edge lives one time-point — maximal
/// message fan-out per superstep, warp suppression territory.
fn profile_unit() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 8,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Unit,
        props: PropModel {
            mean_segment: 1.0,
            max_cost: 10,
            max_travel_time: 2,
        },
        seed: 11,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

/// FNV-1a over a deterministic rendering of a result.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The scheduling-invariant slice of the metrics: timing is excluded,
/// everything counted in messages/calls/bytes must be exact.
fn counter_key(m: &RunMetrics) -> [u64; 8] {
    [
        m.supersteps,
        m.counters.compute_calls,
        m.counters.scatter_calls,
        m.counters.messages_sent,
        m.counters.remote_messages,
        m.counters.bytes_sent,
        m.counters.warp_invocations,
        m.counters.warp_suppressions,
    ]
}

fn icm_cfg(perturb: Option<u64>) -> IcmConfig {
    IcmConfig {
        workers: WORKERS,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: perturb,
        trace: TraceConfig::default(),
        fault_plan: None,
        partition: Default::default(),
    }
}

fn vcm_cfg(perturb: Option<u64>) -> VcmConfig {
    VcmConfig {
        workers: WORKERS,
        max_supersteps: 10_000,
        superstep_budget: None,
        need_in_edges: false,
        keep_per_step_timing: false,
        perturb_schedule: perturb,
        trace: TraceConfig::default(),
        fault_plan: None,
        partition: Default::default(),
    }
}

/// Runs one ICM program under `perturb` and digests (states, counters).
fn icm_fingerprint<P>(
    graph: &Arc<TemporalGraph>,
    program: &Arc<P>,
    perturb: Option<u64>,
) -> (u64, [u64; 8])
where
    P: graphite_icm::program::IntervalProgram<State = i64>,
{
    let r = try_run_icm(graph, Arc::clone(program), &icm_cfg(perturb))
        .expect("perturbed ICM run must succeed");
    // BTreeMap renders in vid order; the interval lists are canonical
    // (sorted, coalesced) by construction.
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        counter_key(&r.metrics),
    )
}

fn vcm_fingerprint(
    topo: &Arc<SnapshotTopology>,
    program: &Arc<VcmBfs>,
    perturb: Option<u64>,
) -> (u64, [u64; 8]) {
    let r = try_run_vcm(topo, Arc::clone(program), &vcm_cfg(perturb))
        .expect("perturbed VCM run must succeed");
    let mut states: Vec<(u32, i64)> = r.states.into_iter().collect();
    states.sort_unstable();
    (
        fnv1a(format!("{states:?}").as_bytes()),
        counter_key(&r.metrics),
    )
}

/// Asserts the baseline fingerprint survives every perturbation seed.
fn assert_invariant(
    label: &str,
    baseline: (u64, [u64; 8]),
    mut rerun: impl FnMut(u64) -> (u64, [u64; 8]),
) {
    for seed in SEEDS {
        let (digest, counters) = rerun(seed);
        assert_eq!(
            digest, baseline.0,
            "{label}: result digest diverged under perturbation seed {seed:#x}"
        );
        assert_eq!(
            counters, baseline.1,
            "{label}: metric counters diverged under perturbation seed {seed:#x}"
        );
    }
}

#[test]
fn icm_bfs_is_schedule_invariant() {
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let program = Arc::new(IcmBfs {
            source: source(&graph),
        });
        let baseline = icm_fingerprint(&graph, &program, None);
        assert_invariant(&format!("ICM/BFS/{name}"), baseline, |seed| {
            icm_fingerprint(&graph, &program, Some(seed))
        });
    }
}

#[test]
fn icm_eat_is_schedule_invariant() {
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let program = Arc::new(IcmEat {
            source: source(&graph),
            start: 0,
            labels: AlgLabels::resolve(&graph),
        });
        let baseline = icm_fingerprint(&graph, &program, None);
        assert_invariant(&format!("ICM/EAT/{name}"), baseline, |seed| {
            icm_fingerprint(&graph, &program, Some(seed))
        });
    }
}

#[test]
fn vcm_bfs_is_schedule_invariant() {
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let weights = EdgeWeights {
            w1: graph.label("travel-cost"),
            w2: graph.label("travel-time"),
        };
        // A mid-horizon snapshot so the topology is neither empty nor
        // degenerate under the unit-lifespan profile.
        let topo = Arc::new(SnapshotTopology::new(
            Arc::clone(&graph),
            params.snapshots / 2,
            weights,
        ));
        let program = Arc::new(VcmBfs {
            source: source(&graph),
        });
        let baseline = vcm_fingerprint(&topo, &program, None);
        assert_invariant(&format!("VCM/BFS/{name}"), baseline, |seed| {
            vcm_fingerprint(&topo, &program, Some(seed))
        });
    }
}

/// The perturbation must actually perturb: with multiple workers the
/// engine's join/route/dst orders under a nonzero seed differ from the
/// identity schedule somewhere in an 8-superstep run. This guards against
/// the harness silently testing nothing (e.g. `perturb_schedule` being
/// dropped on the floor).
#[test]
fn perturbation_changes_the_schedule() {
    use graphite_bsp::engine::schedule_order;
    let identity: Vec<usize> = (0..WORKERS).collect();
    let mut saw_difference = false;
    for step in 0..8u64 {
        for salt in [0x4a4f_494e_u64, 0x524f_5554, 0x4445_5354] {
            if schedule_order(WORKERS, Some(1), step, salt) != identity {
                saw_difference = true;
            }
        }
    }
    assert!(
        saw_difference,
        "seed 1 never permuted any schedule in 8 steps"
    );
}
