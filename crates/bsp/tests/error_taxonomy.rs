//! The [`BspError`] taxonomy contract: every variant has a stable
//! `Display` rendering, a stable machine-readable `kind()` tag, and an
//! explicit transience classification.
//!
//! `graphite serve` writes `kind()` into JSONL error rows and clients
//! grep `Display` output, so both are *wire formats*: this test pins the
//! exact strings, table-driven over one exemplar per variant. Changing a
//! message is allowed — but it must be a deliberate edit here, not an
//! accident elsewhere. The table is also the exhaustiveness backstop:
//! `all_variants` constructs every variant, and `is_transient`/`kind`
//! match on all of them without a `_` arm, so a new variant fails to
//! compile until it is classified *and* fails this test until it is
//! pinned.

use graphite_bsp::error::BspError;

/// One exemplar of every variant, with its pinned `kind` tag, pinned
/// `Display` rendering, and expected classification flags
/// `(is_recoverable, is_transient)`.
fn all_variants() -> Vec<(BspError, &'static str, String, (bool, bool))> {
    vec![
        (
            BspError::WorkerPanicked {
                step: 7,
                workers: vec![(1, "boom".into()), (3, "bang".into())],
            },
            "worker_panicked",
            "2 worker(s) panicked in superstep 7: worker 1 (boom), worker 3 (bang)".into(),
            (true, true),
        ),
        (
            BspError::Codec {
                worker: 2,
                step: 5,
                detail: "vid varint",
            },
            "codec",
            "self-encoded batch for worker 2 failed to decode in superstep 5: vid varint".into(),
            (true, true),
        ),
        (
            BspError::Config {
                detail: "0 workers requested".into(),
            },
            "config",
            "invalid configuration: 0 workers requested".into(),
            (false, false),
        ),
        (
            BspError::WorkerMismatch {
                logics: 2,
                partitions: 4,
            },
            "worker_mismatch",
            "2 worker logics supplied for 4 partitions".into(),
            (false, false),
        ),
        (
            BspError::SuperstepLimit { limit: 42 },
            "superstep_limit",
            "run did not converge within 42 supersteps".into(),
            (false, false),
        ),
        (
            BspError::Checkpoint {
                detail: "truncated blob".into(),
            },
            "checkpoint",
            "checkpoint failure: truncated blob".into(),
            (false, true),
        ),
        (
            BspError::Admission {
                estimated_cost: 900,
                budget: 500,
                occupancy: 6,
            },
            "admission",
            "query rejected by admission control: estimated cost 900 exceeds remaining \
             budget (total 500, 6 queries queued or in flight)"
                .into(),
            (false, false),
        ),
        (
            BspError::RecoveryExhausted {
                attempts: 3,
                last: Box::new(BspError::SuperstepLimit { limit: 42 }),
                history: vec![BspError::SuperstepLimit { limit: 42 }],
            },
            "recovery_exhausted",
            "recovery exhausted after 3 attempt(s) (1 fault(s) observed); last: \
             run did not converge within 42 supersteps"
                .into(),
            (false, true),
        ),
        (
            BspError::BudgetExceeded { budget: 17 },
            "budget_exceeded",
            "query exceeded its superstep budget of 17".into(),
            (false, false),
        ),
        (
            BspError::Quarantined {
                digest: 0xABCD,
                failures: 4,
            },
            "quarantined",
            "query 0x000000000000abcd is quarantined after 4 terminal failure(s); \
             resubmit after decay"
                .into(),
            (false, false),
        ),
        (
            BspError::Shed {
                occupancy: 9,
                watermark: 8,
            },
            "shed",
            "query shed under load: pending depth 9 crossed the shed watermark 8".into(),
            (false, false),
        ),
    ]
}

#[test]
fn display_renderings_are_stable() {
    for (err, kind, display, _) in all_variants() {
        assert_eq!(
            err.to_string(),
            display,
            "Display of `{kind}` drifted — if deliberate, update the pin"
        );
    }
}

#[test]
fn kind_tags_are_stable_and_unique() {
    let variants = all_variants();
    for (err, kind, _, _) in &variants {
        assert_eq!(err.kind(), *kind, "kind tag drifted for {err}");
        assert!(
            kind.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
            "kind tags are snake_case tokens, got {kind:?}"
        );
    }
    let mut tags: Vec<&str> = variants.iter().map(|(_, k, _, _)| *k).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(
        tags.len(),
        variants.len(),
        "two variants share a kind tag — JSONL rows would be ambiguous"
    );
}

#[test]
fn transience_classification_is_pinned_per_variant() {
    for (err, kind, _, (recoverable, transient)) in all_variants() {
        assert_eq!(
            err.is_recoverable(),
            recoverable,
            "is_recoverable drifted for `{kind}`"
        );
        assert_eq!(
            err.is_transient(),
            transient,
            "is_transient drifted for `{kind}`"
        );
        // Rollback-recoverable faults are by definition transient at the
        // serving layer too: a retry re-enters the recovery driver.
        if recoverable {
            assert!(transient, "`{kind}` is recoverable but not transient");
        }
    }
}
