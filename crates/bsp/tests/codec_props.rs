//! Property-based verification of the wire codec: every encodable value
//! round-trips exactly, decoders consume exactly their own bytes (so
//! concatenated streams reframe correctly), and the compact interval
//! encoding is never larger than the fixed one for workload-like inputs.

use graphite_bsp::codec::{
    get_interval, get_signed, get_varint, put_interval, put_interval_fixed, put_signed,
    put_varint, Wire,
};
use graphite_tgraph::time::{Interval, TIME_MAX, TIME_MIN};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    prop_oneof![
        // Bounded, workload-like coordinates.
        (-1000i64..1000, 1i64..500).prop_map(|(s, l)| Interval::new(s, s + l)),
        // Unit points.
        (-1000i64..1000).prop_map(Interval::point),
        // Right-unbounded (the SSSP message shape).
        (-1000i64..1000).prop_map(Interval::from_start),
        // Left-unbounded (the LD message shape).
        (-1000i64..1000).prop_map(Interval::until),
        Just(Interval::all()),
        // Extreme finite coordinates.
        Just(Interval::new(TIME_MIN + 1, TIME_MAX - 1)),
    ]
}

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint(v, &mut buf);
        let mut s = buf.as_slice();
        prop_assert_eq!(get_varint(&mut s), Some(v));
        prop_assert!(s.is_empty());
    }

    #[test]
    fn signed_round_trips(v in any::<i64>()) {
        let mut buf = Vec::new();
        put_signed(v, &mut buf);
        let mut s = buf.as_slice();
        prop_assert_eq!(get_signed(&mut s), Some(v));
        prop_assert!(s.is_empty());
    }

    #[test]
    fn interval_round_trips(iv in interval_strategy()) {
        let mut buf = Vec::new();
        put_interval(iv, &mut buf);
        let mut s = buf.as_slice();
        prop_assert_eq!(get_interval(&mut s), Some(iv));
        prop_assert!(s.is_empty());
    }

    /// Concatenated streams reframe exactly — the router's batch decode
    /// depends on this.
    #[test]
    fn concatenated_intervals_reframe(ivs in proptest::collection::vec(interval_strategy(), 0..20)) {
        let mut buf = Vec::new();
        for &iv in &ivs {
            put_interval(iv, &mut buf);
        }
        let mut s = buf.as_slice();
        for &iv in &ivs {
            prop_assert_eq!(get_interval(&mut s), Some(iv));
        }
        prop_assert!(s.is_empty());
    }

    /// The compact encoding never exceeds the fixed 16-byte pair (plus its
    /// one flag byte) and is dramatically smaller for degenerate shapes.
    #[test]
    fn compact_never_larger_than_fixed_plus_flag(iv in interval_strategy()) {
        let mut compact = Vec::new();
        put_interval(iv, &mut compact);
        let mut fixed = Vec::new();
        put_interval_fixed(iv, &mut fixed);
        prop_assert!(compact.len() <= fixed.len() + 5, "{} -> {}", iv, compact.len());
        if iv.is_unit() || iv.end() == TIME_MAX || iv.start() == TIME_MIN {
            prop_assert!(compact.len() <= 11, "{} -> {}", iv, compact.len());
        }
    }

    /// Composite message payloads (interval, value) round-trip — the exact
    /// shape the ICM engine ships.
    #[test]
    fn icm_message_round_trips(iv in interval_strategy(), v in any::<i64>()) {
        let msg = (iv, v);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let mut s = buf.as_slice();
        prop_assert_eq!(<(Interval, i64)>::decode(&mut s), Some(msg));
        prop_assert!(s.is_empty());
    }

    /// Truncated buffers never panic and never fabricate values.
    #[test]
    fn truncation_is_rejected(iv in interval_strategy(), cut in 0usize..16) {
        let mut buf = Vec::new();
        put_interval(iv, &mut buf);
        if cut < buf.len() {
            let truncated = &buf[..cut];
            let mut s = truncated;
            // Either the decode fails, or (when the prefix happens to be a
            // complete shorter encoding) it must consume only the prefix.
            if let Some(got) = get_interval(&mut s) {
                prop_assert!(s.len() < truncated.len() || got == iv);
            }
        }
    }
}
