//! Property-based verification of the wire codec: every encodable value
//! round-trips exactly, decoders consume exactly their own bytes (so
//! concatenated streams reframe correctly), the compact interval encoding
//! is never larger than the fixed one for workload-like inputs, and no
//! input — truncated, corrupted or random — makes a decoder panic.
//!
//! Randomized cases are driven by the in-tree [`SplitMix64`] generator with
//! fixed seeds, so every run explores the same (large) case set and a
//! failure reproduces exactly.

use graphite_bsp::codec::{
    decode_batch, encode_batch, get_interval, get_interval_fixed, get_signed, get_varint,
    put_interval, put_interval_fixed, put_signed, put_varint, Wire, BATCH_TRAILER,
};
use graphite_tgraph::graph::VIdx;
use graphite_tgraph::rng::SplitMix64;
use graphite_tgraph::time::{Interval, TIME_MAX, TIME_MIN};

const CASES: usize = 2000;

/// Draws intervals with the same shape mix the old proptest strategy used:
/// bounded workload-like spans, unit points, half-unbounded rays (the SSSP
/// and LD message shapes), the full line, and extreme finite coordinates.
fn rand_interval(rng: &mut SplitMix64) -> Interval {
    match rng.bounded(6) {
        0 => {
            let s = rng.range_i64(-1000, 1000);
            let l = rng.range_i64(1, 500);
            Interval::new(s, s + l)
        }
        1 => Interval::point(rng.range_i64(-1000, 1000)),
        2 => Interval::from_start(rng.range_i64(-1000, 1000)),
        3 => Interval::until(rng.range_i64(-1000, 1000)),
        4 => Interval::all(),
        _ => Interval::new(TIME_MIN + 1, TIME_MAX - 1),
    }
}

#[test]
fn varint_round_trips() {
    let mut rng = SplitMix64::new(0x0C0D_EC01);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let mut buf = Vec::new();
        put_varint(v, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(get_varint(&mut s), Some(v));
        assert!(s.is_empty());
    }
}

#[test]
fn signed_round_trips() {
    let mut rng = SplitMix64::new(0x0C0D_EC02);
    for _ in 0..CASES {
        let v = rng.next_u64() as i64;
        let mut buf = Vec::new();
        put_signed(v, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(get_signed(&mut s), Some(v));
        assert!(s.is_empty());
    }
}

#[test]
fn interval_round_trips() {
    let mut rng = SplitMix64::new(0x0C0D_EC03);
    for _ in 0..CASES {
        let iv = rand_interval(&mut rng);
        let mut buf = Vec::new();
        put_interval(iv, &mut buf);
        let mut s = buf.as_slice();
        assert_eq!(get_interval(&mut s), Some(iv), "{iv}");
        assert!(s.is_empty());
    }
}

/// The ±∞ / unit-length flag boundaries, exhaustively: every combination
/// of an extreme or near-extreme start with an extreme, near-extreme or
/// unit-distance end that forms a valid interval must round-trip through
/// both the compact and the fixed codec.
#[test]
fn flag_boundary_round_trips() {
    let starts = [
        TIME_MIN,
        TIME_MIN + 1,
        TIME_MIN + 2,
        -1,
        0,
        1,
        TIME_MAX - 2,
        TIME_MAX - 1,
    ];
    let ends = [
        TIME_MIN + 1,
        TIME_MIN + 2,
        -1,
        0,
        1,
        2,
        TIME_MAX - 1,
        TIME_MAX,
    ];
    let mut checked = 0;
    for &s in &starts {
        for &e in &ends {
            let Some(iv) = Interval::try_new(s, e) else {
                continue;
            };
            checked += 1;
            let mut compact = Vec::new();
            put_interval(iv, &mut compact);
            let mut c = compact.as_slice();
            assert_eq!(get_interval(&mut c), Some(iv), "compact {iv}");
            assert!(c.is_empty(), "compact {iv} left bytes");
            let mut fixed = Vec::new();
            put_interval_fixed(iv, &mut fixed);
            let mut f = fixed.as_slice();
            assert_eq!(get_interval_fixed(&mut f), Some(iv), "fixed {iv}");
            assert!(f.is_empty(), "fixed {iv} left bytes");
            // Unit-length spans adjacent to the boundaries exercise the
            // F_UNIT flag against the F_TO_INF/F_FROM_NEG_INF ones.
            if s.checked_add(1) == Some(e) || s == TIME_MIN || e == TIME_MAX {
                assert!(compact.len() <= 11, "{iv} -> {} bytes", compact.len());
            }
        }
    }
    assert!(
        checked > 30,
        "boundary grid unexpectedly sparse ({checked})"
    );
}

/// Concatenated streams reframe exactly — the router's batch decode
/// depends on this.
#[test]
fn concatenated_intervals_reframe() {
    let mut rng = SplitMix64::new(0x0C0D_EC04);
    for _ in 0..200 {
        let ivs: Vec<Interval> = (0..rng.index(20))
            .map(|_| rand_interval(&mut rng))
            .collect();
        let mut buf = Vec::new();
        for &iv in &ivs {
            put_interval(iv, &mut buf);
        }
        let mut s = buf.as_slice();
        for &iv in &ivs {
            assert_eq!(get_interval(&mut s), Some(iv));
        }
        assert!(s.is_empty());
    }
}

/// The compact encoding never exceeds the fixed 16-byte pair (plus its one
/// flag byte) and is dramatically smaller for degenerate shapes.
#[test]
fn compact_never_larger_than_fixed_plus_flag() {
    let mut rng = SplitMix64::new(0x0C0D_EC05);
    for _ in 0..CASES {
        let iv = rand_interval(&mut rng);
        let mut compact = Vec::new();
        put_interval(iv, &mut compact);
        let mut fixed = Vec::new();
        put_interval_fixed(iv, &mut fixed);
        assert!(
            compact.len() <= fixed.len() + 5,
            "{} -> {}",
            iv,
            compact.len()
        );
        if iv.is_unit() || iv.end() == TIME_MAX || iv.start() == TIME_MIN {
            assert!(compact.len() <= 11, "{} -> {}", iv, compact.len());
        }
    }
}

/// Composite message payloads (interval, value) round-trip — the exact
/// shape the ICM engine ships.
#[test]
fn icm_message_round_trips() {
    let mut rng = SplitMix64::new(0x0C0D_EC06);
    for _ in 0..CASES {
        let msg = (rand_interval(&mut rng), rng.next_u64() as i64);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let mut s = buf.as_slice();
        assert_eq!(<(Interval, i64)>::decode(&mut s), Some(msg));
        assert!(s.is_empty());
    }
}

/// Truncated buffers never panic and never fabricate values.
#[test]
fn truncation_is_rejected() {
    let mut rng = SplitMix64::new(0x0C0D_EC07);
    for _ in 0..CASES {
        let iv = rand_interval(&mut rng);
        let mut buf = Vec::new();
        put_interval(iv, &mut buf);
        let cut = rng.index(16);
        if cut < buf.len() {
            let truncated = &buf[..cut];
            let mut s = truncated;
            // Either the decode fails, or (when the prefix happens to be a
            // complete shorter encoding) it must consume only the prefix.
            if let Some(got) = get_interval(&mut s) {
                assert!(s.len() < truncated.len() || got == iv);
            }
        }
    }
}

/// Fuzz-style corruption: flip bytes of valid encodings and feed raw
/// random byte soup to every decoder. Decoders must return `None` or a
/// (possibly different) valid value — never panic, never loop, never
/// consume past their input.
#[test]
fn corrupted_input_fails_gracefully() {
    let mut rng = SplitMix64::new(0x0C0D_EC08);
    for _ in 0..CASES {
        // Start from a valid composite encoding and corrupt one byte.
        let msg = (rand_interval(&mut rng), rng.next_u64() as i64);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let pos = rng.index(buf.len());
        buf[pos] ^= (rng.bounded(255) + 1) as u8;
        let mut s = buf.as_slice();
        if let Some((iv, _)) = <(Interval, i64)>::decode(&mut s) {
            // Whatever decoded must satisfy the Interval invariant
            // (start < end) — try_new inside the codec guarantees it.
            assert!(
                iv.start() < iv.end(),
                "corrupt decode broke the invariant: {iv}"
            );
        }
        assert!(s.len() <= buf.len());
    }
    for _ in 0..CASES {
        // Pure random byte soup against every decoder entry point.
        let soup: Vec<u8> = (0..rng.index(40)).map(|_| rng.next_u64() as u8).collect();
        let mut s = soup.as_slice();
        let _ = get_interval(&mut s);
        let mut s = soup.as_slice();
        let _ = get_interval_fixed(&mut s);
        let mut s = soup.as_slice();
        let _ = get_varint(&mut s);
        let mut s = soup.as_slice();
        let _ = get_signed(&mut s);
        let mut s = soup.as_slice();
        let _ = Vec::<u64>::decode(&mut s);
        let mut s = soup.as_slice();
        let _ = Option::<(Interval, i64)>::decode(&mut s);
        let mut s = soup.as_slice();
        let _ = <(u64, i64, Interval)>::decode(&mut s);
        let mut s = soup.as_slice();
        let _ = f64::decode(&mut s);
        let mut s = soup.as_slice();
        let _ = bool::decode(&mut s);
    }
}

/// Draws a routed batch shaped like real ICM traffic: `(vertex, (interval,
/// value))` pairs with repeated destination vertices.
fn rand_batch(rng: &mut SplitMix64) -> Vec<(VIdx, (Interval, i64))> {
    (0..1 + rng.index(24))
        .map(|_| {
            (
                VIdx(rng.bounded(64) as u32),
                (rand_interval(rng), rng.next_u64() as i64),
            )
        })
        .collect()
}

/// Any truncation of an encoded batch — seeded, across many batch shapes —
/// is rejected by [`decode_batch`] before a single message is delivered.
/// This is the integrity contract the recovery layer leans on: a faulted
/// exchange surfaces as `BspError::Codec`, never as silently-partial
/// delivery that a rollback could not undo.
#[test]
fn batch_truncation_always_errors_and_delivers_nothing() {
    let mut rng = SplitMix64::new(0x0C0D_EC09);
    for _ in 0..500 {
        let batch = rand_batch(&mut rng);
        let mut wire = Vec::new();
        encode_batch(&batch, &mut wire);
        assert!(wire.len() > BATCH_TRAILER);
        // Every strictly-shorter prefix, plus a seeded sample of deeper
        // cuts for large batches.
        let cuts: Vec<usize> = (0..4)
            .map(|_| rng.index(wire.len()))
            .chain([0, wire.len() - 1, wire.len() - BATCH_TRAILER])
            .collect();
        for cut in cuts {
            let mut delivered = 0u32;
            let res =
                decode_batch::<(Interval, i64)>(&wire[..cut], batch.len(), |_, _| delivered += 1);
            assert!(res.is_err(), "truncation to {cut} bytes went undetected");
            assert_eq!(delivered, 0, "truncated batch delivered messages");
        }
    }
}

/// Any single-bit flip anywhere in an encoded batch — payload or trailer —
/// is caught by the FNV-1a checksum: [`decode_batch`] errors and delivers
/// nothing. Single-bit detection is certain (each checksum step is a
/// bijection of the running hash), which is exactly the corruption the
/// fault injector's `FaultKind::WireCorruption` performs.
#[test]
fn batch_bit_flips_always_error_and_deliver_nothing() {
    let mut rng = SplitMix64::new(0x0C0D_EC0A);
    for _ in 0..300 {
        let batch = rand_batch(&mut rng);
        let mut wire = Vec::new();
        encode_batch(&batch, &mut wire);
        // A seeded sample of flip positions, always including the first
        // byte, the last payload byte and every trailer byte.
        let mut flips: Vec<usize> = (0..6).map(|_| rng.index(wire.len())).collect();
        flips.push(0);
        flips.push(wire.len() - BATCH_TRAILER - 1);
        flips.extend(wire.len() - BATCH_TRAILER..wire.len());
        for pos in flips {
            let mut corrupt = wire.clone();
            corrupt[pos] ^= 1 << rng.bounded(8);
            let mut delivered = 0u32;
            let res = decode_batch::<(Interval, i64)>(&corrupt, batch.len(), |_, _| delivered += 1);
            assert!(res.is_err(), "bit flip at byte {pos} went undetected");
            assert_eq!(delivered, 0, "corrupted batch delivered messages");
        }
    }
}

/// The checksum also pins the *count*: decoding a valid frame with the
/// wrong expected count errors rather than under- or over-delivering.
#[test]
fn batch_count_mismatch_is_rejected() {
    let mut rng = SplitMix64::new(0x0C0D_EC0B);
    for _ in 0..200 {
        let batch = rand_batch(&mut rng);
        let mut wire = Vec::new();
        encode_batch(&batch, &mut wire);
        for wrong in [0, batch.len().saturating_sub(1), batch.len() + 1] {
            if wrong == batch.len() {
                continue;
            }
            let res = decode_batch::<(Interval, i64)>(&wire, wrong, |_, _| {});
            assert!(res.is_err(), "count {wrong} for {} accepted", batch.len());
        }
    }
}
