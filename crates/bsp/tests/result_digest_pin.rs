//! Pinned result digests: the schedule-perturbation fingerprints of four
//! reference runs, recorded before the warp/routing hot-path optimization.
//! Any change to these digests means the optimization altered observable
//! results or deterministic counters — which it must never do.

use graphite_algorithms::bfs::IcmBfs;
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_bsp::metrics::RunMetrics;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, IcmConfig};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::sync::Arc;

fn profile_long() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 16,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 12.0 },
        props: PropModel {
            mean_segment: 6.0,
            max_cost: 10,
            max_travel_time: 3,
        },
        seed: 7,
    }
}

fn profile_unit() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 8,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Unit,
        props: PropModel {
            mean_segment: 1.0,
            max_cost: 10,
            max_travel_time: 2,
        },
        seed: 11,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn counter_key(m: &RunMetrics) -> [u64; 8] {
    [
        m.supersteps,
        m.counters.compute_calls,
        m.counters.scatter_calls,
        m.counters.messages_sent,
        m.counters.remote_messages,
        m.counters.bytes_sent,
        m.counters.warp_invocations,
        m.counters.warp_suppressions,
    ]
}

fn fingerprint<P>(graph: &Arc<TemporalGraph>, program: Arc<P>) -> (u64, [u64; 8])
where
    P: graphite_icm::program::IntervalProgram<State = i64>,
{
    let cfg = IcmConfig {
        workers: 4,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        keep_per_step_timing: false,
        perturb_schedule: None,
    };
    let r = try_run_icm(Arc::clone(graph), program, &cfg).expect("pinned run must succeed");
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        counter_key(&r.metrics),
    )
}

/// Recorded on the pre-optimization (sort-based warp, allocating router)
/// engine; every entry is (state digest, deterministic counter key).
const PINS: [(&str, u64, [u64; 8]); 4] = [
    (
        "bfs/long",
        0x0727_4081_2ec0_284e,
        [13, 2618, 2398, 2398, 1802, 8355, 466, 297],
    ),
    (
        "eat/long",
        0x189c_95d8_c097_8d98,
        [8, 979, 1137, 1137, 823, 3419, 384, 0],
    ),
    (
        "bfs/unit",
        0xf82a_6ff7_2008_b542,
        [7, 168, 18, 18, 17, 70, 0, 18],
    ),
    (
        "eat/unit",
        0xefaf_9de7_b9b6_5af3,
        [6, 172, 42, 42, 31, 125, 38, 0],
    ),
];

#[test]
fn fingerprints_match_pre_optimization_recording() {
    let mut got: Vec<(String, u64, [u64; 8])> = Vec::new();
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let bfs = fingerprint(
            &graph,
            Arc::new(IcmBfs {
                source: source(&graph),
            }),
        );
        got.push((format!("bfs/{name}"), bfs.0, bfs.1));
        let eat = fingerprint(
            &graph,
            Arc::new(IcmEat {
                source: source(&graph),
                start: 0,
                labels: AlgLabels::resolve(&graph),
            }),
        );
        got.push((format!("eat/{name}"), eat.0, eat.1));
    }
    for (label, digest, counters) in PINS {
        let Some(actual) = got.iter().find(|(l, _, _)| l == label) else {
            panic!("pin {label} was not computed");
        };
        assert_eq!(
            actual.1, digest,
            "{label}: state digest diverged from the pre-optimization recording"
        );
        assert_eq!(
            actual.2, counters,
            "{label}: counter key diverged from the pre-optimization recording"
        );
    }
}
