//! Pinned result digests: the schedule-perturbation fingerprints of four
//! reference runs, recorded before the warp/routing hot-path optimization.
//! Any change to these digests means the optimization altered observable
//! results or deterministic counters — which it must never do.
//!
//! The fault-matrix tests extend the same pinning to the recovery layer:
//! a run that faults (worker panic or wire bit-flip), rolls back to a
//! checkpoint, and replays must land on the *bit-identical* digest and
//! deterministic counter key of the fault-free run — recovery is
//! observable only in the [`RecoveryMetrics`] counters, which never enter
//! digests. A persistent fault must exhaust the retry budget and report
//! [`BspError::RecoveryExhausted`], never a wrong answer.

use graphite_algorithms::bfs::{IcmBfs, VcmBfs};
use graphite_algorithms::td_paths::IcmEat;
use graphite_algorithms::AlgLabels;
use graphite_baselines::vcm::{try_run_vcm, try_run_vcm_recoverable, VcmConfig};
use graphite_baselines::{EdgeWeights, SnapshotTopology};
use graphite_bsp::error::BspError;
use graphite_bsp::fault::{Fault, FaultKind, FaultMode, FaultPlan};
use graphite_bsp::metrics::{RecoveryMetrics, RunMetrics};
use graphite_bsp::recover::RecoveryConfig;
use graphite_bsp::trace::TraceConfig;
use graphite_datagen::{generate, GenParams, LifespanModel, PropModel, Topology};
use graphite_icm::engine::{try_run_icm, try_run_icm_recoverable, IcmConfig};
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use std::sync::Arc;

fn profile_long() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 16,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Geometric { mean: 12.0 },
        props: PropModel {
            mean_segment: 6.0,
            max_cost: 10,
            max_travel_time: 3,
        },
        seed: 7,
    }
}

fn profile_unit() -> GenParams {
    GenParams {
        vertices: 150,
        edges: 900,
        snapshots: 8,
        topology: Topology::PowerLaw {
            edges_per_vertex: 6,
        },
        vertex_lifespans: LifespanModel::Full,
        edge_lifespans: LifespanModel::Unit,
        props: PropModel {
            mean_segment: 1.0,
            max_cost: 10,
            max_travel_time: 2,
        },
        seed: 11,
    }
}

fn source(graph: &TemporalGraph) -> VertexId {
    graph
        .vertices()
        .map(|(_, v)| v.vid)
        .min()
        .expect("non-empty graph")
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn counter_key(m: &RunMetrics) -> [u64; 8] {
    [
        m.supersteps,
        m.counters.compute_calls,
        m.counters.scatter_calls,
        m.counters.messages_sent,
        m.counters.remote_messages,
        m.counters.bytes_sent,
        m.counters.warp_invocations,
        m.counters.warp_suppressions,
    ]
}

fn fingerprint<P>(graph: &Arc<TemporalGraph>, program: Arc<P>) -> (u64, [u64; 8])
where
    P: graphite_icm::program::IntervalProgram<State = i64>,
{
    let r = try_run_icm(graph, program, &icm_cfg(None, None)).expect("pinned run must succeed");
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        counter_key(&r.metrics),
    )
}

fn icm_cfg(fault_plan: Option<FaultPlan>, perturb: Option<u64>) -> IcmConfig {
    IcmConfig {
        workers: 4,
        combiner: true,
        suppression_threshold: Some(0.7),
        max_supersteps: 10_000,
        superstep_budget: None,
        keep_per_step_timing: false,
        perturb_schedule: perturb,
        trace: TraceConfig::default(),
        fault_plan,
        partition: Default::default(),
    }
}

fn vcm_cfg(fault_plan: Option<FaultPlan>, perturb: Option<u64>) -> VcmConfig {
    VcmConfig {
        workers: 4,
        max_supersteps: 10_000,
        superstep_budget: None,
        need_in_edges: false,
        keep_per_step_timing: false,
        perturb_schedule: perturb,
        trace: TraceConfig::default(),
        fault_plan,
        partition: Default::default(),
    }
}

/// Recorded on the pre-optimization (sort-based warp, allocating router)
/// engine; every entry is (state digest, deterministic counter key).
const PINS: [(&str, u64, [u64; 8]); 4] = [
    (
        "bfs/long",
        0x0727_4081_2ec0_284e,
        [13, 2618, 2398, 2398, 1802, 8355, 466, 297],
    ),
    (
        "eat/long",
        0x189c_95d8_c097_8d98,
        [8, 979, 1137, 1137, 823, 3419, 384, 0],
    ),
    (
        "bfs/unit",
        0xf82a_6ff7_2008_b542,
        [7, 168, 18, 18, 17, 70, 0, 18],
    ),
    (
        "eat/unit",
        0xefaf_9de7_b9b6_5af3,
        [6, 172, 42, 42, 31, 125, 38, 0],
    ),
];

#[test]
fn fingerprints_match_pre_optimization_recording() {
    let mut got: Vec<(String, u64, [u64; 8])> = Vec::new();
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let bfs = fingerprint(
            &graph,
            Arc::new(IcmBfs {
                source: source(&graph),
            }),
        );
        got.push((format!("bfs/{name}"), bfs.0, bfs.1));
        let eat = fingerprint(
            &graph,
            Arc::new(IcmEat {
                source: source(&graph),
                start: 0,
                labels: AlgLabels::resolve(&graph),
            }),
        );
        got.push((format!("eat/{name}"), eat.0, eat.1));
    }
    for (label, digest, counters) in PINS {
        let Some(actual) = got.iter().find(|(l, _, _)| l == label) else {
            panic!("pin {label} was not computed");
        };
        assert_eq!(
            actual.1, digest,
            "{label}: state digest diverged from the pre-optimization recording"
        );
        assert_eq!(
            actual.2, counters,
            "{label}: counter key diverged from the pre-optimization recording"
        );
    }
}

// ---------------------------------------------------------------------------
// Fault matrix: checkpoint/rollback recovery must be digest-invisible.
// ---------------------------------------------------------------------------

/// Supersteps at which matrix faults trigger. Both land inside every
/// workload here (the shortest pinned run takes 6 supersteps).
const FAULT_STEPS: [u64; 2] = [2, 3];

/// One matrix cell's plan: the fault kind alternates with cell parity so
/// both recoverable error classes (worker panic, wire corruption) are
/// exercised across the matrix. A wire-corruption cell may find no remote
/// batch bound for its worker at its step — then the fault never fires
/// and the cell degenerates to a fault-free run, which the digest
/// equality still covers.
fn matrix_plan(worker: usize, step: u64) -> (FaultPlan, FaultKind) {
    let kind = if (worker as u64 + step).is_multiple_of(2) {
        FaultKind::WorkerPanic
    } else {
        FaultKind::WireCorruption
    };
    let plan = FaultPlan {
        faults: vec![Fault {
            worker,
            step,
            kind,
            mode: FaultMode::Transient,
        }],
    };
    (plan, kind)
}

fn icm_recovered_fingerprint<P>(
    graph: &Arc<TemporalGraph>,
    program: &Arc<P>,
    plan: FaultPlan,
    perturb: Option<u64>,
) -> (u64, [u64; 8], RecoveryMetrics)
where
    P: graphite_icm::program::IntervalProgram<State = i64>,
{
    let r = try_run_icm_recoverable(
        graph,
        Arc::clone(program),
        &icm_cfg(Some(plan), perturb),
        &RecoveryConfig::every(2),
    )
    .expect("recoverable ICM run must converge");
    (
        fnv1a(format!("{:?}", r.states).as_bytes()),
        counter_key(&r.metrics),
        r.metrics.recovery,
    )
}

fn vcm_digest(states: std::collections::HashMap<u32, i64>) -> u64 {
    let mut states: Vec<(u32, i64)> = states.into_iter().collect();
    states.sort_unstable();
    fnv1a(format!("{states:?}").as_bytes())
}

fn vcm_topology(graph: &Arc<TemporalGraph>, params: &GenParams) -> Arc<SnapshotTopology> {
    let weights = EdgeWeights {
        w1: graph.label("travel-cost"),
        w2: graph.label("travel-time"),
    };
    Arc::new(SnapshotTopology::new(
        Arc::clone(graph),
        params.snapshots / 2,
        weights,
    ))
}

/// Asserts that every (worker, fault step) cell of the matrix recovers to
/// the given fault-free fingerprint, and that recovery left its only trace
/// in the recovery counters.
fn assert_matrix_recovers(
    label: &str,
    baseline: (u64, [u64; 8]),
    mut rerun: impl FnMut(FaultPlan) -> (u64, [u64; 8], RecoveryMetrics),
) {
    for worker in 0..4 {
        for step in FAULT_STEPS {
            let (plan, kind) = matrix_plan(worker, step);
            let (digest, counters, recovery) = rerun(plan);
            assert_eq!(
                digest, baseline.0,
                "{label}: recovered digest diverged (fault {kind:?} at worker {worker}, step {step})"
            );
            assert_eq!(
                counters, baseline.1,
                "{label}: recovered counters diverged (fault {kind:?} at worker {worker}, step {step})"
            );
            assert!(
                recovery.checkpoints_taken >= 1,
                "{label}: recoverable run must checkpoint"
            );
            if kind == FaultKind::WorkerPanic {
                assert_eq!(
                    recovery.rollbacks, 1,
                    "{label}: a panic at (w{worker}, s{step}) must trigger exactly one rollback"
                );
                assert!(recovery.supersteps_replayed >= 1);
            } else {
                assert!(
                    recovery.rollbacks <= 1,
                    "{label}: one transient corruption fault cannot roll back twice"
                );
            }
        }
    }
}

#[test]
fn recovered_icm_digests_match_fault_free() {
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let bfs = Arc::new(IcmBfs {
            source: source(&graph),
        });
        let eat = Arc::new(IcmEat {
            source: source(&graph),
            start: 0,
            labels: AlgLabels::resolve(&graph),
        });
        let bfs_base = fingerprint(&graph, Arc::clone(&bfs));
        assert_matrix_recovers(&format!("ICM/BFS/{name}"), bfs_base, |plan| {
            icm_recovered_fingerprint(&graph, &bfs, plan, None)
        });
        let eat_base = fingerprint(&graph, Arc::clone(&eat));
        assert_matrix_recovers(&format!("ICM/EAT/{name}"), eat_base, |plan| {
            icm_recovered_fingerprint(&graph, &eat, plan, None)
        });
    }
}

#[test]
fn recovered_vcm_digests_match_fault_free() {
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let topo = vcm_topology(&graph, &params);
        let program = Arc::new(VcmBfs {
            source: source(&graph),
        });
        let base = try_run_vcm(&topo, Arc::clone(&program), &vcm_cfg(None, None))
            .expect("fault-free VCM run must succeed");
        let baseline = (vcm_digest(base.states), counter_key(&base.metrics));
        assert_matrix_recovers(&format!("VCM/BFS/{name}"), baseline, |plan| {
            let r = try_run_vcm_recoverable(
                &topo,
                Arc::clone(&program),
                &vcm_cfg(Some(plan), None),
                &RecoveryConfig::every(2),
            )
            .expect("recoverable VCM run must converge");
            (
                vcm_digest(r.states),
                counter_key(&r.metrics),
                r.metrics.recovery,
            )
        });
    }
}

/// Recovery composed with schedule perturbation: a run that is faulted,
/// rolled back, replayed, *and* scheduled under a perturbation seed must
/// still land on the fault-free, unperturbed digest.
#[test]
fn recovery_composes_with_schedule_perturbation() {
    let params = profile_long();
    let graph = Arc::new(generate(&params));
    let bfs = Arc::new(IcmBfs {
        source: source(&graph),
    });
    let baseline = fingerprint(&graph, Arc::clone(&bfs));
    for seed in [1u64, 0xDEAD_BEEF] {
        for step in FAULT_STEPS {
            let (plan, kind) = matrix_plan(1, step);
            let (digest, counters, recovery) =
                icm_recovered_fingerprint(&graph, &bfs, plan, Some(seed));
            assert_eq!(
                digest, baseline.0,
                "perturb {seed:#x} + {kind:?} at step {step}: digest diverged"
            );
            assert_eq!(
                counters, baseline.1,
                "perturb {seed:#x} + {kind:?} at step {step}: counters diverged"
            );
            assert!(recovery.checkpoints_taken >= 1);
        }
    }
}

/// A recovered run must reproduce the *pinned* fingerprints exactly — not
/// merely match a freshly computed baseline.
#[test]
fn recovered_runs_reproduce_the_pinned_fingerprints() {
    for (name, params) in [("long", profile_long()), ("unit", profile_unit())] {
        let graph = Arc::new(generate(&params));
        let bfs = Arc::new(IcmBfs {
            source: source(&graph),
        });
        let eat = Arc::new(IcmEat {
            source: source(&graph),
            start: 0,
            labels: AlgLabels::resolve(&graph),
        });
        for (algo, label) in [
            ("bfs", format!("bfs/{name}")),
            ("eat", format!("eat/{name}")),
        ] {
            let (_, pin_digest, pin_counters) = PINS
                .iter()
                .find(|(l, _, _)| *l == label)
                .expect("pin exists");
            let plan = FaultPlan::panic_at(1, 2);
            let (digest, counters, recovery) = if algo == "bfs" {
                icm_recovered_fingerprint(&graph, &bfs, plan, None)
            } else {
                icm_recovered_fingerprint(&graph, &eat, plan, None)
            };
            assert_eq!(
                digest, *pin_digest,
                "{label}: recovered digest diverged from the recording"
            );
            assert_eq!(
                counters, *pin_counters,
                "{label}: recovered counter key diverged from the recording"
            );
            assert_eq!(recovery.rollbacks, 1, "{label}: the panic must have fired");
        }
    }
}

/// A persistent fault must exhaust the retry budget with the complete
/// fault history — never converge to a wrong answer, never loop forever.
#[test]
fn persistent_fault_exhausts_recovery_with_history() {
    let params = profile_long();
    let graph = Arc::new(generate(&params));
    let bfs = Arc::new(IcmBfs {
        source: source(&graph),
    });
    let plan = FaultPlan::panic_at(0, 2).persistent();
    let recovery = RecoveryConfig {
        max_attempts: 2,
        ..RecoveryConfig::every(2)
    };
    let err = try_run_icm_recoverable(
        &graph,
        Arc::clone(&bfs),
        &icm_cfg(Some(plan), None),
        &recovery,
    )
    .expect_err("a persistent fault must not converge");
    let BspError::RecoveryExhausted {
        attempts,
        last,
        history,
    } = err
    else {
        panic!("expected RecoveryExhausted, got a different error");
    };
    assert_eq!(attempts, 3, "initial attempt + 2 replays");
    assert_eq!(history.len(), 3);
    assert!(matches!(*last, BspError::WorkerPanicked { step: 2, .. }));
    for h in &history {
        assert!(matches!(h, BspError::WorkerPanicked { step: 2, .. }));
    }
}
