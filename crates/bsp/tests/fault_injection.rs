//! Integration coverage of the fault-injection and recovery surface as a
//! *consumer* of `graphite-bsp` sees it: a worker logic defined outside
//! the crate implements [`WorkerLogic`] + [`Snapshot`] through the public
//! re-exports alone, runs under injected faults, and recovers — proving
//! the trait surface is sufficient without any crate-private access.
//!
//! The ICM/VCM-level fault matrix (digest equivalence across programs,
//! profiles and fault cells) lives in `result_digest_pin.rs`; this file
//! exercises the engine-level contracts: typed non-convergence, complete
//! poisoned-worker reporting, checksum-detected corruption, bounded retry
//! budgets, and end-to-end determinism of seeded fault plans.

use graphite_bsp::{
    run_bsp, run_bsp_recoverable, Aggregators, BspConfig, BspError, CheckpointStorage, Fault,
    FaultKind, FaultMode, FaultPlan, Inbox, MasterHook, Outbox, PartitionMap, RecoveryConfig,
    RunMetrics, Snapshot, TraceSink, UserCounters, WorkerLogic,
};
use graphite_tgraph::builder::TemporalGraphBuilder;
use graphite_tgraph::graph::{EdgeId, TemporalGraph, VIdx, VertexId};
use graphite_tgraph::time::Interval;
use std::sync::Arc;

fn ring(n: u64) -> Arc<TemporalGraph> {
    let mut b = TemporalGraphBuilder::new();
    for i in 0..n {
        b.add_vertex(VertexId(i), Interval::new(0, 100)).unwrap();
    }
    for i in 0..n {
        b.add_edge(
            EdgeId(i),
            VertexId(i),
            VertexId((i + 1) % n),
            Interval::new(0, 100),
        )
        .unwrap();
    }
    Arc::new(b.build().unwrap())
}

/// A token circles the ring once per superstep, incrementing; each worker
/// accumulates every token value it observes. Snapshot state is that
/// accumulator — a replay that double-counted or lost a delivery breaks
/// the total.
#[derive(Debug)]
struct RingSum {
    graph: Arc<TemporalGraph>,
    owned: Vec<VIdx>,
    hops: u64,
    total: u64,
}

impl WorkerLogic for RingSum {
    type Msg = u64;
    fn superstep(
        &mut self,
        step: u64,
        inbox: &Inbox<u64>,
        outbox: &mut Outbox<u64>,
        _globals: &Aggregators,
        _partial: &mut Aggregators,
        _counters: &mut UserCounters,
        _sink: &mut TraceSink,
    ) {
        if step == 1 {
            for &v in &self.owned {
                if self.graph.vertex(v).vid == VertexId(0) {
                    let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
                    outbox.send(next, 1);
                }
            }
            return;
        }
        for (v, msgs) in inbox.iter() {
            for &m in msgs {
                self.total += m;
                if m < self.hops {
                    let next = self.graph.edge(self.graph.out_edges(v)[0]).dst;
                    outbox.send(next, m + 1);
                }
            }
        }
    }
}

impl Snapshot for RingSum {
    fn checkpoint(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.total.to_le_bytes());
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), &'static str> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| "ring-sum blob")?;
        self.total = u64::from_le_bytes(arr);
        Ok(())
    }
}

const HOPS: u64 = 12;

fn workers(graph: &Arc<TemporalGraph>, partition: &Arc<PartitionMap>) -> Vec<RingSum> {
    (0..partition.workers())
        .map(|w| RingSum {
            graph: Arc::clone(graph),
            owned: partition.owned_by(w),
            hops: HOPS,
            total: 0,
        })
        .collect()
}

fn grand_total(ws: &[RingSum]) -> u64 {
    ws.iter().map(|w| w.total).sum()
}

fn faulted(plan: FaultPlan) -> BspConfig {
    BspConfig {
        fault_plan: Some(plan),
        ..Default::default()
    }
}

fn run_plain(
    graph: &Arc<TemporalGraph>,
    partition: &Arc<PartitionMap>,
    config: &BspConfig,
) -> Result<(Vec<RingSum>, RunMetrics), BspError> {
    let master: Option<MasterHook<'_>> = None;
    run_bsp(
        config,
        workers(graph, partition),
        Arc::clone(partition),
        master,
    )
}

fn run_recover(
    graph: &Arc<TemporalGraph>,
    partition: &Arc<PartitionMap>,
    config: &BspConfig,
    recovery: &RecoveryConfig,
) -> Result<(Vec<RingSum>, RunMetrics), BspError> {
    run_bsp_recoverable(
        config,
        recovery,
        workers(graph, partition),
        Arc::clone(partition),
        None,
    )
}

#[test]
fn external_logic_recovers_through_the_public_traits() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    let (plain, pm) = run_plain(&graph, &partition, &BspConfig::default()).unwrap();
    let (rec, rm) = run_recover(
        &graph,
        &partition,
        &faulted(FaultPlan::panic_at(2, 5)),
        &RecoveryConfig::every(3),
    )
    .unwrap();
    assert_eq!(grand_total(&plain), grand_total(&rec));
    assert_eq!(grand_total(&rec), (1..=HOPS).sum::<u64>());
    assert_eq!(pm.supersteps, rm.supersteps);
    assert_eq!(
        pm.counters, rm.counters,
        "recovery must not leak into counters"
    );
    assert_eq!(rm.recovery.rollbacks, 1);
    assert!(rm.recovery.checkpoints_taken >= 1);
    assert!(rm.recovery.supersteps_replayed >= 1);
}

#[test]
fn non_convergence_is_a_typed_error() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    let config = BspConfig {
        max_supersteps: 5,
        ..Default::default()
    };
    // The ring needs 13 supersteps; the cap must surface as a typed
    // error, not a silent truncated result — for both drivers.
    let err = run_plain(&graph, &partition, &config).unwrap_err();
    assert!(matches!(err, BspError::SuperstepLimit { limit: 5 }));
    let err = run_recover(&graph, &partition, &config, &RecoveryConfig::every(2)).unwrap_err();
    assert!(matches!(err, BspError::SuperstepLimit { limit: 5 }));
}

#[test]
fn every_poisoned_worker_is_reported() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    let plan = FaultPlan::panic_at(1, 2).and(Fault {
        worker: 3,
        step: 2,
        kind: FaultKind::WorkerPanic,
        mode: FaultMode::Transient,
    });
    let err = run_plain(&graph, &partition, &faulted(plan)).unwrap_err();
    let BspError::WorkerPanicked { step, workers } = err else {
        panic!("expected WorkerPanicked");
    };
    assert_eq!(step, 2);
    let indices: Vec<usize> = workers.iter().map(|(w, _)| *w).collect();
    assert_eq!(indices, vec![1, 3], "all poisoned workers, in index order");
    for (_, payload) in &workers {
        assert!(payload.contains("injected fault"), "payload: {payload}");
    }
}

#[test]
fn wire_corruption_is_detected_by_the_batch_checksum() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    // The token visits one worker per step; corrupt the batch bound for
    // every worker so whichever receives remote traffic at step 4 trips.
    let mut plan = FaultPlan::default();
    for w in 0..4 {
        plan = plan.and(Fault {
            worker: w,
            step: 4,
            kind: FaultKind::WireCorruption,
            mode: FaultMode::Transient,
        });
    }
    let err = run_plain(&graph, &partition, &faulted(plan)).unwrap_err();
    let BspError::Codec { step, detail, .. } = err else {
        panic!("expected Codec error");
    };
    assert_eq!(step, 4);
    assert!(detail.contains("checksum"), "detail: {detail}");
}

#[test]
fn retry_budget_is_bounded_with_full_history() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    let recovery = RecoveryConfig {
        max_attempts: 2,
        ..RecoveryConfig::every(2)
    };
    let err = run_recover(
        &graph,
        &partition,
        &faulted(FaultPlan::panic_at(0, 3).persistent()),
        &recovery,
    )
    .unwrap_err();
    let BspError::RecoveryExhausted {
        attempts,
        last,
        history,
    } = err
    else {
        panic!("expected RecoveryExhausted");
    };
    assert_eq!(attempts, 3, "initial attempt + max_attempts replays");
    assert_eq!(history.len(), 3);
    assert!(last.is_recoverable());
    for h in &history {
        assert!(matches!(h, BspError::WorkerPanicked { step: 3, .. }));
    }
}

#[test]
fn seeded_fault_plans_are_deterministic_end_to_end() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    let (plain, _) = run_plain(&graph, &partition, &BspConfig::default()).unwrap();
    let plan = FaultPlan::seeded(0xFA17, 4, HOPS, 2);
    assert_eq!(plan, FaultPlan::seeded(0xFA17, 4, HOPS, 2));
    let recovery = RecoveryConfig {
        max_attempts: 8,
        ..RecoveryConfig::every(2)
    };
    let run = || run_recover(&graph, &partition, &faulted(plan.clone()), &recovery).unwrap();
    let (a, am) = run();
    let (b, bm) = run();
    assert_eq!(grand_total(&a), grand_total(&plain));
    assert_eq!(grand_total(&a), grand_total(&b));
    assert_eq!(am.supersteps, bm.supersteps);
    assert_eq!(am.counters, bm.counters);
    assert_eq!(
        am.recovery, bm.recovery,
        "the same plan must fire identically on every run"
    );
}

#[test]
fn disk_checkpoints_survive_rollback() {
    let graph = ring(16);
    let partition = Arc::new(PartitionMap::hash(&graph, 4).expect("partition"));
    let dir = std::env::temp_dir().join("graphite_fault_injection_disk");
    let _ = std::fs::remove_dir_all(&dir);
    let recovery = RecoveryConfig {
        storage: CheckpointStorage::Disk(dir.clone()),
        ..RecoveryConfig::every(2)
    };
    let (rec, rm) = run_recover(
        &graph,
        &partition,
        &faulted(FaultPlan::panic_at(1, 6)),
        &recovery,
    )
    .unwrap();
    assert_eq!(grand_total(&rec), (1..=HOPS).sum::<u64>());
    assert_eq!(rm.recovery.rollbacks, 1);
    assert!(rm.recovery.checkpoint_bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
