//! A dependency-free Rust lexer producing a line-annotated token stream.
//!
//! This is not a full rustc lexer — it is exactly strong enough for the
//! analysis passes built on top of it: every construct that made the old
//! regex scanner lie is handled structurally.
//!
//! * comments (line, doc, and **nested** block comments) never produce
//!   code tokens; their text is preserved as [`Comment`] entries so the
//!   `lint:allow` machinery can read justifications;
//! * string literals (plain, raw `r#"…"#`, byte, raw byte) become single
//!   [`TokKind::Str`]/[`TokKind::RawStr`] tokens carrying their *inner*
//!   text, so `".unwrap()"` in a message can never look like a call, while
//!   the schema-drift pass can still read JSON keys out of format strings;
//! * `'a'` (char) vs. `'a` (lifetime) is decided the way rustc does —
//!   by whether the identifier run after the quote is closed by `'`;
//! * multi-char operators (`::`, `->`, `%=`, …) are single tokens, so a
//!   rule matching `%` cannot half-match `%=`;
//! * a leading `#!/usr/bin/env …` shebang line is skipped (it is not an
//!   inner attribute).
//!
//! Tokens carry 1-based line numbers; the passes report through them.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident,
    /// Lifetime tick-identifier (`'a`, `'static`), text without the tick.
    Lifetime,
    /// Integer literal (including suffixed forms like `1u64`).
    Int,
    /// Float literal (`1.5`, `1e6`, `7f64`) — the determinism-flow pass
    /// cares about the distinction.
    Float,
    /// String literal; text is the inner content without quotes.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`); inner content.
    RawStr,
    /// Char literal (`'x'`, `'\n'`); inner content.
    Char,
    /// Byte literal (`b'x'`).
    Byte,
    /// Byte-string literal (`b"…"`, `br"…"`); inner content.
    ByteStr,
    /// Punctuation / operator, possibly multi-char (`::`, `->`, `%=`).
    Punct,
}

/// One lexed token with its (1-based) source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Token text; for literals, the inner content (no delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punct token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True for a string-ish literal ([`TokKind::Str`]/[`TokKind::RawStr`]).
    pub fn is_string(&self) -> bool {
        matches!(self.kind, TokKind::Str | TokKind::RawStr)
    }
}

/// One comment, split per source line (a block comment spanning three
/// lines yields three entries), so justification lookups are line-based.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line.
    pub line: u32,
    /// The comment text on that line (without `//`; block comment bodies
    /// keep their inner text as written).
    pub text: String,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment lines in source order.
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first so maximal munch applies.
const OPS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.b.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.b.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and comments. The lexer never fails: on a
/// malformed construct it degrades to single-char punct tokens, which at
/// worst makes a rule miss — never panic.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let mut c = Cursor {
        b: source.as_bytes(),
        i: 0,
        line: 1,
    };
    // Shebang: `#!` on line 1 not followed by `[` is not an attribute.
    if c.b.starts_with(b"#!") && c.peek(2) != Some(b'[') {
        while let Some(ch) = c.peek(0) {
            if ch == b'\n' {
                break;
            }
            c.bump();
        }
    }
    while let Some(ch) = c.peek(0) {
        let line = c.line;
        match ch {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => lex_line_comment(&mut c, &mut out),
            b'/' if c.peek(1) == Some(b'*') => lex_block_comment(&mut c, &mut out),
            b'"' => lex_string(&mut c, &mut out, TokKind::Str),
            b'\'' => lex_tick(&mut c, &mut out),
            b'0'..=b'9' => lex_number(&mut c, &mut out),
            _ if is_ident_start(ch) => lex_ident_or_prefixed(&mut c, &mut out),
            _ => {
                // Maximal-munch operator match, falling back to one char.
                let rest = &c.b[c.i..];
                let op = OPS.iter().find(|op| rest.starts_with(op.as_bytes()));
                let text = match op {
                    Some(op) => {
                        for _ in 0..op.len() {
                            c.bump();
                        }
                        (*op).to_string()
                    }
                    None => {
                        c.bump();
                        (ch as char).to_string()
                    }
                };
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

fn lex_line_comment(c: &mut Cursor<'_>, out: &mut Lexed) {
    let line = c.line;
    let start = c.i + 2;
    c.bump();
    c.bump();
    while let Some(ch) = c.peek(0) {
        if ch == b'\n' {
            break;
        }
        c.bump();
    }
    out.comments.push(Comment {
        line,
        text: String::from_utf8_lossy(&c.b[start..c.i]).into_owned(),
    });
}

fn lex_block_comment(c: &mut Cursor<'_>, out: &mut Lexed) {
    c.bump();
    c.bump();
    let mut depth = 1u32;
    let mut line = c.line;
    let mut text = String::new();
    while let Some(ch) = c.peek(0) {
        if ch == b'*' && c.peek(1) == Some(b'/') {
            depth -= 1;
            c.bump();
            c.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
            continue;
        }
        if ch == b'/' && c.peek(1) == Some(b'*') {
            depth += 1;
            c.bump();
            c.bump();
            text.push_str("/*");
            continue;
        }
        c.bump();
        if ch == b'\n' {
            out.comments.push(Comment {
                line,
                text: std::mem::take(&mut text),
            });
            line = c.line;
        } else {
            text.push(ch as char);
        }
    }
    out.comments.push(Comment { line, text });
}

/// Plain or byte string starting at the opening quote.
fn lex_string(c: &mut Cursor<'_>, out: &mut Lexed, kind: TokKind) {
    let line = c.line;
    c.bump(); // opening quote
    let start = c.i;
    while let Some(ch) = c.peek(0) {
        if ch == b'\\' {
            c.bump();
            c.bump();
            continue;
        }
        if ch == b'"' {
            break;
        }
        c.bump();
    }
    let text = String::from_utf8_lossy(&c.b[start..c.i]).into_owned();
    c.bump(); // closing quote
    out.tokens.push(Token { kind, text, line });
}

/// Raw (byte) string with `hashes` `#`s, cursor on the opening quote.
fn lex_raw_string(c: &mut Cursor<'_>, out: &mut Lexed, hashes: usize, kind: TokKind) {
    let line = c.line;
    c.bump(); // opening quote
    let start = c.i;
    let mut end = c.i;
    while let Some(ch) = c.peek(0) {
        if ch == b'"' {
            let closed = (0..hashes).all(|k| c.peek(1 + k) == Some(b'#'));
            if closed {
                end = c.i;
                c.bump();
                for _ in 0..hashes {
                    c.bump();
                }
                break;
            }
        }
        c.bump();
        end = c.i;
    }
    out.tokens.push(Token {
        kind,
        text: String::from_utf8_lossy(&c.b[start..end]).into_owned(),
        line,
    });
}

/// `'` — either a char literal or a lifetime. Decided like rustc: an
/// identifier run closed by `'` is a char (`'x'`); unclosed, a lifetime
/// (`'static`). Escapes (`'\n'`, `'\u{41}'`) are always chars.
fn lex_tick(c: &mut Cursor<'_>, out: &mut Lexed) {
    let line = c.line;
    let next = c.peek(1);
    let is_char = match next {
        Some(b'\\') => true,
        Some(n) if is_ident_continue(n) => {
            // Scan the ident run; closed by `'` → char literal.
            let mut k = 1;
            while c.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            c.peek(k) == Some(b'\'')
        }
        Some(_) => c.peek(2) == Some(b'\''),
        None => false,
    };
    if is_char {
        c.bump(); // tick
        let start = c.i;
        while let Some(ch) = c.peek(0) {
            if ch == b'\\' {
                c.bump();
                c.bump();
                continue;
            }
            if ch == b'\'' {
                break;
            }
            c.bump();
        }
        let text = String::from_utf8_lossy(&c.b[start..c.i]).into_owned();
        c.bump(); // closing tick
        out.tokens.push(Token {
            kind: TokKind::Char,
            text,
            line,
        });
    } else {
        c.bump(); // tick
        let start = c.i;
        while c.peek(0).is_some_and(is_ident_continue) {
            c.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Lifetime,
            text: String::from_utf8_lossy(&c.b[start..c.i]).into_owned(),
            line,
        });
    }
}

fn lex_number(c: &mut Cursor<'_>, out: &mut Lexed) {
    let line = c.line;
    let start = c.i;
    let mut kind = TokKind::Int;
    if c.peek(0) == Some(b'0') && matches!(c.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
    {
        c.bump();
        c.bump();
        while c
            .peek(0)
            .is_some_and(|b| b.is_ascii_hexdigit() || b == b'_')
        {
            c.bump();
        }
    } else {
        while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
        // Fractional part: `.` followed by a digit (not `..`, not `.ident`).
        if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            kind = TokKind::Float;
            c.bump();
            while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
        // Exponent: `e`/`E` [+/-] digits.
        if matches!(c.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(c.peek(1), Some(b'+' | b'-')));
            if c.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                kind = TokKind::Float;
                c.bump();
                if sign == 1 {
                    c.bump();
                }
                while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    c.bump();
                }
            }
        }
    }
    // Suffix (`u64`, `f32`, …) — an `f32`/`f64` suffix makes it a float.
    let suffix_start = c.i;
    while c.peek(0).is_some_and(is_ident_continue) {
        c.bump();
    }
    let suffix = &c.b[suffix_start..c.i];
    if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
        kind = TokKind::Float;
    }
    out.tokens.push(Token {
        kind,
        text: String::from_utf8_lossy(&c.b[start..c.i]).into_owned(),
        line,
    });
}

/// Identifier, or one of the literal-prefix forms (`r"…"`, `r#"…"#`,
/// `b'x'`, `b"…"`, `br#"…"#`, `r#ident`).
fn lex_ident_or_prefixed(c: &mut Cursor<'_>, out: &mut Lexed) {
    let line = c.line;
    let start = c.i;
    // Literal prefixes are decided by lookahead before consuming the run.
    let rest = &c.b[c.i..];
    for (prefix, kind) in [(&b"r"[..], TokKind::RawStr), (&b"br"[..], TokKind::ByteStr)] {
        if rest.starts_with(prefix) {
            let mut k = prefix.len();
            let mut hashes = 0usize;
            while rest.get(k) == Some(&b'#') {
                hashes += 1;
                k += 1;
            }
            if rest.get(k) == Some(&b'"') {
                for _ in 0..(prefix.len() + hashes) {
                    c.bump();
                }
                lex_raw_string(c, out, hashes, kind);
                return;
            }
            // `r#ident` raw identifier.
            if *prefix == b"r"[..]
                && hashes == 1
                && rest.get(k).copied().is_some_and(is_ident_start)
            {
                c.bump();
                c.bump();
                let id_start = c.i;
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&c.b[id_start..c.i]).into_owned(),
                    line,
                });
                return;
            }
        }
    }
    if rest.starts_with(b"b'") {
        c.bump(); // b
        c.bump(); // tick
        let lit_start = c.i;
        while let Some(ch) = c.peek(0) {
            if ch == b'\\' {
                c.bump();
                c.bump();
                continue;
            }
            if ch == b'\'' {
                break;
            }
            c.bump();
        }
        let text = String::from_utf8_lossy(&c.b[lit_start..c.i]).into_owned();
        c.bump();
        out.tokens.push(Token {
            kind: TokKind::Byte,
            text,
            line,
        });
        return;
    }
    if rest.starts_with(b"b\"") {
        c.bump(); // b
        lex_string(c, out, TokKind::ByteStr);
        return;
    }
    while c.peek(0).is_some_and(is_ident_continue) {
        c.bump();
    }
    out.tokens.push(Token {
        kind: TokKind::Ident,
        text: String::from_utf8_lossy(&c.b[start..c.i]).into_owned(),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_their_content_from_code() {
        let toks = kinds("let x = \".unwrap() and Instant::now()\";");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Str, ".unwrap() and Instant::now()".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#; let t = r"plain";"####);
        assert!(toks.contains(&(TokKind::RawStr, "quote \" inside".into())));
        assert!(toks.contains(&(TokKind::RawStr, "plain".into())));
        // The `r` prefix must not leak an ident token.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let lexed = lex("a /* x /* y */ .unwrap() */ b\nc");
        let idents: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(lexed.tokens[2].line, 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = '\\u{41}'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["x", "\\n", "\\u{41}"]);
        // 'static is a lifetime even without a generic context.
        let toks = kinds("&'static str");
        assert!(toks.contains(&(TokKind::Lifetime, "static".into())));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b'x'; let b = b"bytes"; let c = br"raw";"#);
        assert!(toks.contains(&(TokKind::Byte, "x".into())));
        assert!(toks.contains(&(TokKind::ByteStr, "bytes".into())));
        assert!(toks.contains(&(TokKind::ByteStr, "raw".into())));
    }

    #[test]
    fn shebang_is_skipped_but_inner_attr_is_not() {
        let lexed = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert!(lexed.tokens[0].is_ident("fn"));
        assert_eq!(lexed.tokens[0].line, 2);
        let attr = lex("#![deny(missing_docs)]\n");
        assert!(attr.tokens[0].is_punct("#"));
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(kinds("1.5")[0].0, TokKind::Float);
        assert_eq!(kinds("1e6")[0].0, TokKind::Float);
        assert_eq!(kinds("2.5e-3")[0].0, TokKind::Float);
        assert_eq!(kinds("7f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1.0f32")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0x1E")[0].0, TokKind::Int);
        assert_eq!(kinds("1u64")[0].0, TokKind::Int);
        // `1.max(2)` is an int, a dot, a method call.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        // Ranges don't become floats.
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokKind::Int);
        assert_eq!(toks[1], (TokKind::Punct, "..".into()));
    }

    #[test]
    fn operators_are_maximal_munch() {
        let toks = kinds("a %= b; c % d; e -> f; g::h");
        assert!(toks.contains(&(TokKind::Punct, "%=".into())));
        assert!(toks.contains(&(TokKind::Punct, "%".into())));
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
    }

    #[test]
    fn comments_preserve_text_per_line() {
        let lexed = lex("// lint:allow(no-unwrap) — reason\nx\n/* a\nb */\n");
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("lint:allow(no-unwrap)"));
        assert_eq!(lexed.comments[1].line, 3);
        assert_eq!(lexed.comments[1].text, " a");
        assert_eq!(lexed.comments[2].line, 4);
        assert_eq!(lexed.comments[2].text, "b ");
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "type".into())));
    }
}
