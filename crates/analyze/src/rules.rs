//! The per-file rules, re-expressed over the token stream.
//!
//! Each rule walks [`FileModel::tokens`] instead of raw lines, so the
//! regex scanner's false-positive/negative classes are gone by
//! construction: `".unwrap()"` inside a string is a [`TokKind::Str`]
//! token, `HashMap` in a doc comment is not a token at all, and a
//! `% workers` split across lines is two adjacent tokens like any other.

use std::collections::BTreeSet;

use crate::lexer::{TokKind, Token};
use crate::report::{Rule, Severity, Violation};
use crate::scope::{FileModel, FnItem};

/// A raw hit before allow-filtering: rule, 1-based line, detail text.
pub(crate) type Hit = (Rule, usize, String);

/// Identifiers that mark fault-injection hook code.
const FAULT_IDENTS: [&str; 7] = [
    "FaultPlan",
    "FaultInjector",
    "FaultKind",
    "FaultMode",
    "fault_plan",
    "arm_panic",
    "arm_corruption",
];

/// Hash-container iteration methods.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "values",
    "values_mut",
    "keys",
    "drain",
    "into_iter",
    "into_values",
    "into_keys",
];

/// Runs every per-file rule in `rules` over `model` and returns the
/// allow-filtered, deduplicated violations. (`schema-drift` is a
/// cross-file pass and is ignored here — see [`crate::schema`].)
pub fn check_file(model: &FileModel, rules: &[Rule]) -> Vec<Violation> {
    let mut hits: Vec<Hit> = Vec::new();
    for &rule in rules {
        match rule {
            Rule::NoUnwrap => no_unwrap(model, &mut hits),
            Rule::HashIteration => hash_iteration(model, &mut hits),
            Rule::NoRawInterval => no_raw_interval(model, &mut hits),
            Rule::WallClock => wall_clock(model, &mut hits),
            Rule::FaultIsolation => fault_isolation(model, &mut hits),
            Rule::WorkerAssignment => worker_assignment(model, &mut hits),
            Rule::AllowWithoutReason => allow_without_reason(model, &mut hits),
            Rule::DeterminismFlow => crate::flow::check(model, &mut hits),
            Rule::SchemaDrift => {}
        }
    }
    finalize(model, hits)
}

/// Applies `lint:allow` suppression, dedupes per (rule, line), and
/// attaches snippets.
pub(crate) fn finalize(model: &FileModel, mut hits: Vec<Hit>) -> Vec<Violation> {
    hits.sort_by_key(|h| (h.1, h.0));
    let mut seen: BTreeSet<(Rule, usize)> = BTreeSet::new();
    let mut out = Vec::new();
    for (rule, line, detail) in hits {
        if !seen.insert((rule, line)) {
            continue;
        }
        if model.allow_for(rule.name(), line).is_some() {
            continue;
        }
        out.push(Violation {
            path: model.path.clone(),
            line,
            rule,
            severity: Severity::Deny,
            detail,
            snippet: model.line_text(line).to_string(),
        });
    }
    out
}

/// `.unwrap()` / `.expect(` anywhere in non-test code.
fn no_unwrap(m: &FileModel, hits: &mut Vec<Hit>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if !t[i].is_punct(".") || m.is_test(i) {
            continue;
        }
        let unwrap = t.get(i + 1).is_some_and(|x| x.is_ident("unwrap"))
            && t.get(i + 2).is_some_and(|x| x.is_punct("("))
            && t.get(i + 3).is_some_and(|x| x.is_punct(")"));
        let expect = t.get(i + 1).is_some_and(|x| x.is_ident("expect"))
            && t.get(i + 2).is_some_and(|x| x.is_punct("("));
        if unwrap || expect {
            hits.push((Rule::NoUnwrap, m.tok_line(i + 1), String::new()));
        }
    }
}

/// `Interval` immediately followed by `{` (struct literal or pattern),
/// except in the type positions that legitimately precede a body brace
/// (`-> Interval {`, `impl [Wire for] Interval {`).
fn no_raw_interval(m: &FileModel, hits: &mut Vec<Hit>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if !t[i].is_ident("Interval")
            || !t.get(i + 1).is_some_and(|x| x.is_punct("{"))
            || m.is_test(i)
        {
            continue;
        }
        let type_position = i > 0
            && (t[i - 1].is_punct("->") || t[i - 1].is_ident("for") || t[i - 1].is_ident("impl"));
        if !type_position {
            hits.push((Rule::NoRawInterval, m.tok_line(i), String::new()));
        }
    }
}

/// `Instant::now(` / `SystemTime::now(` / a `time::Instant` path, plus
/// `use`-map resolution: a grouped import (`use std::time::{Instant}`)
/// binds the clock type just as surely, even though no `time::Instant`
/// token sequence appears.
fn wall_clock(m: &FileModel, hits: &mut Vec<Hit>) {
    let t = &m.tokens;
    let seq = |i: usize, a: &str, b: &str| {
        t[i].is_ident(a)
            && t.get(i + 1).is_some_and(|x| x.is_punct("::"))
            && t.get(i + 2).is_some_and(|x| x.is_ident(b))
    };
    let mut in_use = false;
    for i in 0..t.len() {
        if t[i].is_ident("use") {
            in_use = true;
        } else if t[i].is_punct(";") {
            in_use = false;
        }
        if m.is_test(i) {
            continue;
        }
        let now_call = (seq(i, "Instant", "now") || seq(i, "SystemTime", "now"))
            && t.get(i + 3).is_some_and(|x| x.is_punct("("));
        let time_path = seq(i, "time", "Instant");
        let grouped_import = in_use
            && t[i].kind == TokKind::Ident
            && matches!(t[i].text.as_str(), "Instant" | "SystemTime")
            && m.use_resolves(&t[i].text, &format!("std::time::{}", t[i].text));
        if now_call || time_path || grouped_import {
            hits.push((Rule::WallClock, m.tok_line(i), String::new()));
        }
    }
}

/// A fault-injection identifier on a line that is conditionally
/// compiled: `cfg!(` on the line itself, or a `#[cfg(` attribute
/// directly above (looking past other attributes, blank lines and
/// comment lines, which is how attribute stacks read). Checked inside
/// test code too — a test-gated hook is exactly the leakage this catches.
fn fault_isolation(m: &FileModel, hits: &mut Vec<Hit>) {
    let t = &m.tokens;
    // First token index on each 1-based line.
    let mut first_on_line = vec![usize::MAX; m.lines.len() + 2];
    for (i, tok) in t.iter().enumerate().rev() {
        if let Some(slot) = first_on_line.get_mut(tok.line as usize) {
            *slot = i;
        }
    }
    let line_has_cfg_bang = |line: usize| {
        t.iter().enumerate().any(|(i, tok)| {
            tok.line as usize == line
                && tok.is_ident("cfg")
                && t.get(i + 1).is_some_and(|x| x.is_punct("!"))
        })
    };
    let cfg_attr_above = |line: usize| {
        let mut l = line;
        while l > 1 {
            l -= 1;
            let first = first_on_line.get(l).copied().unwrap_or(usize::MAX);
            if first == usize::MAX {
                continue; // blank or comment-only line
            }
            let is_attr =
                t[first].is_punct("#") && t.get(first + 1).is_some_and(|x| x.is_punct("["));
            if !is_attr {
                return false;
            }
            if t.get(first + 2).is_some_and(|x| x.is_ident("cfg")) {
                return true;
            }
            // A different attribute: keep looking past the stack.
        }
        false
    };
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for tok in t.iter() {
        if tok.kind != TokKind::Ident || !FAULT_IDENTS.contains(&tok.text.as_str()) {
            continue;
        }
        let line = tok.line as usize;
        if flagged.contains(&line) {
            continue;
        }
        if line_has_cfg_bang(line) || cfg_attr_above(line) {
            flagged.insert(line);
            hits.push((Rule::FaultIsolation, line, String::new()));
        }
    }
}

/// `%`/`%=` whose right operand is a path expression with a segment
/// naming a worker count (`workers`, `n_workers`, `self.workers`, …).
/// Token-based, so the operand may sit on the next line — a class the
/// line scanner missed.
fn worker_assignment(m: &FileModel, hits: &mut Vec<Hit>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if !(t[i].is_punct("%") || t[i].is_punct("%=")) || m.is_test(i) {
            continue;
        }
        let mut j = i + 1;
        let mut hit = false;
        while let Some(tok) = t.get(j).filter(|x| x.kind == TokKind::Ident) {
            if tok.text == "workers" || tok.text.ends_with("_workers") {
                hit = true;
                break;
            }
            if t.get(j + 1).is_some_and(|x| x.is_punct("."))
                && t.get(j + 2).is_some_and(|x| x.kind == TokKind::Ident)
            {
                j += 2;
            } else {
                break;
            }
        }
        if hit {
            hits.push((Rule::WorkerAssignment, m.tok_line(i), String::new()));
        }
    }
}

/// Every `lint:allow` escape must name a real rule and carry a reason.
fn allow_without_reason(m: &FileModel, hits: &mut Vec<Hit>) {
    for marker in &m.allows {
        match Rule::parse(&marker.rule) {
            None => hits.push((
                Rule::AllowWithoutReason,
                marker.line,
                format!("lint:allow names unknown rule `{}`", marker.rule),
            )),
            Some(rule) if !marker.has_reason => hits.push((
                Rule::AllowWithoutReason,
                marker.line,
                format!(
                    "bare lint:allow({}) with no justification: say why it is safe",
                    rule.name()
                ),
            )),
            Some(_) => {}
        }
    }
}

/// One hash-container binding: where it was declared and whether it is
/// actually a hash container (a non-hash `let` shadows an outer name).
struct HashBinding {
    name: String,
    is_hash: bool,
}

/// Iteration over `HashMap`/`HashSet` values — via an iteration method
/// or as the tail of a `for … in` head. Name resolution is scoped: a
/// file-level field named `counts` is shadowed inside a fn by
/// `let counts: Vec<_> = …`, which the line scanner used to flag.
fn hash_iteration(m: &FileModel, hits: &mut Vec<Hit>) {
    let t = &m.tokens;
    let global = collect_global_hash_names(t);
    let locals: Vec<(usize, Vec<HashBinding>)> = m
        .fns
        .iter()
        .enumerate()
        .map(|(fi, f)| (fi, collect_fn_bindings(t, f)))
        .collect();

    // Is `name` a hash container at token `idx`? `qualified` receivers
    // (`self.name`, `x.name`) are field accesses: locals don't apply.
    let is_hash_at = |name: &str, idx: usize, qualified: bool| -> bool {
        if !qualified {
            // Innermost enclosing fn with a binding for the name wins.
            let mut best: Option<&HashBinding> = None;
            let mut best_start = 0usize;
            for (fi, bindings) in &locals {
                let f = &m.fns[*fi];
                if f.start <= idx && idx <= f.end && f.start >= best_start {
                    if let Some(b) = bindings.iter().find(|b| b.name == name) {
                        best = Some(b);
                        best_start = f.start;
                    }
                }
            }
            if let Some(b) = best {
                return b.is_hash;
            }
        }
        global.contains(name)
    };

    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || m.is_test(i) {
            continue;
        }
        // `name.iter()`, `self.name.values()`, …
        let method_iter = t.get(i + 1).is_some_and(|x| x.is_punct("."))
            && t.get(i + 2).is_some_and(|x| {
                x.kind == TokKind::Ident && ITER_METHODS.contains(&x.text.as_str())
            })
            && t.get(i + 3).is_some_and(|x| x.is_punct("("));
        if method_iter {
            let qualified = i > 0 && t[i - 1].is_punct(".");
            if is_hash_at(&t[i].text, i, qualified) {
                hits.push((Rule::HashIteration, m.tok_line(i), String::new()));
            }
        }
    }

    // `for x in name {` / `for (k, v) in self.name.clone() {` — direct
    // IntoIterator use of the container in a for-loop head.
    for i in 0..t.len() {
        if !t[i].is_ident("for") || m.is_test(i) {
            continue;
        }
        // `impl A for B` / `for<'a>`: not loops.
        if t.get(i + 1).is_some_and(|x| x.is_punct("<"))
            || (i > 0 && t[i - 1].kind == TokKind::Ident && !t[i - 1].is_ident("in"))
        {
            continue;
        }
        let Some((in_idx, brace_idx)) = for_loop_shape(t, i) else {
            continue;
        };
        // Strip trailing `.clone()` / `.as_ref()` from the iterated expr.
        let mut e = brace_idx - 1;
        while e >= in_idx + 4
            && t[e].is_punct(")")
            && t[e - 1].is_punct("(")
            && matches!(t[e - 2].text.as_str(), "clone" | "as_ref")
            && t[e - 3].is_punct(".")
        {
            e -= 4;
        }
        if t[e].kind != TokKind::Ident || e <= in_idx {
            continue;
        }
        let qualified = t[e - 1].is_punct(".");
        if is_hash_at(&t[e].text, e, qualified) {
            hits.push((Rule::HashIteration, m.tok_line(i), String::new()));
        }
    }
}

/// For a `for` keyword at `i`, the indices of its `in` keyword and the
/// body `{`, when it has the shape of a loop head.
fn for_loop_shape(t: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut in_idx = None;
    while j < t.len() {
        let tok = &t[j];
        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" => return None,
                "{" if depth == 0 => {
                    return in_idx.map(|k| (k, j));
                }
                _ => {}
            }
        } else if tok.is_ident("in") && depth == 0 && in_idx.is_none() {
            in_idx = Some(j);
        }
        j += 1;
    }
    None
}

/// Names bound to a hash container anywhere in the file: `name: HashMap<…>`
/// (fields, params, typed lets) and `name = HashMap::new()` forms. The
/// path prefix (`std::collections::HashMap`) is skipped structurally.
fn collect_global_hash_names(t: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for k in 0..t.len() {
        if !(t[k].is_ident("HashMap") || t[k].is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `path::to::` prefix.
        let mut j = k;
        while j >= 2 && t[j - 1].is_punct("::") && t[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let named = match t[j - 1].text.as_str() {
            ":" | "=" if j >= 2 && t[j - 2].kind == TokKind::Ident => Some(&t[j - 2].text),
            _ => None,
        };
        if let Some(n) = named {
            names.insert(n.clone());
        }
    }
    names
}

/// `let` bindings inside one fn body, with their hash-ness: the decl
/// tokens up to the statement end mention `HashMap`/`HashSet` or not.
fn collect_fn_bindings(t: &[Token], f: &FnItem) -> Vec<HashBinding> {
    let mut out = Vec::new();
    let mut i = f.start;
    while i <= f.end && i < t.len() {
        if t[i].is_ident("let") {
            let mut j = i + 1;
            if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = t.get(j).filter(|x| x.kind == TokKind::Ident) {
                let mut is_hash = false;
                let mut depth = 0i32;
                let mut k = j + 1;
                while k <= f.end && k < t.len() {
                    let tok = &t[k];
                    if tok.kind == TokKind::Punct {
                        match tok.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth <= 0 => break,
                            _ => {}
                        }
                    } else if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                        is_hash = true;
                    }
                    k += 1;
                }
                out.push(HashBinding {
                    name: name_tok.text.clone(),
                    is_hash,
                });
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str, rules: &[Rule]) -> Vec<Violation> {
        let m = FileModel::build(PathBuf::from("t.rs"), src);
        check_file(&m, rules)
    }

    fn lines(src: &str, rules: &[Rule]) -> Vec<usize> {
        run(src, rules).into_iter().map(|v| v.line).collect()
    }

    #[test]
    fn unwrap_in_a_string_is_not_a_violation() {
        // The regex scanner's canonical false positive, pinned correct.
        let src = "fn f() { log(\"call .unwrap() here\"); }\n";
        assert!(lines(src, &[Rule::NoUnwrap]).is_empty());
        let hit = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n";
        assert_eq!(lines(hit, &[Rule::NoUnwrap]), vec![1]);
    }

    #[test]
    fn unwrap_in_test_code_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(lines(src, &[Rule::NoUnwrap]).is_empty());
    }

    #[test]
    fn raw_interval_detection_including_multiline() {
        assert_eq!(
            lines(
                "fn f() { let iv = Interval { start: 1, end: 2 }; }",
                &[Rule::NoRawInterval]
            ),
            vec![1]
        );
        // Split across lines: the line scanner missed this (pinned).
        assert_eq!(
            lines(
                "fn f() { let iv = Interval\n{ start: 0, end: 1 }; }",
                &[Rule::NoRawInterval]
            ),
            vec![1]
        );
        for clean in [
            "fn lifespan() -> Interval { body() }",
            "impl Interval { }",
            "impl Wire for Interval { }",
            "fn f() { let x = IntervalPartition { lifespan }; }",
            "fn f() { let iv = Interval::new(1, 2); }",
        ] {
            assert!(lines(clean, &[Rule::NoRawInterval]).is_empty(), "{clean}");
        }
    }

    #[test]
    fn wall_clock_detection() {
        assert_eq!(
            lines("fn f() { let t = Instant::now(); }", &[Rule::WallClock]),
            vec![1]
        );
        assert_eq!(
            lines("use std::time::Instant;", &[Rule::WallClock]),
            vec![1]
        );
        assert_eq!(
            lines("use std::time::{Duration, Instant};", &[Rule::WallClock]),
            vec![1],
            "grouped import resolves through the use-map"
        );
        assert!(lines("use std::time::Duration;", &[Rule::WallClock]).is_empty());
        assert!(
            lines("fn f() { log(\"Instant::now()\"); }", &[Rule::WallClock]).is_empty(),
            "clock reads in strings are not code"
        );
    }

    #[test]
    fn worker_modulo_detection_including_multiline() {
        assert_eq!(
            lines(
                "fn f() { let w = vid % workers; }",
                &[Rule::WorkerAssignment]
            ),
            vec![1]
        );
        assert_eq!(
            lines(
                "fn f() { let w = idx % self.workers; }",
                &[Rule::WorkerAssignment]
            ),
            vec![1]
        );
        assert_eq!(
            lines(
                "fn f() { let w = h % config.workers.max(1); }",
                &[Rule::WorkerAssignment]
            ),
            vec![1]
        );
        assert_eq!(
            lines(
                "fn f() { let w = x % n_workers; }",
                &[Rule::WorkerAssignment]
            ),
            vec![1]
        );
        // Operand on the next line: the line scanner missed this (pinned).
        assert_eq!(
            lines(
                "fn f() { let w = vid %\n    workers; }",
                &[Rule::WorkerAssignment]
            ),
            vec![1]
        );
        assert!(lines("fn f() { let r = i % 7; }", &[Rule::WorkerAssignment]).is_empty());
        assert!(lines("fn f() { let r = a % buckets; }", &[Rule::WorkerAssignment]).is_empty());
        assert!(lines("fn f() { let workers = 4; }", &[Rule::WorkerAssignment]).is_empty());
    }

    #[test]
    fn fault_gating_detection() {
        let gated = "#[cfg(test)]\nfn hook(plan: &FaultPlan) {}\n";
        assert_eq!(lines(gated, &[Rule::FaultIsolation]), vec![2]);
        let stacked =
            "#[cfg(feature = \"faults\")]\n#[inline]\n\nfn fire(i: &mut FaultInjector) {}\n";
        assert_eq!(lines(stacked, &[Rule::FaultIsolation]), vec![4]);
        let inline = "fn f() { let go = cfg!(debug_assertions) && fault_plan.is_some(); }\n";
        assert_eq!(lines(inline, &[Rule::FaultIsolation]), vec![1]);
        let clean =
            "fn run(c: &BspConfig) {\n    let i = FaultInjector::new(c.fault_plan.clone());\n}\n";
        assert!(lines(clean, &[Rule::FaultIsolation]).is_empty());
        let in_test_mod =
            "#[cfg(test)]\nmod tests {\n    use super::*;\n    fn t() { let p = FaultPlan::default(); }\n}\n";
        assert!(
            lines(in_test_mod, &[Rule::FaultIsolation]).is_empty(),
            "a test merely using a fault plan is not a gated hook"
        );
    }

    #[test]
    fn hash_iteration_detection() {
        let src = "struct S { states: HashMap<u32, u32> }\n\
                   impl S {\n\
                       fn bad(&self) { for (k, v) in self.states.clone() { use_it(k, v); } }\n\
                       fn also_bad(&self) { let v: Vec<_> = self.states.iter().collect(); }\n\
                       fn fine(&self, k: u32) { self.states.get(&k); self.states.insert(k, 0); }\n\
                   }\n";
        assert_eq!(lines(src, &[Rule::HashIteration]), vec![3, 4]);
    }

    #[test]
    fn local_vec_shadows_a_hash_field() {
        // The regex scanner flagged this: a fn-local `counts: Vec` shares
        // its name with a hash field elsewhere in the file. Pinned fixed.
        let src = "struct S { counts: HashMap<u32, u32> }\n\
                   fn summarize() {\n\
                       let counts: Vec<u64> = Vec::new();\n\
                       for c in counts { eat(c); }\n\
                   }\n";
        assert!(lines(src, &[Rule::HashIteration]).is_empty());
        // But iterating the *field* elsewhere still fires.
        let field = "struct S { counts: HashMap<u32, u32> }\n\
                     impl S { fn f(&self) { for c in self.counts.clone() { eat(c); } } }\n";
        assert_eq!(lines(field, &[Rule::HashIteration]), vec![2]);
    }

    #[test]
    fn hashmap_in_doc_comment_is_invisible() {
        let src = "/// Iterates a HashMap: for x in counts.iter() etc.\n\
                   fn f(counts: &[u32]) { for c in counts { eat(c); } }\n";
        assert!(lines(src, &[Rule::HashIteration]).is_empty());
    }

    #[test]
    fn allow_suppresses_and_meta_rule_fires_on_bare_allows() {
        let justified =
            "fn f() { x.unwrap(); } // lint:allow(no-unwrap) — startup path, cannot fail\n";
        assert!(run(justified, &[Rule::NoUnwrap, Rule::AllowWithoutReason]).is_empty());
        let bare = "fn f() { x.unwrap(); } // lint:allow(no-unwrap)\n";
        let vs = run(bare, &[Rule::NoUnwrap, Rule::AllowWithoutReason]);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::AllowWithoutReason);
        let unknown = "fn f() { g(); } // lint:allow(no-such-rule) — misspelled\n";
        let vs = run(unknown, &[Rule::AllowWithoutReason]);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message().contains("unknown rule"));
    }
}
