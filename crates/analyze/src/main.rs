//! `graphite-analyze` CLI: the workspace's static analysis gate.
//!
//! ```text
//! graphite-analyze [PATHS...] [--format text|json] [--warn RULE] [--deny RULE]
//! ```
//!
//! With no paths, scans the workspace (`src/` + `crates/*/src/`, plus
//! `crates/*/benches/` for the schema pass) with per-path rule scoping;
//! explicit paths are scanned with every rule active. Exit status:
//! 0 clean, 1 deny-severity violations found, 2 I/O errors.
//!
//! The rule catalogue and the lexer → scope model → rules → flow passes
//! pipeline are documented on the [`graphite_analyze`] library crate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use graphite_analyze::report::{Rule, Severity};
use graphite_analyze::{analyze_files, apply_severities, explicit_files, workspace_files};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut format = Format::Text;
    let mut overrides: Vec<(Rule, Severity)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => return usage(&format!("--format expects text|json, got {other:?}")),
            },
            "--warn" | "--deny" => {
                let sev = if arg == "--warn" {
                    Severity::Warn
                } else {
                    Severity::Deny
                };
                match args.next().as_deref().and_then(Rule::parse) {
                    Some(rule) => overrides.push((rule, sev)),
                    None => return usage(&format!("{arg} expects a rule name")),
                }
            }
            "--help" | "-h" => return usage(""),
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg}")),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let mut io_errors = Vec::new();
    let files = if paths.is_empty() {
        workspace_files(Path::new("."))
    } else {
        explicit_files(&paths, &mut io_errors)
    };
    let mut analysis = analyze_files(&files);
    analysis.io_errors.splice(0..0, io_errors);
    apply_severities(&mut analysis.report, &overrides);

    for e in &analysis.io_errors {
        eprintln!("graphite-analyze: {e}");
    }
    match format {
        Format::Text => print!("{}", analysis.report.render_text()),
        Format::Json => println!("{}", analysis.report.render_json()),
    }
    if !analysis.io_errors.is_empty() {
        ExitCode::from(2)
    } else if analysis.report.has_denials() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("graphite-analyze: {error}");
    }
    eprintln!(
        "usage: graphite-analyze [PATHS...] [--format text|json] [--warn RULE] [--deny RULE]"
    );
    eprintln!(
        "rules: {}",
        Rule::ALL
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}
