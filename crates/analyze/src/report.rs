//! Rules, severities, violations, and the text / JSON renderers.

use std::fmt;
use std::path::PathBuf;

/// The analysis rules. The first six are the legacy `graphite-lint`
/// rules re-expressed over tokens; the last three are new passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in engine (`bsp`/`icm`) non-test code.
    NoUnwrap,
    /// No iteration over `HashMap`/`HashSet` in engine non-test code.
    HashIteration,
    /// No raw `Interval { .. }` literals outside `tgraph::time`.
    NoRawInterval,
    /// No wall-clock reads outside the blessed timing modules.
    WallClock,
    /// No `cfg`-gating of fault-injection hooks (checked in test code too).
    FaultIsolation,
    /// No ad-hoc `% workers` placement arithmetic outside graphite-part.
    WorkerAssignment,
    /// Every `lint:allow(<rule>)` escape must carry a justification and
    /// name a real rule.
    AllowWithoutReason,
    /// No nondeterministic source (float arithmetic, hash containers,
    /// pointer-address casts) in a function that feeds an order-sensitive
    /// sink (digest, outbox, codec emission, trace sink).
    DeterminismFlow,
    /// Producer/consumer schema key sets (`graphite-trace/1` extras and
    /// event fields, `BENCH_*.json` fields) must stay in sync.
    SchemaDrift,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 9] = [
        Rule::NoUnwrap,
        Rule::HashIteration,
        Rule::NoRawInterval,
        Rule::WallClock,
        Rule::FaultIsolation,
        Rule::WorkerAssignment,
        Rule::AllowWithoutReason,
        Rule::DeterminismFlow,
        Rule::SchemaDrift,
    ];

    /// The kebab-case rule name used in reports and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::HashIteration => "hash-iteration",
            Rule::NoRawInterval => "no-raw-interval",
            Rule::WallClock => "wall-clock",
            Rule::FaultIsolation => "fault-isolation",
            Rule::WorkerAssignment => "worker-assignment",
            Rule::AllowWithoutReason => "allow-without-reason",
            Rule::DeterminismFlow => "determinism-flow",
            Rule::SchemaDrift => "schema-drift",
        }
    }

    /// Parses a rule name (for `--warn` / `--deny` CLI overrides).
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == s)
    }

    /// One-line description used when a violation has no pass-specific
    /// message.
    pub fn message(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "unwrap()/expect() in engine code: surface failures as typed errors",
            Rule::HashIteration => {
                "iteration over a hash container: hasher order is nondeterministic"
            }
            Rule::NoRawInterval => {
                "raw `Interval { .. }` literal: construct via Interval::new/try_new"
            }
            Rule::WallClock => {
                "wall-clock access outside the blessed timing modules \
                 (bsp::metrics, bsp::trace, bench::timing): route through metrics::now()"
            }
            Rule::FaultIsolation => {
                "cfg-gated fault hook: fault injection is FaultPlan configuration, \
                 active in every build, never a compile-time feature"
            }
            Rule::WorkerAssignment => {
                "ad-hoc `% workers` placement arithmetic: vertex-to-worker \
                 assignment belongs to graphite-part / bsp::partition only"
            }
            Rule::AllowWithoutReason => {
                "lint:allow escape without a justification: every blessed \
                 violation must say why it is safe"
            }
            Rule::DeterminismFlow => {
                "nondeterministic source in a function feeding an \
                 order-sensitive sink (digest / message emission / trace)"
            }
            Rule::SchemaDrift => {
                "schema key drift between producer and consumer \
                 (graphite-trace/1 extras, trace event fields, BENCH_*.json)"
            }
        }
    }

    /// Whether the rule also applies inside `#[cfg(test)]`-gated code.
    /// `fault-isolation` must: a test-gated fault hook is exactly the
    /// leakage it exists to catch. `allow-without-reason` must too: an
    /// unjustified escape in test code is still an unjustified escape.
    pub fn checks_test_code(self) -> bool {
        matches!(self, Rule::FaultIsolation | Rule::AllowWithoutReason)
    }
}

/// How a violation affects the exit code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported and fails the run (exit 1). The default for every rule.
    #[default]
    Deny,
    /// Reported but does not fail the run.
    Warn,
}

impl Severity {
    /// The spelling used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Severity under the active configuration.
    pub severity: Severity,
    /// Pass-specific detail (falls back to [`Rule::message`] when empty).
    pub detail: String,
    /// The offending source line, for context.
    pub snippet: String,
}

impl Violation {
    /// The human-readable message: pass-specific detail if present.
    pub fn message(&self) -> &str {
        if self.detail.is_empty() {
            self.rule.message()
        } else {
            &self.detail
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] ({}) {}\n    {}",
            self.path.display(),
            self.line,
            self.rule.name(),
            self.severity.name(),
            self.message(),
            self.snippet.trim()
        )
    }
}

/// The outcome of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Files read and analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into the stable reporting order.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// True when any deny-severity violation is present (exit code 1).
    pub fn has_denials(&self) -> bool {
        self.violations.iter().any(|v| v.severity == Severity::Deny)
    }

    /// Renders the classic text report (one block per violation plus a
    /// summary line — the format the old `graphite-lint` printed).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "graphite-analyze: {} files clean", self.files_scanned);
        } else {
            let _ = writeln!(
                out,
                "graphite-analyze: {} violation(s) in {} files",
                self.violations.len(),
                self.files_scanned
            );
        }
        out
    }

    /// Renders the machine-readable report (`--format json`): schema
    /// `graphite-analyze/1`, one object per violation.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"graphite-analyze/1\",\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"deny_count\": {},",
            self.violations
                .iter()
                .filter(|v| v.severity == Severity::Deny)
                .count()
        );
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                 \"severity\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"}}",
                escape(&v.path.display().to_string()),
                v.line,
                v.rule.name(),
                v.severity.name(),
                escape(v.message()),
                escape(v.snippet.trim()),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: Rule, severity: Severity) -> Violation {
        Violation {
            path: PathBuf::from("a/b.rs"),
            line: 3,
            rule,
            severity,
            detail: String::new(),
            snippet: "x.unwrap()".into(),
        }
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::parse(rule.name()), Some(rule));
        }
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn denials_drive_exit_status() {
        let mut r = Report::default();
        assert!(!r.has_denials());
        r.violations.push(violation(Rule::NoUnwrap, Severity::Warn));
        assert!(!r.has_denials());
        r.violations.push(violation(Rule::NoUnwrap, Severity::Deny));
        assert!(r.has_denials());
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        let mut v = violation(Rule::SchemaDrift, Severity::Deny);
        v.detail = "key \"x\" written but never read".into();
        r.violations.push(v);
        let json = r.render_json();
        assert!(json.contains("\"schema\": \"graphite-analyze/1\""));
        assert!(json.contains("\"deny_count\": 1"));
        assert!(json.contains("key \\\"x\\\" written but never read"));
        assert!(json.contains("\"rule\": \"schema-drift\""));
    }

    #[test]
    fn text_report_matches_the_legacy_shape() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        assert!(r.render_text().contains("1 files clean"));
        r.violations.push(violation(Rule::NoUnwrap, Severity::Deny));
        let text = r.render_text();
        assert!(text.contains("[no-unwrap]"));
        assert!(text.contains("1 violation(s) in 1 files"));
    }
}
