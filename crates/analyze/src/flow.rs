//! The determinism-flow pass.
//!
//! The reproduction's headline guarantee is bit-identical result digests
//! across schedules, partitions and fault recoveries (ICM §6). The
//! per-container rules (`hash-iteration`, `wall-clock`) catch individual
//! nondeterministic constructs; this pass catches the *combination* that
//! actually breaks the guarantee: a nondeterministic source lexically
//! inside the same function as an order-sensitive sink.
//!
//! **Sinks** (where ordering becomes observable):
//! * digest computation — an identifier containing `digest` that is
//!   called or path-qualified, or a fn/impl whose name says digest;
//! * message emission — `outbox.send(…)` in `bsp::engine`;
//! * codec emission — the `bsp::codec` wire entry points
//!   (`encode_batch`, `put_varint`, `put_signed`, `put_interval`, …);
//! * trace emission — `sink.add(…)` / `sink.timed(…)` on a `TraceSink`.
//!
//! **Sources** (where nondeterminism enters):
//! * float arithmetic — float literals or `f32`/`f64` conversions
//!   (rounding is order-sensitive, so folding floats into a digest is
//!   only sound with explicit quantization, which a human must bless);
//! * hash containers — `HashMap`/`HashSet` construction (their
//!   iteration order feeding the sink is schedule-dependent);
//! * pointer addresses — `as_ptr` or an `as *` cast (addresses change
//!   per run under ASLR).
//!
//! A hit is reported at the source line; `lint:allow(determinism-flow)`
//! with a justification blesses deliberate cases (e.g. fixed-precision
//! quantization before digesting).

use crate::lexer::TokKind;
use crate::report::Rule;
use crate::rules::Hit;
use crate::scope::FileModel;

/// The `bsp::codec` wire emission entry points.
const CODEC_SINKS: [&str; 5] = [
    "encode_batch",
    "put_varint",
    "put_signed",
    "put_interval",
    "put_interval_fixed",
];

/// Runs the pass over every non-test fn in `model`.
pub(crate) fn check(model: &FileModel, hits: &mut Vec<Hit>) {
    let t = &model.tokens;
    for (fi, f) in model.fns.iter().enumerate() {
        if model.is_test(f.start) {
            continue;
        }
        // Nested fns are analyzed on their own — exclude their tokens so
        // "same function" stays literal.
        let nested: Vec<(usize, usize)> = model
            .fns
            .iter()
            .enumerate()
            .filter(|&(gi, g)| gi != fi && g.start > f.start && g.end <= f.end)
            .map(|(_, g)| (g.start, g.end))
            .collect();
        let skip = |i: usize| nested.iter().any(|&(s, e)| s <= i && i <= e);

        let mut sink: Option<String> = None;
        let describe_sink = |s: String, slot: &mut Option<String>| {
            if slot.is_none() {
                *slot = Some(s);
            }
        };
        if f.name.to_ascii_lowercase().contains("digest")
            || f.impl_type
                .as_deref()
                .is_some_and(|ty| ty.to_ascii_lowercase().contains("digest"))
        {
            describe_sink(format!("digest computation (fn `{}`)", f.name), &mut sink);
        }
        let mut sources: Vec<(usize, String)> = Vec::new();
        for i in f.start..=f.end.min(t.len().saturating_sub(1)) {
            if skip(i) {
                continue;
            }
            let tok = &t[i];
            // Sinks.
            if tok.kind == TokKind::Ident {
                let lower = tok.text.to_ascii_lowercase();
                let called = t
                    .get(i + 1)
                    .is_some_and(|x| x.is_punct("(") || x.is_punct("::"));
                if lower.contains("digest") && called {
                    describe_sink(format!("digest computation (`{}`)", tok.text), &mut sink);
                }
                if CODEC_SINKS.contains(&tok.text.as_str())
                    && t.get(i + 1).is_some_and(|x| x.is_punct("("))
                {
                    describe_sink(format!("codec emission (`{}`)", tok.text), &mut sink);
                }
            }
            if tok.is_punct(".") && i > 0 && t[i - 1].kind == TokKind::Ident {
                let recv = t[i - 1].text.to_ascii_lowercase();
                let method = t.get(i + 1);
                let open = t.get(i + 2).is_some_and(|x| x.is_punct("("));
                if open {
                    if recv.contains("outbox") && method.is_some_and(|x| x.is_ident("send")) {
                        describe_sink(
                            format!("message emission (`{}.send`)", t[i - 1].text),
                            &mut sink,
                        );
                    }
                    if recv.contains("sink")
                        && method.is_some_and(|x| x.is_ident("add") || x.is_ident("timed"))
                    {
                        describe_sink(format!("trace emission (`{}`)", t[i - 1].text), &mut sink);
                    }
                }
            }
            // Sources. One report per (fn, kind), at the first source
            // line, so a blessing covers the whole flow, not every line.
            let src = if tok.kind == TokKind::Float || tok.is_ident("f32") || tok.is_ident("f64") {
                Some("float arithmetic")
            } else if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                Some("hash-container construction (iteration order)")
            } else if tok.is_ident("as_ptr")
                || (tok.is_ident("as") && t.get(i + 1).is_some_and(|x| x.is_punct("*")))
            {
                Some("pointer-address use")
            } else {
                None
            };
            if let Some(kind) = src {
                if !sources.iter().any(|(_, k)| k.as_str() == kind) {
                    sources.push((tok.line as usize, kind.to_string()));
                }
            }
        }
        if let Some(sink) = sink {
            for (line, kind) in sources {
                hits.push((
                    Rule::DeterminismFlow,
                    line,
                    format!("{kind} in fn `{}`, which feeds {sink}", f.name),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::report::Rule;
    use crate::rules::check_file;
    use crate::scope::FileModel;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<(usize, String)> {
        let m = FileModel::build(PathBuf::from("t.rs"), src);
        check_file(&m, &[Rule::DeterminismFlow])
            .into_iter()
            .map(|v| (v.line, v.message().to_string()))
            .collect()
    }

    #[test]
    fn float_feeding_a_digest_fires_at_the_source_line() {
        let src = "fn fold(digest: &mut D, v: f64) {\n\
                       let q = (v * 1e6).round() as i64;\n\
                       fold_digest(q);\n\
                   }\n";
        let vs = run(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].0, 1, "reported at the first float source line");
        assert!(vs[0].1.contains("float"));
        assert!(vs[0].1.contains("digest"));
    }

    #[test]
    fn hash_map_feeding_an_outbox_fires() {
        let src = "fn scatter(outbox: &mut Outbox) {\n\
                       let pending: HashMap<u32, u32> = build();\n\
                       for (dst, msg) in drain(pending) {\n\
                           outbox.send(dst, msg);\n\
                       }\n\
                   }\n";
        let vs = run(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].0, 2);
        assert!(vs[0].1.contains("hash-container"));
    }

    #[test]
    fn pointer_cast_feeding_a_trace_sink_fires() {
        let src = "fn record(sink: &mut TraceSink, buf: &[u8]) {\n\
                       let addr = buf.as_ptr() as usize;\n\
                       sink.add(\"addr\", addr as u64);\n\
                   }\n";
        let vs = run(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].1.contains("pointer"));
    }

    #[test]
    fn source_without_a_sink_is_fine() {
        let src = "fn stats(xs: &[u64]) -> f64 {\n\
                       let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;\n\
                       mean * 1.5\n\
                   }\n";
        assert!(run(src).is_empty(), "floats with no sink are not flagged");
    }

    #[test]
    fn sink_without_a_source_is_fine() {
        let src = "fn emit(outbox: &mut Outbox, msgs: &[(u32, u64)]) {\n\
                       for &(dst, m) in msgs {\n\
                           outbox.send(dst, m);\n\
                       }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn codec_entry_points_are_sinks() {
        let src = "fn ship(out: &mut Vec<u8>, v: f64) {\n\
                       put_varint(out, v.to_bits());\n\
                   }\n";
        let vs = run(src);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].1.contains("codec"));
    }

    #[test]
    fn nested_fn_sources_stay_in_the_nested_fn() {
        let src = "fn outer(digest: &mut D) {\n\
                       fn helper() -> f64 { 1.5 }\n\
                       compute_digest(digest);\n\
                   }\n";
        assert!(
            run(src).is_empty(),
            "a float inside a nested fn does not feed the outer sink, \
             and the nested fn has no sink of its own"
        );
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn fold(v: f64) {\n\
                       // lint:allow(determinism-flow) — quantized to 1e-6 before digesting\n\
                       let q = (v * 1e6).round() as i64;\n\
                       fold_digest(q);\n\
                   }\n";
        let hits = run(src);
        // Line 1 (the `f64` in the signature) still fires; line 3 is blessed.
        assert!(hits.iter().all(|(l, _)| *l != 3), "{hits:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(d: &mut D) { let x = 1.5; my_digest(d); }\n}\n";
        assert!(run(src).is_empty());
    }
}
