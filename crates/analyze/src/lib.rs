//! `graphite-analyze` — token-aware static analysis for the graphite
//! workspace (DESIGN.md §10).
//!
//! The engine is a pipeline: a dependency-free Rust **lexer**
//! ([`lexer`]) producing a line-annotated token stream, a per-file
//! **scope model** ([`scope`]: `#[cfg(test)]` extents, `fn`/`impl`
//! boundaries, `use` resolution, `lint:allow` markers), per-file
//! **rules** ([`rules`]) walking tokens instead of regexes, and two
//! cross-cutting **passes** — determinism-flow ([`flow`]) and
//! schema-drift ([`schema`]).
//!
//! # Rules
//!
//! | rule | scope (workspace mode) | checks |
//! |------|------------------------|--------|
//! | `no-unwrap` | `bsp`/`icm` src | `.unwrap()` / `.expect(` in engine code |
//! | `hash-iteration` | `bsp`/`icm` src | iteration over `HashMap`/`HashSet` values |
//! | `no-raw-interval` | everywhere but `tgraph::time` | raw `Interval { .. }` literals |
//! | `wall-clock` | everywhere but `bsp::metrics`, `bsp::trace`, `bench::timing` | `Instant::now()` / `SystemTime::now()` / `std::time` clock imports |
//! | `fault-isolation` | `bsp`/`icm` src, *including* test code | `cfg`-gated fault-injection hooks |
//! | `worker-assignment` | everywhere but `graphite-part`, `bsp::partition` | ad-hoc `% workers` placement arithmetic |
//! | `allow-without-reason` | everywhere, including test code | `lint:allow` escapes with no justification or an unknown rule name |
//! | `determinism-flow` | everywhere | nondeterministic sources (floats, hash containers, pointer addresses) in a fn that feeds an order-sensitive sink (digest, outbox, codec, trace) |
//! | `schema-drift` | cross-file | `graphite-trace/1` / `BENCH_*.json` keys written-never-read or read-never-written |
//!
//! A violation line (or the contiguous comment block directly above it)
//! may carry `lint:allow(<rule>) — <reason>` to opt out; the reason is
//! mandatory (`allow-without-reason` fires on bare escapes).
//!
//! The `graphite-analyze` binary scans `src/` plus every
//! `crates/*/src/` (and `crates/*/benches/` for the schema pass) with
//! the per-path scoping above; explicit path arguments are scanned with
//! **all** rules active. Exit status: 0 clean, 1 deny-severity
//! violations, 2 on I/O errors.

pub mod flow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod schema;
pub mod scope;

use std::path::{Path, PathBuf};

use report::{Report, Rule, Severity};
use scope::FileModel;

/// One file scheduled for analysis with its active rule set.
pub type FileJob = (PathBuf, Vec<Rule>);

/// The outcome of an [`analyze_files`] run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Findings and scan counters.
    pub report: Report,
    /// Unreadable files / nonexistent paths (exit code 2 material).
    pub io_errors: Vec<String>,
}

/// Which rules apply to `path` in workspace mode.
pub fn rules_for(path: &Path) -> Vec<Rule> {
    let p = path.to_string_lossy().replace('\\', "/");
    let mut rules = Vec::new();
    if p.contains("crates/bsp/src/") || p.contains("crates/icm/src/") {
        rules.push(Rule::NoUnwrap);
        rules.push(Rule::HashIteration);
        rules.push(Rule::FaultIsolation);
    }
    if !p.ends_with("crates/tgraph/src/time.rs") {
        rules.push(Rule::NoRawInterval);
    }
    // Timing is confined to three blessed modules: bsp::metrics (the one
    // sanctioned clock read, marked with its own lint:allow), bsp::trace
    // (the span sink that consumes it), and bench::timing (the bench
    // harness built on it). Everything else is scanned.
    let timing_module = p.ends_with("crates/bsp/src/metrics.rs")
        || p.ends_with("crates/bsp/src/trace.rs")
        || p.ends_with("crates/bench/src/timing.rs");
    if !timing_module {
        rules.push(Rule::WallClock);
    }
    // Vertex placement is owned by two modules: the graphite-part crate
    // (the strategies) and bsp::partition (the map they produce). A
    // `% workers` anywhere else is a placement decision smuggled past the
    // configured strategy.
    let placement_module =
        p.contains("crates/partition/src/") || p.ends_with("crates/bsp/src/partition.rs");
    if !placement_module {
        rules.push(Rule::WorkerAssignment);
    }
    rules.push(Rule::AllowWithoutReason);
    rules.push(Rule::DeterminismFlow);
    rules.push(Rule::SchemaDrift);
    rules
}

/// Collects the workspace file set rooted at `root`: `src/` and every
/// `crates/*/src/` with [`rules_for`] scoping, plus `crates/*/benches/`
/// with only the schema pass active (bench targets produce schema keys
/// but are not engine code).
pub fn workspace_files(root: &Path) -> Vec<FileJob> {
    let mut files = Vec::new();
    let mut src_roots = vec![root.join("src")];
    let mut bench_roots = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            src_roots.push(e.path().join("src"));
            bench_roots.push(e.path().join("benches"));
        }
    }
    for dir in src_roots {
        collect_rs_files(&dir, &mut |p| {
            let rules = rules_for(&p);
            if !rules.is_empty() {
                files.push((p, rules));
            }
        });
    }
    for dir in bench_roots {
        collect_rs_files(&dir, &mut |p| files.push((p, vec![Rule::SchemaDrift])));
    }
    files.sort();
    files
}

/// Collects explicit paths (files or directories) with **all** rules
/// active; nonexistent paths are reported as I/O errors.
pub fn explicit_files(paths: &[PathBuf], io_errors: &mut Vec<String>) -> Vec<FileJob> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut |f| files.push((f, Rule::ALL.to_vec())));
        } else if p.is_file() {
            files.push((p.clone(), Rule::ALL.to_vec()));
        } else {
            io_errors.push(format!("no such path: {}", p.display()));
        }
    }
    files.sort();
    files
}

fn collect_rs_files(dir: &Path, sink: &mut impl FnMut(PathBuf)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, sink);
        } else if p.extension().is_some_and(|x| x == "rs") {
            sink(p);
        }
    }
}

/// Reads, models and analyzes `files`: per-file rules first, then the
/// cross-file schema pass over every model with `schema-drift` active.
pub fn analyze_files(files: &[FileJob]) -> Analysis {
    let mut analysis = Analysis::default();
    let mut models: Vec<(FileModel, Vec<Rule>)> = Vec::new();
    for (path, rules) in files {
        match std::fs::read_to_string(path) {
            Ok(source) => {
                models.push((FileModel::build(path.clone(), &source), rules.clone()));
            }
            Err(e) => analysis
                .io_errors
                .push(format!("cannot read {}: {e}", path.display())),
        }
    }
    analysis.report.files_scanned = models.len();
    for (model, rules) in &models {
        analysis
            .report
            .violations
            .extend(rules::check_file(model, rules));
    }
    let schema_models: Vec<&FileModel> = models
        .iter()
        .filter(|(_, rules)| rules.contains(&Rule::SchemaDrift))
        .map(|(m, _)| m)
        .collect();
    schema::check(&schema_models, &mut analysis.report.violations);
    analysis.report.sort();
    analysis
}

/// Applies CLI severity overrides (`--warn` / `--deny`) to a report.
pub fn apply_severities(report: &mut Report, overrides: &[(Rule, Severity)]) {
    for v in &mut report.violations {
        if let Some((_, sev)) = overrides.iter().rev().find(|(r, _)| *r == v.rule) {
            v.severity = *sev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_scoping_matches_the_policy() {
        let engine = Path::new("crates/bsp/src/engine.rs");
        let r = rules_for(engine);
        assert!(r.contains(&Rule::NoUnwrap));
        assert!(r.contains(&Rule::HashIteration));
        assert!(r.contains(&Rule::FaultIsolation));
        assert!(r.contains(&Rule::WallClock));
        assert!(r.contains(&Rule::DeterminismFlow));
        assert!(r.contains(&Rule::SchemaDrift));

        let time = Path::new("crates/tgraph/src/time.rs");
        assert!(!rules_for(time).contains(&Rule::NoRawInterval));

        for blessed in [
            "crates/bsp/src/metrics.rs",
            "crates/bsp/src/trace.rs",
            "crates/bench/src/timing.rs",
        ] {
            assert!(
                !rules_for(Path::new(blessed)).contains(&Rule::WallClock),
                "{blessed}"
            );
        }
        for placement in [
            "crates/partition/src/strategies.rs",
            "crates/bsp/src/partition.rs",
        ] {
            assert!(
                !rules_for(Path::new(placement)).contains(&Rule::WorkerAssignment),
                "{placement}"
            );
        }
        // The new rules apply everywhere.
        let bench = Path::new("crates/bench/src/record.rs");
        let r = rules_for(bench);
        assert!(r.contains(&Rule::AllowWithoutReason));
        assert!(r.contains(&Rule::DeterminismFlow));
        assert!(r.contains(&Rule::SchemaDrift));
    }

    #[test]
    fn severity_overrides_apply_last_wins() {
        let mut report = Report {
            files_scanned: 1,
            ..Report::default()
        };
        report.violations.push(report::Violation {
            path: PathBuf::from("a.rs"),
            line: 1,
            rule: Rule::NoUnwrap,
            severity: Severity::Deny,
            detail: String::new(),
            snippet: String::new(),
        });
        apply_severities(
            &mut report,
            &[
                (Rule::NoUnwrap, Severity::Warn),
                (Rule::WallClock, Severity::Deny),
            ],
        );
        assert_eq!(report.violations[0].severity, Severity::Warn);
        assert!(!report.has_denials());
    }
}
