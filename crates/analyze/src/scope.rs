//! Per-file item/scope model built on the token stream.
//!
//! [`FileModel`] is what the rules actually consume: tokens plus the
//! structure the old regex scanner faked with indentation heuristics —
//! `#[cfg(test)]` extents resolved by brace matching, `fn` boundaries
//! with their enclosing `impl` type, a `use`-map for the names the rules
//! care about (`Instant`, `HashMap`, …), and parsed `lint:allow`
//! markers with their justification state.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::lexer::{lex, Comment, TokKind, Token};

/// One `lint:allow(<rule>)` escape comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowMarker {
    /// The rule name inside the parentheses (not yet validated).
    pub rule: String,
    /// 1-based line of the comment.
    pub line: usize,
    /// Whether a justification follows the marker: after stripping
    /// leading dashes/colons, at least one alphabetic word of length ≥ 3.
    pub has_reason: bool,
}

/// One `fn` item with its body extent and enclosing `impl` type.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl`, if any (last path segment).
    pub impl_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the closing `}` of the body (inclusive).
    pub end: usize,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the closing `}`.
    pub end_line: usize,
}

/// The analyzed shape of one source file.
#[derive(Clone, Debug)]
pub struct FileModel {
    /// File path, as given to [`FileModel::build`].
    pub path: PathBuf,
    /// Source lines (index 0 is line 1), for snippets.
    pub lines: Vec<String>,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comment lines.
    pub comments: Vec<Comment>,
    /// Per-token: inside a `#[cfg(test)]`-gated (or `#[test]`) item.
    pub test_mask: Vec<bool>,
    /// All `fn` items, outermost first (nested fns appear separately).
    pub fns: Vec<FnItem>,
    /// `use` resolution: simple (possibly `as`-renamed) name → full path.
    pub uses: BTreeMap<String, String>,
    /// Every `lint:allow(...)` marker found in comments.
    pub allows: Vec<AllowMarker>,
    line_has_code: Vec<bool>,
    line_has_comment: Vec<bool>,
}

impl FileModel {
    /// Lexes and models `source`.
    pub fn build(path: PathBuf, source: &str) -> FileModel {
        let lexed = lex(source);
        let lines: Vec<String> = source.lines().map(str::to_owned).collect();
        let mut line_has_code = vec![false; lines.len() + 1];
        let mut line_has_comment = vec![false; lines.len() + 1];
        for t in &lexed.tokens {
            if let Some(slot) = line_has_code.get_mut(t.line as usize - 1) {
                *slot = true;
            }
        }
        for cm in &lexed.comments {
            if let Some(slot) = line_has_comment.get_mut(cm.line as usize - 1) {
                *slot = true;
            }
        }
        let test_mask = build_test_mask(&lexed.tokens);
        let fns = build_fns(&lexed.tokens);
        let uses = build_uses(&lexed.tokens);
        let allows = build_allows(&lexed.comments);
        FileModel {
            path,
            lines,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_mask,
            fns,
            uses,
            allows,
            line_has_code,
            line_has_comment,
        }
    }

    /// The source text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", String::as_str)
    }

    /// True when the token at `idx` is inside test-gated code.
    pub fn is_test(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }

    /// 1-based line of the token at `idx`.
    pub fn tok_line(&self, idx: usize) -> usize {
        self.tokens.get(idx).map_or(0, |t| t.line as usize)
    }

    /// Looks up a `lint:allow(rule)` marker covering `line`: either on
    /// the line itself, or in the contiguous run of comment-only lines
    /// directly above it (a blank or code line breaks the run).
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&AllowMarker> {
        let at = |l: usize| self.allows.iter().find(|m| m.line == l && m.rule == rule);
        if let Some(m) = at(line) {
            return Some(m);
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_code = self.line_has_code.get(l - 1).copied().unwrap_or(false);
            let has_comment = self.line_has_comment.get(l - 1).copied().unwrap_or(false);
            if has_code || !has_comment {
                break;
            }
            if let Some(m) = at(l) {
                return Some(m);
            }
        }
        None
    }

    /// True when `simple` is `use`-bound to a path ending in `suffix`
    /// (e.g. `use_resolves("Instant", "std::time::Instant")`).
    pub fn use_resolves(&self, simple: &str, suffix: &str) -> bool {
        self.uses
            .get(simple)
            .is_some_and(|full| full == suffix || full.ends_with(&format!("::{suffix}")))
    }
}

/// True for an attribute token slice (the tokens between `#[` and `]`)
/// that gates the following item to test builds.
fn is_test_attr(attr: &[Token]) -> bool {
    let mut idents = attr.iter().filter(|t| t.kind == TokKind::Ident);
    match idents.next() {
        Some(first) if first.text == "test" => true,
        Some(first) if first.text == "cfg" => {
            let mut saw_test = false;
            let mut saw_not = false;
            for t in attr.iter().filter(|t| t.kind == TokKind::Ident) {
                saw_test |= t.text == "test";
                saw_not |= t.text == "not";
            }
            saw_test && !saw_not
        }
        _ => false,
    }
}

/// Marks every token belonging to a `#[cfg(test)]`/`#[test]`-gated item:
/// the attribute itself, any stacked attributes, and the item through
/// its closing `}` (or terminating `;` for brace-less items).
fn build_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(attr_end) = match_close(tokens, i + 1, "[", "]") else {
            break;
        };
        if !is_test_attr(&tokens[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further stacked attributes before the item.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct("#")
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            match match_close(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // Item extent: first `;` at depth 0, or matched `{ … }`.
        let mut end = tokens.len().saturating_sub(1);
        let mut depth = 0i32;
        let mut k = j;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => {
                        end = k;
                        break;
                    }
                    "{" if depth == 0 => {
                        end = match_close(tokens, k, "{", "}").unwrap_or(tokens.len() - 1);
                        break;
                    }
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {}
                }
            }
            k += 1;
        }
        for slot in mask.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    mask
}

/// Index of the punct closing the `open` at `start` (depth-matched).
fn match_close(tokens: &[Token], start: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Extracts `fn` items with enclosing-`impl` context via a brace stack.
fn build_fns(tokens: &[Token]) -> Vec<FnItem> {
    // Pre-pass: map each impl-opening `{` token index to the impl type.
    let mut impl_open: BTreeMap<usize, String> = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            let mut j = i + 1;
            // Skip the generic parameter list, if any.
            if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
                let mut angle = 0i32;
                while j < tokens.len() {
                    if tokens[j].is_punct("<") || tokens[j].is_punct("<<") {
                        angle += if tokens[j].text == "<<" { 2 } else { 1 };
                    } else if tokens[j].is_punct(">") || tokens[j].is_punct(">>") {
                        angle -= if tokens[j].text == ">>" { 2 } else { 1 };
                        if angle <= 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Collect the self type: path idents until `{`/`where`;
            // `for` (trait impl) resets — the type follows it.
            let mut ty: Option<String> = None;
            let mut angle = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if angle == 0 {
                    if t.is_ident("for") {
                        ty = None;
                    } else if t.is_ident("where") || t.is_punct("{") || t.is_punct(";") {
                        break;
                    } else if t.kind == TokKind::Ident {
                        ty = Some(t.text.clone());
                    }
                }
                j += 1;
            }
            // Find the opening `{` of the impl body.
            while j < tokens.len() && !tokens[j].is_punct("{") {
                j += 1;
            }
            if let (Some(ty), true) = (ty, j < tokens.len()) {
                impl_open.insert(j, ty);
            }
            i = j;
        }
        i += 1;
    }

    let mut fns = Vec::new();
    let mut stack: Vec<Option<String>> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            stack.push(impl_open.get(&i).cloned());
        } else if t.is_punct("}") {
            stack.pop();
        } else if t.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                // Walk the signature for the body `{` (or `;` for a
                // trait method declaration, which has no body).
                let mut depth = 0i32;
                let mut k = i + 2;
                let mut body_open = None;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            ";" if depth == 0 => break,
                            "{" if depth == 0 => {
                                body_open = Some(k);
                                break;
                            }
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                if let Some(open) = body_open {
                    let end = match_close(tokens, open, "{", "}").unwrap_or(tokens.len() - 1);
                    let impl_type = stack.iter().rev().find_map(|f| f.clone());
                    fns.push(FnItem {
                        name: name_tok.text.clone(),
                        impl_type,
                        start: i,
                        end,
                        start_line: t.line as usize,
                        end_line: tokens[end].line as usize,
                    });
                }
            }
        }
        i += 1;
    }
    fns
}

/// Parses `use` statements into a simple-name → full-path map, handling
/// groups (`{A, B}`), renames (`as`), and ignoring globs.
fn build_uses(tokens: &[Token]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("use") {
            let end = tokens
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, t)| t.is_punct(";"))
                .map_or(tokens.len(), |(k, _)| k);
            use_tree(&tokens[i + 1..end], 0, &mut Vec::new(), &mut map);
            i = end;
        }
        i += 1;
    }
    map
}

/// Recursive use-tree walk; returns the index just past the tree.
fn use_tree(
    toks: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    map: &mut BTreeMap<String, String>,
) -> usize {
    let depth_at_entry = prefix.len();
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            i += 1;
            loop {
                i = use_tree(toks, i, &mut prefix.clone(), map);
                match toks.get(i) {
                    Some(t) if t.is_punct(",") => i += 1,
                    Some(t) if t.is_punct("}") => {
                        i += 1;
                        break;
                    }
                    _ => break,
                }
            }
            break;
        }
        if t.is_punct("*") {
            i += 1;
            break;
        }
        if t.kind == TokKind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct("::")) {
                i += 1;
                continue;
            }
            // Leaf: `as` rename or the segment itself names the binding.
            let name = if toks.get(i).is_some_and(|t| t.is_ident("as")) {
                i += 1;
                let alias = toks.get(i).map(|t| t.text.clone());
                i += 1;
                alias
            } else {
                prefix.last().cloned()
            };
            if let Some(name) = name {
                map.insert(name, prefix.join("::"));
            }
            break;
        }
        i += 1;
        break;
    }
    prefix.truncate(depth_at_entry);
    i
}

/// Finds every `lint:allow(<rule>)` marker in comment text and decides
/// whether a justification follows it on the same comment line.
///
/// Doc comments (`///`, `//!`, `/** .. */`) are skipped: they *document*
/// the escape-hatch syntax; only regular comments can invoke it.
fn build_allows(comments: &[Comment]) -> Vec<AllowMarker> {
    const NEEDLE: &str = "lint:allow(";
    let mut out = Vec::new();
    for cm in comments {
        if matches!(cm.text.bytes().next(), Some(b'/' | b'!' | b'*')) {
            continue;
        }
        let mut rest = cm.text.as_str();
        while let Some(pos) = rest.find(NEEDLE) {
            let after = &rest[pos + NEEDLE.len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            out.push(AllowMarker {
                rule,
                line: cm.line as usize,
                has_reason: has_reason(tail),
            });
            rest = tail;
        }
    }
    out
}

/// A justification is real when, after stripping leading separators,
/// the tail contains at least one alphabetic word of length ≥ 3.
fn has_reason(tail: &str) -> bool {
    let stripped = tail.trim_start_matches([' ', '\t', '—', '–', '-', ':', ',', '.', ';']);
    let mut run = 0usize;
    for c in stripped.chars() {
        if c.is_ascii_alphabetic() {
            run += 1;
            if run >= 3 {
                return true;
            }
        } else {
            run = 0;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn cfg_test_mask_covers_the_gated_item_only() {
        let m = model(
            "fn live() { a(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn gated() { b(); }\n\
             }\n\
             fn live2() { c(); }\n",
        );
        let a = m.tokens.iter().position(|t| t.is_ident("a")).unwrap();
        let b = m.tokens.iter().position(|t| t.is_ident("b")).unwrap();
        let c = m.tokens.iter().position(|t| t.is_ident("c")).unwrap();
        assert!(!m.is_test(a));
        assert!(m.is_test(b));
        assert!(!m.is_test(c));
    }

    #[test]
    fn cfg_all_test_and_stacked_attrs_are_gated() {
        let m = model(
            "#[cfg(all(test, feature = \"x\"))]\n\
             #[allow(dead_code)]\n\
             fn gated() { g(); }\n\
             #[cfg(not(test))]\n\
             fn live() { l(); }\n",
        );
        let g = m.tokens.iter().position(|t| t.is_ident("g")).unwrap();
        let l = m.tokens.iter().position(|t| t.is_ident("l")).unwrap();
        assert!(m.is_test(g));
        assert!(!m.is_test(l), "cfg(not(test)) is live code");
    }

    #[test]
    fn fn_items_carry_their_impl_type() {
        let m = model(
            "impl<'a, T: Clone> Engine<T> {\n\
                 fn step(&mut self) { body(); }\n\
             }\n\
             impl Wire for f64 {\n\
                 fn put(&self) {}\n\
             }\n\
             fn free() {}\n\
             trait T { fn decl(&self); }\n",
        );
        let names: Vec<(&str, Option<&str>)> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("step", Some("Engine")),
                ("put", Some("f64")),
                ("free", None),
            ]
        );
    }

    #[test]
    fn fn_extents_cover_the_body() {
        let m = model("fn outer() {\n    x.unwrap();\n}\nfn after() {}\n");
        let f = &m.fns[0];
        assert_eq!(f.start_line, 1);
        assert_eq!(f.end_line, 3);
        let unwrap = m.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.start <= unwrap && unwrap <= f.end);
    }

    #[test]
    fn use_map_resolves_groups_and_renames() {
        let m = model(
            "use std::time::{Instant, Duration};\n\
             use std::collections::HashMap as Map;\n\
             use std::sync::Arc;\n\
             use crate::prelude::*;\n",
        );
        assert_eq!(m.uses.get("Instant").unwrap(), "std::time::Instant");
        assert_eq!(m.uses.get("Duration").unwrap(), "std::time::Duration");
        assert_eq!(m.uses.get("Map").unwrap(), "std::collections::HashMap");
        assert_eq!(m.uses.get("Arc").unwrap(), "std::sync::Arc");
        assert!(m.use_resolves("Instant", "std::time::Instant"));
        assert!(m.use_resolves("Map", "std::collections::HashMap"));
        assert!(!m.use_resolves("Arc", "std::time::Instant"));
    }

    #[test]
    fn allow_markers_detect_reasons() {
        let m = model(
            "// lint:allow(no-unwrap) — checked non-empty above\n\
             x.unwrap();\n\
             // lint:allow(wall-clock)\n\
             y();\n\
             // lint:allow(hash-iteration).\n\
             z();\n",
        );
        assert_eq!(m.allows.len(), 3);
        assert!(m.allows[0].has_reason);
        assert!(!m.allows[1].has_reason, "bare allow has no reason");
        assert!(!m.allows[2].has_reason, "punctuation is not a reason");
    }

    #[test]
    fn allow_lookup_spans_contiguous_comment_lines() {
        let m = model(
            "// lint:allow(no-unwrap) — seed corpus is non-empty\n\
             // (second comment line)\n\
             x.unwrap();\n\
             \n\
             // lint:allow(no-unwrap) — blocked by the blank line\n\
             \n\
             y.unwrap();\n",
        );
        assert!(m.allow_for("no-unwrap", 3).is_some());
        assert!(m.allow_for("wall-clock", 3).is_none(), "rule must match");
        assert!(
            m.allow_for("no-unwrap", 7).is_none(),
            "a blank line breaks the comment run"
        );
    }

    #[test]
    fn doc_comments_do_not_carry_allow_markers() {
        let m = model(
            "/// Mentions `lint:allow(no-unwrap)` as documentation.\n\
             //! So does `lint:allow(wall-clock)` in module docs.\n\
             // lint:allow(no-unwrap) — this regular comment does count\n\
             fn f() {}\n",
        );
        assert_eq!(m.allows.len(), 1, "{:?}", m.allows);
        assert_eq!(m.allows[0].line, 3);
    }

    #[test]
    fn allow_on_the_violation_line_itself() {
        let m = model("x.unwrap(); // lint:allow(no-unwrap) — startup only\n");
        assert!(m.allow_for("no-unwrap", 1).is_some());
        assert!(m.allow_for("no-unwrap", 1).unwrap().has_reason);
    }
}
