//! The schema-drift pass: cross-checks producer and consumer key sets.
//!
//! The repo ships two machine-readable formats whose producers and
//! consumers live in different crates, with nothing but convention
//! keeping them aligned:
//!
//! * **`graphite-trace/1`** — `bsp::trace` writes the JSONL event
//!   fields; `TraceSink::add`/`timed` callers (the ICM warp extras in
//!   `icm::engine`, the serving-layer health extras in
//!   `serve::faultdom`) write the per-step `extras` keys;
//!   `bench::tracefmt` parses both.
//! * **`BENCH_*.json`** — `bench::Recorder` (and the partition bench's
//!   extra counters) write result/counter fields; `bench_validate` and
//!   the `Recorder` baseline loader read them.
//!
//! A key written but never read is dead telemetry; a key read but never
//! written is a parser that can only ever see its fallback. Both
//! directions fail here, each reported once per key at the first
//! offending site. Every check only runs when the scanned set contains
//! at least one producer file *and* one consumer file, so scanning a
//! lone fixture never drowns in "never written" noise.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::TokKind;
use crate::report::{Rule, Severity, Violation};
use crate::scope::FileModel;

/// One extracted key occurrence: (model index, line, key).
type Site = (usize, usize, String);

/// Runs the pass over every scanned model with `schema-drift` active.
pub fn check(models: &[&FileModel], out: &mut Vec<Violation>) {
    let norm: Vec<String> = models
        .iter()
        .map(|m| m.path.to_string_lossy().replace('\\', "/"))
        .collect();
    let any = |pred: &dyn Fn(&str) -> bool| norm.iter().any(|p| pred(p));

    // trace extras: sink.add/timed keys vs. tracefmt's extras reads.
    let is_extras_producer = |p: &str| {
        p.contains("bsp/src/")
            || p.contains("icm/src/")
            || p.contains("serve/src/")
            || p.contains("stream/src/")
    };
    let is_tracefmt = |p: &str| p.ends_with("tracefmt.rs");
    if any(&is_extras_producer) && any(&is_tracefmt) {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for (mi, m) in models.iter().enumerate() {
            if is_extras_producer(&norm[mi]) {
                extras_writes(mi, m, &mut producers);
            }
            if is_tracefmt(&norm[mi]) {
                extras_reads(mi, m, &mut consumers);
            }
        }
        drift(
            models,
            out,
            "graphite-trace/1 extras",
            &producers,
            &consumers,
            "bench::tracefmt",
            "any TraceSink producer",
        );
    }

    // trace event fields: bsp::trace's JSON keys vs. tracefmt's reads.
    let is_trace_writer = |p: &str| p.ends_with("bsp/src/trace.rs");
    if any(&is_trace_writer) && any(&is_tracefmt) {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for (mi, m) in models.iter().enumerate() {
            if is_trace_writer(&norm[mi]) {
                json_keys_in_strings(mi, m, &mut producers);
            }
            if is_tracefmt(&norm[mi]) {
                event_field_reads(mi, m, &mut consumers);
            }
        }
        drift(
            models,
            out,
            "graphite-trace/1 event field",
            &producers,
            &consumers,
            "bench::tracefmt",
            "bsp::trace",
        );
    }

    // BENCH_*.json fields: Recorder/bench tuple keys vs. validator reads.
    let is_recorder = |p: &str| p.ends_with("bench/src/record.rs");
    let is_bench_producer = |p: &str| p.ends_with("bench/src/record.rs") || p.contains("/benches/");
    let is_bench_consumer =
        |p: &str| p.ends_with("bench_validate.rs") || p.ends_with("bench/src/record.rs");
    if any(&is_recorder) && any(&|p: &str| p.ends_with("bench_validate.rs")) {
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for (mi, m) in models.iter().enumerate() {
            if is_bench_producer(&norm[mi]) {
                tuple_keys(mi, m, &mut producers);
            }
            if is_bench_consumer(&norm[mi]) {
                get_reads(mi, m, &mut consumers);
                str_array_keys(mi, m, &mut consumers);
            }
        }
        drift(
            models,
            out,
            "BENCH_*.json",
            &producers,
            &consumers,
            "bench_validate / the Recorder baseline loader",
            "bench::Recorder or a bench target",
        );
    }
}

/// Reports both drift directions, one violation per key.
fn drift(
    models: &[&FileModel],
    out: &mut Vec<Violation>,
    label: &str,
    producers: &[Site],
    consumers: &[Site],
    consumer_desc: &str,
    producer_desc: &str,
) {
    let first_sites = |sites: &[Site]| {
        let mut map: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for (mi, line, key) in sites {
            map.entry(key.clone()).or_insert((*mi, *line));
        }
        map
    };
    let written = first_sites(producers);
    let read = first_sites(consumers);
    for (key, &(mi, line)) in &written {
        if !read.contains_key(key) {
            push(
                models,
                out,
                mi,
                line,
                format!("{label} key \"{key}\" is written here but never read by {consumer_desc}"),
            );
        }
    }
    for (key, &(mi, line)) in &read {
        if !written.contains_key(key) {
            push(
                models,
                out,
                mi,
                line,
                format!("{label} key \"{key}\" is read here but never written by {producer_desc}"),
            );
        }
    }
}

fn push(models: &[&FileModel], out: &mut Vec<Violation>, mi: usize, line: usize, detail: String) {
    let m = models[mi];
    if m.allow_for(Rule::SchemaDrift.name(), line).is_some() {
        return;
    }
    out.push(Violation {
        path: m.path.clone(),
        line,
        rule: Rule::SchemaDrift,
        severity: Severity::Deny,
        detail,
        snippet: m.line_text(line).to_string(),
    });
}

/// A key eligible for schema tracking: a lowercase identifier.
fn ident_like(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// `sink.add("key", …)` / `sink.timed("key", …)` in non-test code, for
/// any receiver whose name contains `sink`.
fn extras_writes(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    let t = &m.tokens;
    for i in 1..t.len() {
        let recv_is_sink =
            t[i - 1].kind == TokKind::Ident && t[i - 1].text.to_ascii_lowercase().contains("sink");
        if t[i].is_punct(".")
            && recv_is_sink
            && t.get(i + 1)
                .is_some_and(|x| x.is_ident("add") || x.is_ident("timed"))
            && t.get(i + 2).is_some_and(|x| x.is_punct("("))
            && t.get(i + 3).is_some_and(|x| x.is_string())
            && !m.is_test(i + 1)
        {
            let key = &t[i + 3].text;
            if ident_like(key) {
                out.push((mi, t[i + 3].line as usize, key.clone()));
            }
        }
    }
}

/// `get_u64(extras, "key", …)` in non-test code.
fn extras_reads(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if t[i].is_ident("get_u64")
            && t.get(i + 1).is_some_and(|x| x.is_punct("("))
            && t.get(i + 2).is_some_and(|x| x.is_ident("extras"))
            && t.get(i + 3).is_some_and(|x| x.is_punct(","))
            && t.get(i + 4).is_some_and(|x| x.is_string())
            && !m.is_test(i)
        {
            out.push((mi, t[i + 4].line as usize, t[i + 4].text.clone()));
        }
    }
}

/// JSON keys (`\"key\":` or `"key":` patterns) inside non-test string
/// literals — how `bsp::trace` writes its event lines.
fn json_keys_in_strings(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    for (i, tok) in m.tokens.iter().enumerate() {
        if !tok.is_string() || m.is_test(i) {
            continue;
        }
        for key in extract_json_keys(&tok.text) {
            out.push((mi, tok.line as usize, key));
        }
    }
}

/// Extracts `"key":` / `\"key\":` patterns from string-literal text.
fn extract_json_keys(text: &str) -> Vec<String> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let quote_at = |i: usize| -> Option<usize> {
        if b.get(i) == Some(&b'\\') && b.get(i + 1) == Some(&b'"') {
            Some(2)
        } else if b.get(i) == Some(&b'"') {
            Some(1)
        } else {
            None
        }
    };
    let mut i = 0usize;
    while i < b.len() {
        let Some(open) = quote_at(i) else {
            i += 1;
            continue;
        };
        let start = i + open;
        let mut j = start;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j > start {
            if let Some(close) = quote_at(j) {
                if b.get(j + close) == Some(&b':') {
                    out.push(text[start..j].to_string());
                    i = j + close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Event-field reads in `tracefmt`: `get_u64(&ev, "key", …)` with a
/// non-`extras` object, and `recv.get("key")` with a non-`extras`
/// receiver (so `ev.get("extras")` counts as reading the field `extras`,
/// while `get_u64(extras, …)` stays in the extras key space).
fn event_field_reads(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if m.is_test(i) {
            continue;
        }
        if t[i].is_ident("get_u64") && t.get(i + 1).is_some_and(|x| x.is_punct("(")) {
            let mut j = i + 2;
            if t.get(j).is_some_and(|x| x.is_punct("&")) {
                j += 1;
            }
            if t.get(j)
                .is_some_and(|x| x.kind == TokKind::Ident && x.text != "extras")
                && t.get(j + 1).is_some_and(|x| x.is_punct(","))
                && t.get(j + 2).is_some_and(|x| x.is_string())
            {
                out.push((mi, t[j + 2].line as usize, t[j + 2].text.clone()));
            }
        }
        let extras_recv = i > 0 && t[i - 1].is_ident("extras");
        if t[i].is_punct(".")
            && !extras_recv
            && t.get(i + 1).is_some_and(|x| x.is_ident("get"))
            && t.get(i + 2).is_some_and(|x| x.is_punct("("))
            && t.get(i + 3).is_some_and(|x| x.is_string())
        {
            out.push((mi, t[i + 3].line as usize, t[i + 3].text.clone()));
        }
    }
}

/// `("key", …)` / `("key".to_string(), …)` tuple keys — how the
/// Recorder and bench targets name their emitted fields and counters.
fn tuple_keys(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if !t[i].is_punct("(") || !t.get(i + 1).is_some_and(|x| x.is_string()) || m.is_test(i + 1) {
            continue;
        }
        let direct = t.get(i + 2).is_some_and(|x| x.is_punct(","));
        let to_string = t.get(i + 2).is_some_and(|x| x.is_punct("."))
            && t.get(i + 3).is_some_and(|x| x.is_ident("to_string"))
            && t.get(i + 4).is_some_and(|x| x.is_punct("("))
            && t.get(i + 5).is_some_and(|x| x.is_punct(")"))
            && t.get(i + 6).is_some_and(|x| x.is_punct(","));
        if (direct || to_string) && ident_like(&t[i + 1].text) {
            out.push((mi, t[i + 1].line as usize, t[i + 1].text.clone()));
        }
    }
}

/// `.get("key")` reads, any receiver (the BENCH json has one key space).
fn get_reads(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    let t = &m.tokens;
    for i in 0..t.len() {
        if t[i].is_punct(".")
            && t.get(i + 1).is_some_and(|x| x.is_ident("get"))
            && t.get(i + 2).is_some_and(|x| x.is_punct("("))
            && t.get(i + 3)
                .is_some_and(|x| x.is_string() && ident_like(&x.text))
            && !m.is_test(i)
        {
            out.push((mi, t[i + 3].line as usize, t[i + 3].text.clone()));
        }
    }
}

/// String arrays (`["a", "b", …]`, ≥ 2 ident-like entries) — the shape
/// of field lists and counter allowlists in the validator.
fn str_array_keys(mi: usize, m: &FileModel, out: &mut Vec<Site>) {
    let t = &m.tokens;
    let mut i = 0usize;
    while i < t.len() {
        if !t[i].is_punct("[") || m.is_test(i) {
            i += 1;
            continue;
        }
        let mut keys = Vec::new();
        let mut j = i + 1;
        let well_formed = loop {
            match t.get(j) {
                Some(x) if x.is_string() && ident_like(&x.text) => {
                    keys.push((x.line as usize, x.text.clone()));
                    j += 1;
                    match t.get(j) {
                        Some(x) if x.is_punct(",") => j += 1,
                        Some(x) if x.is_punct("]") => break true,
                        _ => break false,
                    }
                    if t.get(j).is_some_and(|x| x.is_punct("]")) {
                        break true;
                    }
                }
                _ => break false,
            }
        };
        if well_formed && keys.len() >= 2 {
            for (line, key) in keys {
                out.push((mi, line, key));
            }
        }
        i += 1;
    }
}

/// Convenience for tests and the seeded-drift check: builds models from
/// `(path, source)` pairs and runs only the schema pass.
pub fn check_sources(files: &[(&Path, &str)]) -> Vec<Violation> {
    let models: Vec<FileModel> = files
        .iter()
        .map(|(p, s)| FileModel::build(p.to_path_buf(), s))
        .collect();
    let refs: Vec<&FileModel> = models.iter().collect();
    let mut out = Vec::new();
    check(&refs, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const TRACE: &str = "crates/bsp/src/trace.rs";
    const ICM: &str = "crates/icm/src/engine.rs";
    const FMT: &str = "crates/bench/src/tracefmt.rs";

    #[test]
    fn extract_json_keys_handles_escaped_and_raw_quotes() {
        assert_eq!(
            extract_json_keys("{\\\"ev\\\":\\\"worker_step\\\",\\\"step\\\":{step}"),
            vec!["ev", "step"]
        );
        assert_eq!(extract_json_keys("{\"a\":1,\"b\":2}"), vec!["a", "b"]);
        assert!(extract_json_keys("no keys {k} here").is_empty());
    }

    #[test]
    fn extras_drift_both_directions() {
        let icm = r#"fn emit(sink: &mut TraceSink) { sink.add("warp_tuples", 1); sink.add("orphan_key", 2); }"#;
        let fmt = r#"fn parse(extras: &Json, n: usize) {
            let a = get_u64(extras, "warp_tuples", n);
            let b = get_u64(extras, "ghost_key", n);
        }"#;
        let vs = check_sources(&[(Path::new(ICM), icm), (Path::new(FMT), fmt)]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs
            .iter()
            .any(|v| v.message().contains("orphan_key") && v.message().contains("never read")));
        assert!(vs
            .iter()
            .any(|v| v.message().contains("ghost_key") && v.message().contains("never written")));
    }

    #[test]
    fn matched_extras_are_clean() {
        let icm = r#"fn emit(sink: &mut TraceSink) { sink.add("warp_tuples", 1); }"#;
        let fmt =
            r#"fn parse(extras: &Json, n: usize) { let a = get_u64(extras, "warp_tuples", n); }"#;
        assert!(check_sources(&[(Path::new(ICM), icm), (Path::new(FMT), fmt)]).is_empty());
    }

    #[test]
    fn checks_gate_on_file_presence() {
        // A producer alone: no consumer file scanned, so no drift noise.
        let icm = r#"fn emit(sink: &mut TraceSink) { sink.add("anything", 1); }"#;
        assert!(check_sources(&[(Path::new(ICM), icm)]).is_empty());
    }

    #[test]
    fn event_field_drift_is_caught() {
        let trace =
            r#"fn write(out: &mut String) { out.push_str("{\"step\":1,\"unread_field\":2}"); }"#;
        let fmt = r#"fn parse(ev: &Json, n: usize) { let s = get_u64(&ev, "step", n); }"#;
        let vs = check_sources(&[(Path::new(TRACE), trace), (Path::new(FMT), fmt)]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message().contains("unread_field"));
    }

    #[test]
    fn test_code_strings_do_not_produce_keys() {
        let trace = "fn write(out: &mut String) { out.push_str(\"{\\\"step\\\":1}\"); }\n\
                     #[cfg(test)]\nmod tests {\n fn t() { check(\"{\\\"only_in_test\\\":1}\"); }\n}\n";
        let fmt = r#"fn parse(ev: &Json, n: usize) { let s = get_u64(&ev, "step", n); }"#;
        assert!(check_sources(&[(Path::new(TRACE), trace), (Path::new(FMT), fmt)]).is_empty());
    }

    #[test]
    fn bench_field_drift_via_tuple_and_allowlist() {
        let record = r#"fn counter_pairs() -> Vec<(&'static str, u64)> {
            vec![("supersteps", 1), ("vanished", 2)]
        }
        fn to_json(arr: Json) -> Json { Json::Obj(vec![("results".to_string(), arr)]) }
        fn baseline(doc: &Json) { doc.get("results"); }"#;
        let validate = r#"fn problems(doc: &Json) {
            doc.get("results");
            for f in ["supersteps", "phantom"] { probe(f); }
        }"#;
        let vs = check_sources(&[
            (Path::new("crates/bench/src/record.rs"), record),
            (
                Path::new("crates/bench/src/bin/bench_validate.rs"),
                validate,
            ),
        ]);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs
            .iter()
            .any(|v| v.message().contains("vanished") && v.message().contains("never read")));
        assert!(vs
            .iter()
            .any(|v| v.message().contains("phantom") && v.message().contains("never written")));
    }

    #[test]
    fn allow_suppresses_a_blessed_drift() {
        let icm = "fn emit(sink: &mut TraceSink) {\n\
                       // lint:allow(schema-drift) — staged for the next tracefmt release\n\
                       sink.add(\"staged_key\", 1);\n\
                   }\n";
        let fmt =
            r#"fn parse(extras: &Json, n: usize) { let _ = get_u64(extras, "staged_key", n); }"#;
        // The producer side is blessed; the consumer still sees the key
        // written, so nothing fires.
        let one_sided = "fn emit(sink: &mut TraceSink) {\n\
                             // lint:allow(schema-drift) — staged for the next tracefmt release\n\
                             sink.add(\"staged_key\", 1);\n\
                         }\n";
        let fmt_without =
            r#"fn parse(extras: &Json, n: usize) { let _ = get_u64(extras, "warp", n); }"#;
        assert!(check_sources(&[(Path::new(ICM), icm), (Path::new(FMT), fmt)]).is_empty());
        let vs = check_sources(&[(Path::new(ICM), one_sided), (Path::new(FMT), fmt_without)]);
        // staged_key's write is blessed; warp's read is not.
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message().contains("warp"));
    }
}
