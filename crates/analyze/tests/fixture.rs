//! Integration tests: the built `graphite-analyze` binary must flag
//! every seeded violation in the negative fixtures (exit 1) and report
//! the real workspace clean (exit 0); and the schema-drift pass must
//! catch a drift seeded into the *real* trace producer.

use std::path::Path;
use std::process::Command;

fn run_analyze(args: &[&str], cwd: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_graphite-analyze"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn graphite-analyze");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn fixture_trips_every_per_file_rule() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = manifest.join("fixtures/violations.rs");
    let (code, text) = run_analyze(&[fixture.to_str().unwrap()], manifest);
    assert_eq!(code, 1, "fixture must fail analysis, output:\n{text}");

    for rule in [
        "no-unwrap",
        "hash-iteration",
        "no-raw-interval",
        "wall-clock",
        "fault-isolation",
        "worker-assignment",
        "determinism-flow",
        "allow-without-reason",
    ] {
        assert!(
            text.contains(&format!("[{rule}]")),
            "missing rule {rule} in:\n{text}"
        );
    }

    // The seeded violations, per rule: 2 unwrap/expect (the reasoned
    // allow is excused; the bare allow suppresses its unwrap but fires
    // allow-without-reason), 2 hash iterations (the shadowing local Vec
    // is pinned NOT to fire), 2 raw interval literals (one split across
    // lines — the old regex missed it), 2 wall-clock hits, 2 cfg-gated
    // fault hooks, 2 worker modulos (one split across lines), 3
    // determinism flows (the allowed one is excused), 2 bad allows.
    assert!(
        text.contains("17 violation(s)"),
        "expected 17 violations in:\n{text}"
    );
    for (rule, want) in [
        ("[no-unwrap]", 2),
        ("[hash-iteration]", 2),
        ("[no-raw-interval]", 2),
        ("[wall-clock]", 2),
        ("[fault-isolation]", 2),
        ("[worker-assignment]", 2),
        ("[determinism-flow]", 3),
        ("[allow-without-reason]", 2),
    ] {
        assert_eq!(
            text.matches(rule).count(),
            want,
            "wrong {rule} count in:\n{text}"
        );
    }

    // The regex scanner's false positive stays fixed: the fn-local
    // `counts` Vec shares its name with a hash field, and must not be
    // reported as hash iteration.
    assert!(
        !text.contains("for c in counts"),
        "local Vec shadowing a hash field was flagged:\n{text}"
    );
}

#[test]
fn drift_fixture_trips_schema_drift_both_directions() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let drift = manifest.join("fixtures/drift");
    let (code, text) = run_analyze(&[drift.to_str().unwrap()], manifest);
    assert_eq!(code, 1, "drift fixture must fail, output:\n{text}");
    assert_eq!(
        text.matches("[schema-drift]").count(),
        3,
        "expected exactly the 3 seeded drifts in:\n{text}"
    );
    // Write side: an extras key and an event field nobody parses.
    assert!(text.contains("phantom_extra"), "{text}");
    assert!(text.contains("orphan_field"), "{text}");
    // Read side: an extras key nobody emits.
    assert!(text.contains("ghost_metric"), "{text}");
    // The aligned keys are not reported.
    for ok in ["warp_tuples", "\"step\"", "\"sent\"", "\"ev\""] {
        assert!(!text.contains(ok), "aligned key {ok} flagged in:\n{text}");
    }
}

#[test]
fn json_format_is_machine_readable() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = manifest.join("fixtures/violations.rs");
    let (code, text) = run_analyze(&[fixture.to_str().unwrap(), "--format", "json"], manifest);
    assert_eq!(code, 1);
    assert!(
        text.contains("\"schema\": \"graphite-analyze/1\""),
        "{text}"
    );
    assert!(text.contains("\"deny_count\": 17"), "{text}");
    assert!(text.contains("\"files_scanned\": 1"), "{text}");
    assert!(text.contains("\"rule\": \"no-unwrap\""), "{text}");
    assert!(text.contains("\"severity\": \"deny\""), "{text}");
}

#[test]
fn warn_severity_downgrades_the_exit_code() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = manifest.join("fixtures/violations.rs");
    let mut args = vec![fixture.to_str().unwrap().to_string()];
    for rule in [
        "no-unwrap",
        "hash-iteration",
        "no-raw-interval",
        "wall-clock",
        "fault-isolation",
        "worker-assignment",
        "determinism-flow",
        "allow-without-reason",
        "schema-drift",
    ] {
        args.push("--warn".to_string());
        args.push(rule.to_string());
    }
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let (code, text) = run_analyze(&argv, manifest);
    assert_eq!(code, 0, "all-warn run must exit clean, output:\n{text}");
    assert!(text.contains("(warn)"), "{text}");
    assert!(!text.contains("(deny)"), "{text}");
}

#[test]
fn missing_path_is_an_io_error() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (code, text) = run_analyze(&["does/not/exist.rs"], manifest);
    assert_eq!(code, 2, "output:\n{text}");
    assert!(text.contains("no such path"), "{text}");
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, text) = run_analyze(&[], &root);
    assert_eq!(code, 0, "workspace must analyze clean, output:\n{text}");
    assert!(text.contains("clean"), "unexpected output:\n{text}");
}

/// Acceptance check for the schema-drift pass against the *real*
/// sources: seeding a new extras key into `bsp::trace` without touching
/// `bench::tracefmt` must be caught.
#[test]
fn seeded_drift_in_the_real_trace_producer_is_caught() {
    use graphite_analyze::schema;

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let read = |rel: &str| std::fs::read_to_string(root.join(rel)).expect(rel);
    let trace = read("crates/bsp/src/trace.rs");
    let icm = read("crates/icm/src/engine.rs");
    let serve = read("crates/serve/src/faultdom.rs");
    let stream = read("crates/stream/src/engine.rs");
    let fmt = read("crates/bench/src/tracefmt.rs");

    let mirror = |trace_src: &str| {
        schema::check_sources(&[
            (Path::new("crates/bsp/src/trace.rs"), trace_src),
            (Path::new("crates/icm/src/engine.rs"), &icm),
            (Path::new("crates/serve/src/faultdom.rs"), &serve),
            (Path::new("crates/stream/src/engine.rs"), &stream),
            (Path::new("crates/bench/src/tracefmt.rs"), &fmt),
        ])
    };

    // The unmodified mirror is clean (the workspace passes the gate).
    let clean = mirror(&trace);
    assert!(
        clean.is_empty(),
        "unexpected drift in real sources: {clean:?}"
    );

    // Seed: a producer starts emitting an extras key, tracefmt untouched.
    let seeded = format!(
        "{trace}\npub fn seeded(sink: &mut TraceSink) {{\n    \
         sink.add(\"seeded_drift_key\", 1);\n}}\n"
    );
    let vs = mirror(&seeded);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert!(
        vs[0].message().contains("seeded_drift_key") && vs[0].message().contains("never read"),
        "{vs:?}"
    );
}
