//! Negative fixture for the graphite-analyze integration test. This file
//! is never compiled — it lives outside any `src/` tree and exists only
//! to be scanned by the analyzer, which must flag every block below
//! except the explicitly allowed ones.

use std::collections::{HashMap, HashSet};
use std::time::Instant; // violation: wall-clock (clock-type import)

struct Holder {
    counts: HashMap<u32, u64>,
}

fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // violation: no-unwrap
}

fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present") // violation: no-unwrap
}

fn allowed_unwrap(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap) — fixture-sanctioned escape hatch.
    x.unwrap()
}

fn bad_hash_iteration(h: &Holder) -> u64 {
    let mut seen = HashSet::new();
    seen.insert(1u32);
    let mut total = 0;
    for (_, v) in h.counts.iter() {
        // violation: hash-iteration
        total += v;
    }
    for s in seen {
        // violation: hash-iteration
        total += u64::from(s);
    }
    total
}

fn bad_interval_literal() -> Interval {
    Interval { start: 0, end: 1 } // violation: no-raw-interval
}

fn bad_wall_clock() -> Instant {
    Instant::now() // violation: wall-clock
}

fn bad_worker_assignment(vid: u64, workers: usize) -> usize {
    (vid % workers as u64) as usize // violation: worker-assignment
}

fn allowed_worker_modulo(token: u64, n_workers: usize) -> usize {
    // lint:allow(worker-assignment) — fixture-sanctioned escape hatch.
    (token % n_workers as u64) as usize
}

fn string_mention_is_fine() -> &'static str {
    // The rule patterns inside this literal must NOT fire:
    "call .unwrap() and Instant::now() and Interval { start }"
}

#[cfg(test)]
fn gated_fault_hook(plan: &FaultPlan) -> bool {
    // The fn line above is a violation: fault-isolation (a fault hook
    // compiled only under cfg(test) — release builds would run an engine
    // the fault tests never exercised).
    plan.faults.is_empty()
}

fn inline_gated_fault_check(fault_plan: &Option<FaultPlan>) -> bool {
    cfg!(debug_assertions) && fault_plan.is_some() // violation: fault-isolation
}

fn allowed_fault_mention(fault_plan: &Option<FaultPlan>) -> bool {
    // lint:allow(fault-isolation) — fixture-sanctioned escape hatch.
    cfg!(test) || fault_plan.is_none()
}

// --- cases the old regex scanner got wrong, pinned correct -----------

fn multiline_worker_modulo(vid: u64, workers: u64) -> u64 {
    // violation: worker-assignment — the line break between `%` and
    // `workers` hid this from the old line-based regex (missed TP).
    vid %
        workers
}

fn multiline_interval_literal() -> Interval {
    // violation: no-raw-interval — same line-break blind spot.
    Interval
        { start: 0, end: 1 }
}

fn local_vec_named_like_a_hash_field() -> u64 {
    // NOT a violation: `counts` here is a fn-local Vec, even though a
    // `counts: HashMap` field exists above. The old scanner flagged this
    // iteration (false positive); the token engine resolves the binding.
    let counts: Vec<u64> = vec![1, 2, 3];
    let mut total = 0;
    for c in counts {
        total += c;
    }
    total
}

// --- determinism-flow ------------------------------------------------

fn flow_float_into_digest(values: &[f64]) -> u64 {
    // The fn line above is a violation: determinism-flow (float
    // arithmetic in the same fn as a digest computation).
    let sum: f64 = values.iter().sum();
    update_digest(sum.to_bits())
}

fn flow_hash_into_outbox(outbox: &mut Outbox) {
    let pending: HashMap<u32, u64> = build_pending(); // violation: determinism-flow
    for (dst, msg) in drain(pending) {
        outbox.send(dst, msg);
    }
}

fn flow_pointer_into_trace(sink: &mut TraceSink, buf: &[u8]) {
    let addr = buf.as_ptr() as usize; // violation: determinism-flow
    sink.add("addr", addr as u64);
}

// lint:allow(determinism-flow) — fixture-sanctioned escape hatch.
fn allowed_flow(digest: &mut u64, value: f64) {
    *digest = update_digest(value.to_bits());
}

// --- allow-without-reason --------------------------------------------

fn bare_allowed_unwrap(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap)
    // The marker above is a violation: allow-without-reason (it still
    // suppresses the unwrap below, but must say why).
    x.unwrap()
}

fn typoed_allow_rule(x: Option<u32>) -> u32 {
    // lint:allow(no-unwarp) — violation: allow-without-reason (unknown
    // rule name, so this escape suppresses nothing).
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1); // exempt: inside #[cfg(test)]
    }
}
