//! Drift-fixture extras producer: a warp engine writing per-step extras
//! through the trace sink. Never compiled.

pub fn record_warp(sink: &mut TraceSink) {
    sink.add("warp_tuples", 1);
    // phantom_extra is written but the fixture tracefmt never reads it
    // (seeded drift, write side).
    sink.add("phantom_extra", 2);
}
