//! Drift-fixture trace producer: writes `graphite-trace/1` event lines.
//! Never compiled; scanned by the schema-drift integration test.

pub struct TraceSink;

impl TraceSink {
    pub fn add(&mut self, key: &str, val: u64) {
        let _ = (key, val);
    }
}

pub fn emit_step(out: &mut String, step: u64, sent: u64) {
    // Writes the fields ev, step, sent — and orphan_field, which the
    // fixture tracefmt never reads (seeded drift, write side).
    out.push_str(&format!(
        "{{\"ev\":\"step_end\",\"step\":{step},\"sent\":{sent},\"orphan_field\":0}}"
    ));
}
