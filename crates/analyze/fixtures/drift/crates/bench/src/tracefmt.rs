//! Drift-fixture trace consumer: parses the event lines and extras the
//! fixture producers write. Never compiled.

pub fn parse_event(ev: &Json, n: usize) -> Option<(u64, u64)> {
    let _ = ev.get("ev");
    let step = get_u64(&ev, "step", n);
    let sent = get_u64(&ev, "sent", n);
    Some((step, sent))
}

pub fn parse_extras(extras: &Json, n: usize) -> u64 {
    let tuples = get_u64(extras, "warp_tuples", n);
    // ghost_metric is read but no fixture producer ever writes it
    // (seeded drift, read side).
    let ghost = get_u64(extras, "ghost_metric", n);
    tuples + ghost
}
