//! The TD path family under the GoFFish-TS baseline: snapshot-sequential
//! execution with explicit state carry-over. Each program follows the
//! GoFFish idiom the paper describes (Sec. VII-A3): a vertex holding a
//! useful value must re-scatter along the currently-live edges at every
//! snapshot *and* hand its own state to the next snapshot — the per-time
//! redundancy that ICM's warp removes.

use crate::common::INF;
use graphite_baselines::goffish::{GofContext, GofProgram};
use graphite_bsp::codec::Wire;
use graphite_tgraph::graph::VertexId;
use graphite_tgraph::time::{Time, TIME_MIN};

/// Temporal SSSP under GoFFish.
pub struct GofSssp {
    /// Source vertex.
    pub source: VertexId,
}

impl GofProgram for GofSssp {
    type State = i64;
    type Msg = i64;

    fn init(&self, vid: VertexId) -> i64 {
        if vid == self.source {
            0
        } else {
            INF
        }
    }

    fn compute(&self, ctx: &mut GofContext<i64>, state: &mut i64, msgs: &[i64]) {
        let best = msgs.iter().copied().min().unwrap_or(INF);
        if best < *state {
            *state = best;
        }
        // Every snapshot re-scatters along the currently-live edges — the
        // per-snapshot redundancy ICM's warp removes. The engine activates
        // every live vertex at each snapshot's first inner superstep.
        if *state < INF {
            let dist = *state;
            let t = ctx.time();
            let edges: Vec<graphite_baselines::vcm::VcmEdge> = ctx.out_edges().to_vec();
            for e in edges {
                ctx.send_future(e.target, t + e.w2, dist + e.w1);
            }
        }
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.min(b))
    }
}

/// Earliest Arrival Time under GoFFish.
pub struct GofEat {
    /// Source vertex.
    pub source: VertexId,
    /// Journey start time at the source.
    pub start: Time,
}

impl GofProgram for GofEat {
    type State = i64;
    type Msg = i64;

    fn init(&self, _vid: VertexId) -> i64 {
        INF
    }

    fn compute(&self, ctx: &mut GofContext<i64>, state: &mut i64, msgs: &[i64]) {
        if ctx.vid() == self.source && ctx.time() >= self.start && *state > self.start {
            *state = self.start;
        }
        let best = msgs.iter().copied().min().unwrap_or(INF);
        if best < *state {
            *state = best;
        }
        // Only forward once the journey can have reached us.
        if *state <= ctx.time() {
            let t = ctx.time();
            let edges: Vec<graphite_baselines::vcm::VcmEdge> = ctx.out_edges().to_vec();
            for e in edges {
                ctx.send_future(e.target, t + e.w2, t + e.w2);
            }
        }
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.min(b))
    }
}

/// Fastest path under GoFFish: propagate the latest journey start; the
/// duration at a vertex as of time `t` is `arrival − start` tracked in
/// the state as `(best_duration, latest_start)`.
pub struct GofFast {
    /// Source vertex.
    pub source: VertexId,
}

/// `(best duration so far, latest journey start present here)`.
pub type FastState = (i64, i64);

impl GofProgram for GofFast {
    type State = FastState;
    type Msg = i64;

    fn init(&self, _vid: VertexId) -> FastState {
        (INF, TIME_MIN)
    }

    fn compute(&self, ctx: &mut GofContext<i64>, state: &mut FastState, msgs: &[i64]) {
        let t = ctx.time();
        let is_source = ctx.vid() == self.source;
        // Arrivals this snapshot: journey start s arriving now has
        // duration t - s.
        if let Some(&s) = msgs.iter().max() {
            if s > state.1 {
                state.1 = s;
            }
            let dur = t - s;
            if dur < state.0 {
                state.0 = dur;
            }
        }
        // Relay: the source starts a fresh journey at every snapshot; any
        // vertex with a known start relays it.
        let edges: Vec<graphite_baselines::vcm::VcmEdge> = ctx.out_edges().to_vec();
        for e in edges {
            if is_source {
                ctx.send_future(e.target, t + e.w2, t);
            }
            if state.1 != TIME_MIN {
                ctx.send_future(e.target, t + e.w2, state.1);
            }
        }
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.max(b))
    }
}

/// Latest Departure under GoFFish: runs with `GofConfig::reverse = true`
/// (snapshots walked backward, in-edges traversed). The state is the
/// latest departure time; "future" messages go to earlier snapshots.
pub struct GofLd {
    /// Target vertex.
    pub target: VertexId,
    /// Deadline at the target.
    pub deadline: Time,
}

impl GofProgram for GofLd {
    type State = i64;
    type Msg = i64;

    fn init(&self, vid: VertexId) -> i64 {
        if vid == self.target {
            i64::MAX // marker: presence at the target suffices
        } else {
            TIME_MIN
        }
    }

    fn compute(&self, ctx: &mut GofContext<i64>, state: &mut i64, msgs: &[i64]) {
        let t = ctx.time();
        let best = msgs.iter().copied().max().unwrap_or(TIME_MIN);
        if *state != i64::MAX && best > *state {
            *state = best;
        }
        // Am I a good place to be at time t (can still reach the target)?
        let good_at = if *state == i64::MAX {
            t <= self.deadline
        } else {
            t <= *state
        };
        if good_at {
            // Notify each in-neighbour whose edge is alive at the
            // *departure* time d = t − travel-time: departing then
            // arrives here now, while "here" is still good. The temporal
            // subgraph is consulted directly because the edge need not be
            // alive at the arrival snapshot.
            let g = ctx.graph();
            let me_idx = graphite_tgraph::graph::VIdx(ctx.vertex());
            let tt_label = g.label("travel-time");
            let sends: Vec<(u32, Time)> = g
                .in_edges(me_idx)
                .iter()
                .filter_map(|&e| {
                    let ed = g.edge(e);
                    let tt = tt_label
                        .and_then(|l| g.edge_property_at(e, l, ed.lifespan.start()))
                        .and_then(graphite_tgraph::property::PropValue::as_long)
                        .unwrap_or(1);
                    let d = t - tt;
                    ed.lifespan.contains_point(d).then_some((ed.src.0, d))
                })
                .collect();
            for (u, d) in sends {
                ctx.send_future(u, d, d);
            }
        }
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.max(b))
    }
}

/// TMST under GoFFish: EAT with parent tracking.
pub struct GofTmst {
    /// Root vertex.
    pub source: VertexId,
    /// Journey start at the root.
    pub start: Time,
}

/// `(arrival, parent vid)`.
pub type TmstState = (i64, u64);

impl GofProgram for GofTmst {
    type State = TmstState;
    type Msg = TmstState;

    fn init(&self, _vid: VertexId) -> TmstState {
        (INF, u64::MAX)
    }

    fn compute(&self, ctx: &mut GofContext<TmstState>, state: &mut TmstState, msgs: &[TmstState]) {
        if ctx.vid() == self.source && ctx.time() >= self.start && state.0 > self.start {
            *state = (self.start, ctx.vid().0);
        }
        let best = msgs.iter().copied().min().unwrap_or((INF, u64::MAX));
        if best < *state {
            *state = best;
        }
        if state.0 <= ctx.time() {
            let t = ctx.time();
            let my_vid = ctx.vid().0;
            let edges: Vec<graphite_baselines::vcm::VcmEdge> = ctx.out_edges().to_vec();
            for e in edges {
                ctx.send_future(e.target, t + e.w2, (t + e.w2, my_vid));
            }
        }
    }

    fn combine(&self, a: &TmstState, b: &TmstState) -> Option<TmstState> {
        Some(*a.min(b))
    }
}

/// Reachability under GoFFish.
pub struct GofReach {
    /// Source vertex.
    pub source: VertexId,
    /// Journey start time.
    pub start: Time,
}

impl GofProgram for GofReach {
    type State = bool;
    type Msg = bool;

    fn init(&self, _vid: VertexId) -> bool {
        false
    }

    fn compute(&self, ctx: &mut GofContext<bool>, state: &mut bool, msgs: &[bool]) {
        if ctx.vid() == self.source && ctx.time() >= self.start {
            *state = true;
        }
        if !msgs.is_empty() {
            *state = true;
        }
        if *state {
            let t = ctx.time();
            let edges: Vec<graphite_baselines::vcm::VcmEdge> = ctx.out_edges().to_vec();
            for e in edges {
                ctx.send_future(e.target, t + e.w2, true);
            }
        }
    }

    fn combine(&self, a: &bool, b: &bool) -> Option<bool> {
        Some(*a || *b)
    }
}

/// Checks that a message type is wire-compatible (compile-time helper for
/// the registry).
pub fn _assert_wire<M: Wire>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_baselines::goffish::{run_goffish, GofConfig};
    use graphite_baselines::EdgeWeights;
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};
    use std::sync::Arc;

    fn weights(g: &graphite_tgraph::graph::TemporalGraph) -> EdgeWeights {
        EdgeWeights {
            w1: g.label("travel-cost"),
            w2: g.label("travel-time"),
        }
    }

    #[test]
    fn gof_eat_matches_icm_eat() {
        let g = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&g),
            Arc::new(GofEat {
                source: transit_ids::A,
                start: 0,
            }),
            &GofConfig {
                workers: 2,
                weights: weights(&g),
                ..Default::default()
            },
        );
        let idx = |vid| g.vertex_index(vid).unwrap().0;
        // Earliest arrivals (within the window [0,9)): C=2, D=2, B=4, E=6.
        assert_eq!(r.states[&idx(transit_ids::C)], 2);
        assert_eq!(r.states[&idx(transit_ids::D)], 2);
        assert_eq!(r.states[&idx(transit_ids::B)], 4);
        assert_eq!(r.states[&idx(transit_ids::E)], 6);
        assert_eq!(r.states[&idx(transit_ids::F)], INF);
    }

    #[test]
    fn gof_fast_durations() {
        let g = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&g),
            Arc::new(GofFast {
                source: transit_ids::A,
            }),
            &GofConfig {
                workers: 2,
                weights: weights(&g),
                ..Default::default()
            },
        );
        let idx = |vid| g.vertex_index(vid).unwrap().0;
        assert_eq!(r.states[&idx(transit_ids::B)].0, 1);
        assert_eq!(r.states[&idx(transit_ids::C)].0, 1);
        assert_eq!(r.states[&idx(transit_ids::D)].0, 1);
        // E's fastest journey of duration 4 via C completes at t=6; the
        // cost-5 B-route completes at 9, outside the window.
        assert_eq!(r.states[&idx(transit_ids::E)].0, 4);
        assert_eq!(r.states[&idx(transit_ids::F)].0, INF);
    }

    #[test]
    fn gof_ld_reverse_matches_icm_ld() {
        let g = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&g),
            Arc::new(GofLd {
                target: transit_ids::E,
                deadline: 8,
            }),
            &GofConfig {
                workers: 2,
                weights: weights(&g),
                reverse: true,
                ..Default::default()
            },
        );
        let idx = |vid| g.vertex_index(vid).unwrap().0;
        // Deadline 8 (within the window): only the C route works.
        assert_eq!(r.states[&idx(transit_ids::C)], 6);
        assert_eq!(r.states[&idx(transit_ids::A)], 2);
        assert_eq!(r.states[&idx(transit_ids::B)], TIME_MIN);
        assert_eq!(r.states[&idx(transit_ids::D)], TIME_MIN);
    }

    #[test]
    fn gof_tmst_parents() {
        let g = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&g),
            Arc::new(GofTmst {
                source: transit_ids::A,
                start: 0,
            }),
            &GofConfig {
                workers: 2,
                weights: weights(&g),
                ..Default::default()
            },
        );
        let idx = |vid| g.vertex_index(vid).unwrap().0;
        assert_eq!(r.states[&idx(transit_ids::B)].1, transit_ids::A.0);
        assert_eq!(r.states[&idx(transit_ids::E)].1, transit_ids::C.0);
        assert_eq!(r.states[&idx(transit_ids::F)].1, u64::MAX);
    }

    #[test]
    fn gof_reach_flags() {
        let g = Arc::new(transit_graph());
        let r = run_goffish(
            Arc::clone(&g),
            Arc::new(GofReach {
                source: transit_ids::A,
                start: 0,
            }),
            &GofConfig {
                workers: 2,
                weights: weights(&g),
                ..Default::default()
            },
        );
        let idx = |vid| g.vertex_index(vid).unwrap().0;
        for vid in [
            transit_ids::B,
            transit_ids::C,
            transit_ids::D,
            transit_ids::E,
        ] {
            assert!(r.states[&idx(vid)], "{vid:?}");
        }
        assert!(!r.states[&idx(transit_ids::F)]);
    }
}
