//! Breadth-First Search (TI, Sec. V): per-time-point hop distance from a
//! source vertex. Snapshot-reducible — the result at time `t` equals BFS
//! on the snapshot at `t`.
//!
//! The ICM form reuses the plain vertex-centric logic: messages inherit
//! the scatter interval (`τm = τ'k`), so a path's validity interval is the
//! intersection of its edges' lifespans — exactly per-snapshot BFS, with
//! one compute call and one message covering a whole run of snapshots.

use crate::common::INF;
use graphite_baselines::vcm::{VcmContext, VcmProgram};
use graphite_icm::prelude::*;
use graphite_tgraph::graph::VertexId;
use graphite_tgraph::time::Interval;

/// BFS under ICM.
pub struct IcmBfs {
    /// The source vertex.
    pub source: VertexId,
}

impl IntervalProgram for IcmBfs {
    /// TI algorithms never read edge properties (Sec. VII-A1), so scatter
    /// granularity is the edge lifespan.
    fn refine_scatter_by_properties(&self) -> bool {
        false
    }

    type State = i64;
    type Msg = i64;

    fn init(&self, _v: &VertexContext) -> i64 {
        INF
    }

    fn compute(&self, ctx: &mut ComputeContext<i64, i64>, t: Interval, state: &i64, msgs: &[i64]) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.source {
                ctx.set_state(t, 0);
            }
            return;
        }
        let best = msgs.iter().copied().min().unwrap_or(INF);
        if best < *state {
            ctx.set_state(t, best);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<i64>, _t: Interval, state: &i64) {
        ctx.send_inherit(state.saturating_add(1));
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.min(b))
    }
}

/// BFS under plain VCM (one snapshot), for the MSB and Chlonos baselines.
pub struct VcmBfs {
    /// The source vertex.
    pub source: VertexId,
}

impl VcmProgram for VcmBfs {
    type State = i64;
    type Msg = i64;

    fn init(&self, _v: u32, vid: VertexId) -> i64 {
        if vid == self.source {
            0
        } else {
            INF
        }
    }

    fn compute(&self, ctx: &mut VcmContext<i64>, state: &mut i64, msgs: &[i64]) {
        let best = msgs.iter().copied().min().unwrap_or(INF);
        let improved = best < *state;
        if improved {
            *state = best;
        }
        if (ctx.superstep() == 1 && *state == 0) || improved {
            let next = state.saturating_add(1);
            let targets: Vec<u32> = ctx.out_edges().iter().map(|e| e.target).collect();
            for target in targets {
                ctx.send(target, next);
            }
        }
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.min(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::INF;
    use graphite_baselines::msb::{run_msb, MsbConfig};
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};
    use std::sync::Arc;

    #[test]
    fn icm_bfs_matches_per_snapshot_bfs() {
        let graph = Arc::new(transit_graph());
        let icm = run_icm(
            &graph,
            Arc::new(IcmBfs {
                source: transit_ids::A,
            }),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let msb = run_msb(
            Arc::clone(&graph),
            |_| {
                Arc::new(VcmBfs {
                    source: transit_ids::A,
                })
            },
            &MsbConfig {
                workers: 2,
                ..Default::default()
            },
        );
        for (t, snapshot) in &msb.per_snapshot {
            for (v, depth) in snapshot {
                let vid = graph.vertex(graphite_tgraph::graph::VIdx(*v)).vid;
                assert_eq!(
                    icm.state_at(vid, *t),
                    Some(depth),
                    "vertex {vid:?} at t={t}"
                );
            }
        }
    }

    #[test]
    fn icm_bfs_interval_structure() {
        let graph = Arc::new(transit_graph());
        let icm = run_icm(
            &graph,
            Arc::new(IcmBfs {
                source: transit_ids::A,
            }),
            &IcmConfig::default(),
        );
        // B is depth 1 exactly while A->B exists: [3,6).
        assert_eq!(icm.state_at(transit_ids::B, 2), Some(&INF));
        assert_eq!(icm.state_at(transit_ids::B, 3), Some(&1));
        assert_eq!(icm.state_at(transit_ids::B, 5), Some(&1));
        assert_eq!(icm.state_at(transit_ids::B, 6), Some(&INF));
        // E is depth 2 only at t=5: A->B ([3,6)) and B->E ([8,9)) never
        // coexist, but A->C [1,3) and C->E [5,7) don't either — E is
        // unreachable in every snapshot.
        assert_eq!(icm.state_at(transit_ids::E, 5), Some(&INF));
        assert_eq!(icm.state_at(transit_ids::F, 4), Some(&INF));
    }

    #[test]
    fn icm_shares_compute_across_snapshots() {
        let graph = Arc::new(transit_graph());
        let icm = run_icm(
            &graph,
            Arc::new(IcmBfs {
                source: transit_ids::A,
            }),
            &IcmConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let msb = run_msb(
            Arc::clone(&graph),
            |_| {
                Arc::new(VcmBfs {
                    source: transit_ids::A,
                })
            },
            &MsbConfig {
                workers: 1,
                ..Default::default()
            },
        );
        // MSB pays one compute call per live vertex per snapshot at
        // minimum; ICM's interval sharing does far better.
        assert!(icm.metrics.counters.compute_calls < msb.metrics.counters.compute_calls);
        assert!(icm.metrics.counters.messages_sent < msb.metrics.counters.messages_sent);
    }
}
