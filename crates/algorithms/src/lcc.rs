//! Local Clustering Coefficient (TD clustering, Sec. V): each interval
//! vertex quantifies how close its out-neighbours are to forming a clique.
//! Each vertex messages its neighbours, which message *their* neighbours
//! to check the ones adjacent to the initial vertex; the edge count is
//! sent back to the initial vertex (three message hops plus the report).
//!
//! Temporal semantics: a neighbour edge `w → x` counts for `v` over every
//! interval where the three edges `v→w`, `w→x` and `v→x` are concurrently
//! alive (the intersections are threaded through the message intervals, so
//! warp enforces the bounds automatically). The coefficient over an
//! interval is `count / (d·(d−1))` with `d` the out-degree there.

use crate::common::out_degree_timeline;
use graphite_bsp::codec::{get_varint, put_varint, Wire};
use graphite_icm::prelude::*;
use graphite_tgraph::graph::{TemporalGraph, VertexId};
use graphite_tgraph::iset::IntervalMap;
use graphite_tgraph::time::Interval;

/// The three-stage LCC protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LccMsg {
    /// Hop 1: "I am your in-neighbour `origin`".
    Origin(u64),
    /// Hop 2: "`origin` is a 2-hop in-neighbour via me".
    TwoHop(u64),
    /// Hop 3: one confirmed neighbour-edge for `origin`'s count.
    Report,
}

impl Wire for LccMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LccMsg::Origin(v) => {
                buf.push(0);
                put_varint(*v, buf);
            }
            LccMsg::TwoHop(v) => {
                buf.push(1);
                put_varint(*v, buf);
            }
            LccMsg::Report => buf.push(2),
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let (&tag, rest) = buf.split_first()?;
        *buf = rest;
        match tag {
            0 => Some(LccMsg::Origin(get_varint(buf)?)),
            1 => Some(LccMsg::TwoHop(get_varint(buf)?)),
            2 => Some(LccMsg::Report),
            _ => None,
        }
    }
}

/// LCC under ICM. The protocol runs entirely through direct interval
/// messages (the Giraph `sendMessage` escape hatch the paper's design
/// implies for the report-back hop); the vertex state accumulates the
/// per-interval neighbour-edge count.
pub struct IcmLcc;

impl IntervalProgram for IcmLcc {
    type State = u64;
    type Msg = LccMsg;

    fn init(&self, _v: &VertexContext) -> u64 {
        0
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<u64, LccMsg>,
        t: Interval,
        state: &u64,
        msgs: &[LccMsg],
    ) {
        let g = ctx.graph();
        let v = ctx.vertex_index();
        match ctx.superstep() {
            1 => {
                // Hop 1: announce v to every out-neighbour over the edge's
                // lifespan.
                let me = ctx.vid();
                let sends: Vec<(VertexId, Interval)> = g
                    .out_edges(v)
                    .iter()
                    .map(|&e| {
                        let ed = g.edge(e);
                        (g.vertex(ed.dst).vid, ed.lifespan)
                    })
                    .collect();
                for (w, iv) in sends {
                    ctx.send_to(w, iv, LccMsg::Origin(me.0));
                }
            }
            2 => {
                // Hop 2: relay each origin to my out-neighbours, clipped to
                // this tuple and the second edge's lifespan.
                let relays: Vec<(VertexId, Interval)> = g
                    .out_edges(v)
                    .iter()
                    .filter_map(|&e| {
                        let ed = g.edge(e);
                        ed.lifespan
                            .intersect(t)
                            .map(|iv| (g.vertex(ed.dst).vid, iv))
                    })
                    .collect();
                for m in msgs {
                    let LccMsg::Origin(origin) = m else { continue };
                    for (x, iv) in &relays {
                        if *x != VertexId(*origin) {
                            ctx.send_to(*x, *iv, LccMsg::TwoHop(*origin));
                        }
                    }
                }
            }
            3 => {
                // Hop 3: for each 2-hop origin, confirm my in-edge from it
                // and report one neighbour-edge back.
                for m in msgs {
                    let LccMsg::TwoHop(origin) = m else { continue };
                    let origin = VertexId(*origin);
                    let confirmations: Vec<Interval> = g
                        .in_edges(v)
                        .iter()
                        .filter_map(|&e| {
                            let ed = g.edge(e);
                            (g.vertex(ed.src).vid == origin)
                                .then_some(ed.lifespan)
                                .and_then(|iv| iv.intersect(t))
                        })
                        .collect();
                    for iv in confirmations {
                        ctx.send_to(origin, iv, LccMsg::Report);
                    }
                }
            }
            _ => {
                // Hop 4: accumulate reports into the per-interval count.
                let reports = msgs.iter().filter(|m| matches!(m, LccMsg::Report)).count() as u64;
                if reports > 0 {
                    ctx.set_state(t, state + reports);
                }
            }
        }
    }
}

/// Turns an LCC count result into per-interval coefficients
/// `count / (d·(d−1))`, skipping intervals with out-degree < 2.
pub fn lcc_coefficients(
    graph: &TemporalGraph,
    result: &IcmResult<u64>,
) -> std::collections::BTreeMap<VertexId, Vec<(Interval, f64)>> {
    let mut out = std::collections::BTreeMap::new();
    for (vid, counts) in &result.states {
        let Some(v) = graph.vertex_index(*vid) else {
            continue;
        };
        let degs = out_degree_timeline(graph, v);
        let count_map: IntervalMap<u64> =
            IntervalMap::from_entries(counts.clone()).expect("result states are partitioned");
        let mut entries = Vec::new();
        for (div, d) in degs {
            if d < 2 {
                continue;
            }
            for (civ, c) in count_map.overlapping(div) {
                let Some(clip) = civ.intersect(div) else {
                    continue;
                };
                let denom = (d as f64) * (d as f64 - 1.0);
                entries.push((clip, *c as f64 / denom));
            }
        }
        out.insert(*vid, entries);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::EdgeId;
    use std::sync::Arc;

    /// A triangle 0→1, 1→2, 0→2 alive over different windows, plus an
    /// outlier edge 2→3.
    fn triangle_graph() -> TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let life = Interval::new(0, 10);
        for i in 0..4 {
            b.add_vertex(VertexId(i), life).unwrap();
        }
        b.add_edge(EdgeId(0), VertexId(0), VertexId(1), Interval::new(0, 8))
            .unwrap();
        b.add_edge(EdgeId(1), VertexId(1), VertexId(2), Interval::new(2, 10))
            .unwrap();
        b.add_edge(EdgeId(2), VertexId(0), VertexId(2), Interval::new(0, 6))
            .unwrap();
        b.add_edge(EdgeId(3), VertexId(2), VertexId(3), life)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn msg_round_trip() {
        for m in [LccMsg::Origin(42), LccMsg::TwoHop(7), LccMsg::Report] {
            let mut buf = Vec::new();
            m.encode(&mut buf);
            let mut s = buf.as_slice();
            assert_eq!(LccMsg::decode(&mut s), Some(m));
            assert!(s.is_empty());
        }
    }

    #[test]
    fn triangle_counts_respect_concurrency() {
        let graph = Arc::new(triangle_graph());
        let r = run_icm(
            &graph,
            Arc::new(IcmLcc),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        // The triangle (0→1, 1→2, 0→2) is concurrent over [2,6): vertex 0
        // counts one neighbour-edge (1→2) there, zero elsewhere.
        let zero = &r.states[&VertexId(0)];
        let count_at = |t: i64| {
            zero.iter()
                .find(|(iv, _)| iv.contains_point(t))
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert_eq!(count_at(1), 0);
        assert_eq!(count_at(2), 1);
        assert_eq!(count_at(5), 1);
        assert_eq!(count_at(6), 0);
        // Other vertices never head a triangle (no cycle closes for them).
        for v in 1..4 {
            assert!(r.states[&VertexId(v)].iter().all(|(_, c)| *c == 0), "v{v}");
        }
    }

    #[test]
    fn coefficients_divide_by_degree_pairs() {
        let graph = Arc::new(triangle_graph());
        let r = run_icm(&graph, Arc::new(IcmLcc), &IcmConfig::default());
        let coeffs = lcc_coefficients(&graph, &r);
        // Vertex 0 has out-degree 2 over [0,6): d(d-1) = 2 and count 1 on
        // [2,6) -> coefficient 0.5 there.
        let zero = &coeffs[&VertexId(0)];
        let at = |t: i64| {
            zero.iter()
                .find(|(iv, _)| iv.contains_point(t))
                .map(|(_, c)| *c)
        };
        assert_eq!(at(3), Some(0.5));
        assert_eq!(at(1), Some(0.0));
        // After 6 the degree drops below 2: no coefficient.
        assert_eq!(at(7), None);
    }

    #[test]
    fn counts_are_stable_across_workers() {
        let graph = Arc::new(triangle_graph());
        let r1 = run_icm(
            &graph,
            Arc::new(IcmLcc),
            &IcmConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let r4 = run_icm(
            &graph,
            Arc::new(IcmLcc),
            &IcmConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(r1.states, r4.states);
        assert_eq!(
            r1.metrics.counters.messages_sent,
            r4.metrics.counters.messages_sent
        );
    }
}
