//! Weakly Connected Components (TI, Sec. V): per-time-point minimum-label
//! propagation treating edges as undirected. Snapshot-reducible.

use graphite_baselines::vcm::{VcmContext, VcmProgram};
use graphite_icm::prelude::*;
use graphite_tgraph::graph::VertexId;
use graphite_tgraph::time::Interval;

/// Sentinel meaning "label not yet assigned" (before superstep 1 runs).
const UNSET: u64 = u64::MAX;

/// WCC under ICM: every vertex adopts the minimum external id reachable
/// over undirected temporal paths, per time-point.
pub struct IcmWcc;

impl IntervalProgram for IcmWcc {
    /// TI algorithms never read edge properties (Sec. VII-A1), so scatter
    /// granularity is the edge lifespan.
    fn refine_scatter_by_properties(&self) -> bool {
        false
    }

    type State = u64;
    type Msg = u64;

    fn init(&self, _v: &VertexContext) -> u64 {
        UNSET
    }

    fn compute(&self, ctx: &mut ComputeContext<u64, u64>, t: Interval, state: &u64, msgs: &[u64]) {
        if ctx.superstep() == 1 {
            // Claim the own id: a real state change, so scatter announces
            // it to all temporal neighbours.
            ctx.set_state(t, ctx.vid().0);
            return;
        }
        let best = msgs.iter().copied().min().unwrap_or(UNSET);
        if best < *state {
            ctx.set_state(t, best);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<u64>, _t: Interval, state: &u64) {
        ctx.send_inherit(*state);
    }

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::Both
    }

    fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
        Some(*a.min(b))
    }
}

/// WCC under plain VCM (one snapshot).
pub struct VcmWcc;

impl VcmProgram for VcmWcc {
    type State = u64;
    type Msg = u64;

    fn init(&self, _v: u32, vid: VertexId) -> u64 {
        vid.0
    }

    fn compute(&self, ctx: &mut VcmContext<u64>, state: &mut u64, msgs: &[u64]) {
        let best = msgs.iter().copied().min().unwrap_or(UNSET);
        let improved = best < *state;
        if improved {
            *state = best;
        }
        if ctx.superstep() == 1 || improved {
            let label = *state;
            let targets: Vec<u32> = ctx
                .out_edges()
                .iter()
                .chain(ctx.in_edges().iter())
                .map(|e| e.target)
                .collect();
            for target in targets {
                ctx.send(target, label);
            }
        }
    }

    fn combine(&self, a: &u64, b: &u64) -> Option<u64> {
        Some(*a.min(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_baselines::msb::{run_msb, MsbConfig};
    use graphite_baselines::vcm::VcmConfig;
    use graphite_baselines::{run_vcm, SnapshotTopology};
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};
    use std::sync::Arc;

    #[test]
    fn icm_wcc_matches_per_snapshot_wcc() {
        let graph = Arc::new(transit_graph());
        let icm = run_icm(
            &graph,
            Arc::new(IcmWcc),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let msb = run_msb(
            Arc::clone(&graph),
            |_| Arc::new(VcmWcc),
            &MsbConfig {
                workers: 2,
                need_in_edges: true,
                ..Default::default()
            },
        );
        for (t, snapshot) in &msb.per_snapshot {
            for (v, label) in snapshot {
                let vid = graph.vertex(graphite_tgraph::graph::VIdx(*v)).vid;
                assert_eq!(icm.state_at(vid, *t), Some(label), "{vid:?} at {t}");
            }
        }
    }

    #[test]
    fn components_follow_edge_lifespans() {
        let graph = Arc::new(transit_graph());
        let icm = run_icm(&graph, Arc::new(IcmWcc), &IcmConfig::default());
        // At t=4 the live edges are A->B and E->F: components {A,B},
        // {C}, {D}, {E,F}.
        assert_eq!(icm.state_at(transit_ids::A, 4), Some(&0));
        assert_eq!(icm.state_at(transit_ids::B, 4), Some(&0));
        assert_eq!(icm.state_at(transit_ids::C, 4), Some(&2));
        assert_eq!(icm.state_at(transit_ids::D, 4), Some(&3));
        assert_eq!(icm.state_at(transit_ids::E, 4), Some(&4));
        assert_eq!(icm.state_at(transit_ids::F, 4), Some(&4));
        // At t=0 no edges exist: everyone is its own component.
        for vid in [transit_ids::A, transit_ids::B, transit_ids::F] {
            assert_eq!(icm.state_at(vid, 0), Some(&vid.0));
        }
    }

    #[test]
    fn single_snapshot_vcm_agrees() {
        let graph = Arc::new(transit_graph());
        let topo = Arc::new(SnapshotTopology::new(
            Arc::clone(&graph),
            2,
            Default::default(),
        ));
        let r = run_vcm(
            &topo,
            Arc::new(VcmWcc),
            &VcmConfig {
                workers: 2,
                need_in_edges: true,
                ..Default::default()
            },
        );
        // Live at t=2: A->C, A->D, E->F. Components {A,C,D}, {B}, {E,F}.
        let idx = |vid: VertexId| graph.vertex_index(vid).unwrap().0;
        assert_eq!(r.states[&idx(transit_ids::A)], 0);
        assert_eq!(r.states[&idx(transit_ids::C)], 0);
        assert_eq!(r.states[&idx(transit_ids::D)], 0);
        assert_eq!(r.states[&idx(transit_ids::B)], 1);
        assert_eq!(r.states[&idx(transit_ids::E)], 4);
        assert_eq!(r.states[&idx(transit_ids::F)], 4);
    }
}
