//! Shared helpers for the algorithm implementations: label resolution,
//! degree timelines, and result digests used by the cross-platform
//! equivalence checks.

use graphite_bsp::partition::splitmix64;
use graphite_tgraph::graph::{TemporalGraph, VIdx, VertexId};
use graphite_tgraph::property::LabelId;
use graphite_tgraph::time::{Interval, Time};
use std::collections::BTreeMap;

/// Cost of "unreachable" in the path algorithms.
pub const INF: i64 = i64::MAX;

/// The edge-property labels the TD algorithms use (paper Sec. VII-A1: the
/// TD algorithms use one edge property; TI algorithms use none).
#[derive(Clone, Copy, Debug)]
pub struct AlgLabels {
    /// `travel-time` — how long traversing the edge takes.
    pub travel_time: Option<LabelId>,
    /// `travel-cost` — the cost the path algorithms minimize.
    pub travel_cost: Option<LabelId>,
}

impl AlgLabels {
    /// Resolves the standard labels on `graph` (missing labels fall back
    /// to travel time 1 / cost 0 at use sites).
    pub fn resolve(graph: &TemporalGraph) -> Self {
        AlgLabels {
            travel_time: graph.label("travel-time"),
            travel_cost: graph.label("travel-cost"),
        }
    }
}

/// The piecewise-constant out-degree of `v` over its lifespan, as
/// `(interval, degree)` segments covering the lifespan. Used by PageRank.
pub fn out_degree_timeline(graph: &TemporalGraph, v: VIdx) -> Vec<(Interval, u32)> {
    degree_timeline(graph, v, /* out = */ true)
}

/// The piecewise-constant in-degree of `v` over its lifespan.
pub fn in_degree_timeline(graph: &TemporalGraph, v: VIdx) -> Vec<(Interval, u32)> {
    degree_timeline(graph, v, false)
}

fn degree_timeline(graph: &TemporalGraph, v: VIdx, out: bool) -> Vec<(Interval, u32)> {
    let life = graph.vertex(v).lifespan;
    let edges = if out {
        graph.out_edges(v)
    } else {
        graph.in_edges(v)
    };
    let mut bounds = vec![life.start(), life.end()];
    for &e in edges {
        let iv = graph.edge(e).lifespan;
        bounds.push(iv.start());
        bounds.push(iv.end());
    }
    bounds.sort_unstable();
    bounds.dedup();
    bounds.retain(|&t| life.contains_point(t) || t == life.end());
    let mut segments = Vec::with_capacity(bounds.len());
    for w in bounds.windows(2) {
        let Some(seg) = Interval::try_new(w[0], w[1]) else {
            continue;
        };
        let deg = edges
            .iter()
            .filter(|&&e| graph.edge(e).lifespan.contains_point(seg.start()))
            .count() as u32;
        segments.push((seg, deg));
    }
    segments
}

/// The degree-change boundaries of `v` (interior time-points only), for
/// pre-partitioning PageRank states.
pub fn degree_boundaries(graph: &TemporalGraph, v: VIdx) -> Vec<Time> {
    let life = graph.vertex(v).lifespan;
    let mut bounds: Vec<Time> = Vec::new();
    for &e in graph.out_edges(v) {
        let iv = graph.edge(e).lifespan;
        bounds.push(iv.start());
        bounds.push(iv.end());
    }
    bounds.sort_unstable();
    bounds.dedup();
    bounds.retain(|&t| life.contains_point(t) && t != life.start());
    bounds
}

/// A deterministic digest over per-(vertex, time-point) values, used to
/// assert that all platforms produce identical results (paper
/// Sec. VII-B1) without storing full result sets. Values are folded with
/// an order-independent combiner so iteration order doesn't matter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultDigest(pub u64);

impl ResultDigest {
    /// Folds one `(vertex, time, value)` observation.
    pub fn fold(&mut self, vid: VertexId, t: Time, value: u64) {
        let h = splitmix64(splitmix64(vid.0 ^ (t as u64).rotate_left(17)) ^ value);
        self.0 = self.0.wrapping_add(h);
    }

    /// Quantizes a float to 6 decimal digits for digesting (PageRank sums
    /// may differ in association order across platforms by ~1e-12).
    // lint:allow(determinism-flow) — the 1e-6 quantization below exists
    // precisely so association-order float noise cannot reach the digest
    pub fn fold_f64(&mut self, vid: VertexId, t: Time, value: f64) {
        let q = (value * 1e6).round() as i64;
        self.fold(vid, t, q as u64);
    }
}

/// Expands interval-valued states into per-time-point digest observations
/// over `window`.
pub fn digest_interval_states<S, F>(
    states: &BTreeMap<VertexId, Vec<(Interval, S)>>,
    window: Interval,
    mut encode: F,
) -> ResultDigest
where
    F: FnMut(&S) -> u64,
{
    let mut d = ResultDigest::default();
    for (vid, entries) in states {
        for (iv, s) in entries {
            let Some(clipped) = iv.intersect(window) else {
                continue;
            };
            let v = encode(s);
            for t in clipped.points() {
                d.fold(*vid, t, v);
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};

    #[test]
    fn out_degree_timeline_of_transit_a() {
        let g = transit_graph();
        let a = g.vertex_index(transit_ids::A).unwrap();
        let tl = out_degree_timeline(&g, a);
        // A's edges: ->C [1,3), ->D [1,4), ->B [3,6). Degrees: [0,1)=0,
        // [1,3)=2, [3,4)=2, [4,6)=1, [6,inf)=0.
        let at = |t: Time| tl.iter().find(|(iv, _)| iv.contains_point(t)).unwrap().1;
        assert_eq!(at(0), 0);
        assert_eq!(at(1), 2);
        assert_eq!(at(2), 2);
        assert_eq!(at(3), 2);
        assert_eq!(at(4), 1);
        assert_eq!(at(5), 1);
        assert_eq!(at(6), 0);
        assert_eq!(at(1_000), 0);
        // Segments tile the lifespan.
        for w in tl.windows(2) {
            assert!(w[0].0.meets(w[1].0));
        }
    }

    #[test]
    fn degree_boundaries_are_interior() {
        let g = transit_graph();
        let a = g.vertex_index(transit_ids::A).unwrap();
        let b = degree_boundaries(&g, a);
        assert_eq!(b, vec![1, 3, 4, 6]);
        let f = g.vertex_index(transit_ids::F).unwrap();
        assert!(degree_boundaries(&g, f).is_empty());
    }

    #[test]
    fn digest_is_order_independent_and_sensitive() {
        let mut d1 = ResultDigest::default();
        d1.fold(VertexId(1), 0, 5);
        d1.fold(VertexId(2), 3, 7);
        let mut d2 = ResultDigest::default();
        d2.fold(VertexId(2), 3, 7);
        d2.fold(VertexId(1), 0, 5);
        assert_eq!(d1, d2);
        let mut d3 = ResultDigest::default();
        d3.fold(VertexId(1), 0, 5);
        d3.fold(VertexId(2), 3, 8);
        assert_ne!(d1, d3);
    }

    #[test]
    fn digest_interval_states_expands_points() {
        let mut states: BTreeMap<VertexId, Vec<(Interval, i64)>> = BTreeMap::new();
        states.insert(
            VertexId(1),
            vec![(Interval::new(0, 3), 9), (Interval::from_start(3), 4)],
        );
        let d = digest_interval_states(&states, Interval::new(0, 5), |s| *s as u64);
        let mut manual = ResultDigest::default();
        for t in 0..3 {
            manual.fold(VertexId(1), t, 9);
        }
        for t in 3..5 {
            manual.fold(VertexId(1), t, 4);
        }
        assert_eq!(d, manual);
    }
}
