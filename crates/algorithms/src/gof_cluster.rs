//! LCC and TC under the GoFFish baseline: the three-hop clustering
//! protocols run *within* each snapshot's inner vertex-centric loop, one
//! snapshot at a time — recomputing from scratch at every time-point,
//! which is precisely the redundancy ICM shares away. A per-snapshot
//! self-carry keeps every vertex active at every snapshot (the GoFFish
//! stateful-vertex idiom).

use crate::lcc::LccMsg;
use crate::tc::TcMsg;
use graphite_baselines::goffish::{GofContext, GofProgram};
use graphite_tgraph::graph::VertexId;

/// LCC under GoFFish: the state is the neighbour-edge count for the
/// *current* snapshot (reset at each snapshot's first inner superstep).
pub struct GofLcc;

impl GofProgram for GofLcc {
    type State = u64;
    type Msg = LccMsg;

    fn init(&self, _vid: VertexId) -> u64 {
        0
    }

    fn compute(&self, ctx: &mut GofContext<LccMsg>, state: &mut u64, msgs: &[LccMsg]) {
        match ctx.superstep() {
            1 => {
                // New snapshot: reset, announce to out-neighbours, and
                // schedule the next snapshot's wake-up.
                *state = 0;
                let me = ctx.vid().0;
                let edges: Vec<_> = ctx.out_edges().to_vec();
                for e in edges {
                    ctx.send_local(e.target, LccMsg::Origin(me));
                }
            }
            2 => {
                let g = ctx.graph();
                let edges: Vec<_> = ctx.out_edges().to_vec();
                for m in msgs {
                    let LccMsg::Origin(origin) = m else { continue };
                    for e in &edges {
                        // Targets are dense indices; compare vids.
                        let tvid = g.vertex(graphite_tgraph::graph::VIdx(e.target)).vid.0;
                        if tvid != *origin {
                            ctx.send_local(e.target, LccMsg::TwoHop(*origin));
                        }
                    }
                }
            }
            3 => {
                let g = ctx.graph();
                let me = graphite_tgraph::graph::VIdx(ctx.vertex());
                let t = ctx.time();
                for m in msgs {
                    let LccMsg::TwoHop(origin) = m else { continue };
                    for &e in g.in_edges(me) {
                        let ed = g.edge(e);
                        if g.vertex(ed.src).vid.0 == *origin && ed.lifespan.contains_point(t) {
                            ctx.send_local(ed.src.0, LccMsg::Report);
                        }
                    }
                }
            }
            _ => {
                *state += msgs.iter().filter(|m| matches!(m, LccMsg::Report)).count() as u64;
            }
        }
    }
}

/// TC under GoFFish: per-snapshot directed 3-cycle counts.
pub struct GofTc;

impl GofProgram for GofTc {
    type State = u64;
    type Msg = TcMsg;

    fn init(&self, _vid: VertexId) -> u64 {
        0
    }

    fn compute(&self, ctx: &mut GofContext<TcMsg>, state: &mut u64, msgs: &[TcMsg]) {
        match ctx.superstep() {
            1 => {
                *state = 0;
                let me = ctx.vid().0;
                let edges: Vec<_> = ctx.out_edges().to_vec();
                for e in edges {
                    ctx.send_local(e.target, TcMsg::Origin(me));
                }
            }
            2 => {
                let g = ctx.graph();
                let me = ctx.vid().0;
                let edges: Vec<_> = ctx.out_edges().to_vec();
                for m in msgs {
                    let TcMsg::Origin(origin) = m else { continue };
                    for e in &edges {
                        let tvid = g.vertex(graphite_tgraph::graph::VIdx(e.target)).vid.0;
                        if tvid != *origin && tvid != me {
                            ctx.send_local(e.target, TcMsg::TwoHop(*origin));
                        }
                    }
                }
            }
            _ => {
                let g = ctx.graph();
                let t = ctx.time();
                let me = graphite_tgraph::graph::VIdx(ctx.vertex());
                for m in msgs {
                    let TcMsg::TwoHop(origin) = m else { continue };
                    for &e in g.out_edges(me) {
                        let ed = g.edge(e);
                        if g.vertex(ed.dst).vid.0 == *origin && ed.lifespan.contains_point(t) {
                            *state += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_baselines::goffish::{run_goffish, GofConfig};
    use graphite_icm::prelude::*;
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::graph::EdgeId;
    use graphite_tgraph::time::Interval;
    use std::sync::Arc;

    fn triangle() -> graphite_tgraph::graph::TemporalGraph {
        let mut b = TemporalGraphBuilder::new();
        let life = Interval::new(0, 10);
        for i in 0..4 {
            b.add_vertex(VertexId(i), life).unwrap();
        }
        b.add_edge(EdgeId(0), VertexId(0), VertexId(1), Interval::new(0, 8))
            .unwrap();
        b.add_edge(EdgeId(1), VertexId(1), VertexId(2), Interval::new(2, 10))
            .unwrap();
        b.add_edge(EdgeId(2), VertexId(0), VertexId(2), Interval::new(0, 6))
            .unwrap();
        b.add_edge(EdgeId(3), VertexId(2), VertexId(0), Interval::new(1, 7))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn gof_lcc_matches_icm_lcc_per_snapshot() {
        let graph = Arc::new(triangle());
        let icm = run_icm(
            &graph,
            Arc::new(crate::lcc::IcmLcc),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let gof = run_goffish(
            Arc::clone(&graph),
            Arc::new(GofLcc),
            &GofConfig {
                workers: 2,
                ..Default::default()
            },
        );
        for (t, snapshot) in &gof.per_snapshot {
            for (v, count) in snapshot {
                let vid = graph.vertex(graphite_tgraph::graph::VIdx(*v)).vid;
                assert_eq!(icm.state_at(vid, *t), Some(count), "{vid:?} at t={t}");
            }
        }
        // GoFFish recomputes per snapshot: strictly more messages.
        assert!(gof.metrics.counters.messages_sent > icm.metrics.counters.messages_sent);
    }

    #[test]
    fn gof_tc_matches_icm_tc_per_snapshot() {
        let graph = Arc::new(triangle());
        let icm = run_icm(
            &graph,
            Arc::new(crate::tc::IcmTc),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let gof = run_goffish(
            Arc::clone(&graph),
            Arc::new(GofTc),
            &GofConfig {
                workers: 2,
                ..Default::default()
            },
        );
        for (t, snapshot) in &gof.per_snapshot {
            for (v, count) in snapshot {
                let vid = graph.vertex(graphite_tgraph::graph::VIdx(*v)).vid;
                assert_eq!(icm.state_at(vid, *t), Some(count), "{vid:?} at t={t}");
            }
        }
    }
}
