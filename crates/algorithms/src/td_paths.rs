//! The time-dependent path family under ICM (Sec. V): temporal SSSP
//! (Alg. 1), Earliest Arrival Time, Fastest path, Latest Departure,
//! Time-Minimum Spanning Tree, and Reachability. As the paper notes, all
//! of these are minimal variations of the SSSP design.
//!
//! Conventions shared by the family: `travel-time`/`travel-cost` edge
//! properties (travel time defaults to 1, cost to 0); a journey may wait
//! at a vertex; an edge may be *initiated* at any time-point of its
//! lifespan and arrives `travel-time` later.

use crate::common::{AlgLabels, INF};
use graphite_icm::prelude::*;
use graphite_tgraph::graph::VertexId;
use graphite_tgraph::time::{Interval, Time, TIME_MIN};

fn travel(
    ctx: &ScatterContext<'_, impl Send + Sync + Clone + 'static>,
    labels: &AlgLabels,
) -> (i64, i64) {
    // Properties are constant across the refined edge segment.
    let tt = labels
        .travel_time
        .and_then(|l| ctx.edge_prop_long(l))
        .unwrap_or(1);
    let tc = labels
        .travel_cost
        .and_then(|l| ctx.edge_prop_long(l))
        .unwrap_or(0);
    (tt, tc)
}

/// Temporal single-source shortest path (the paper's Alg. 1): lowest
/// travel cost from the source for every interval of arrival.
pub struct IcmSssp {
    /// Source vertex.
    pub source: VertexId,
    /// Edge property labels.
    pub labels: AlgLabels,
}

impl IntervalProgram for IcmSssp {
    type State = i64;
    type Msg = i64;

    fn init(&self, _v: &VertexContext) -> i64 {
        INF
    }

    fn compute(&self, ctx: &mut ComputeContext<i64, i64>, t: Interval, state: &i64, msgs: &[i64]) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.source {
                ctx.set_state(t, 0);
            }
            return;
        }
        let min = msgs.iter().copied().min().unwrap_or(INF);
        if min < *state {
            ctx.set_state(t, min);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<i64>, t: Interval, state: &i64) {
        let (tt, tc) = travel(ctx, &self.labels);
        ctx.send(Interval::from_start(t.start() + tt), state + tc);
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.min(b))
    }
}

/// Earliest Arrival Time: the message carries the arrival time instead of
/// the accumulated cost (Sec. V).
pub struct IcmEat {
    /// Source vertex.
    pub source: VertexId,
    /// Journey start time at the source.
    pub start: Time,
    /// Edge property labels.
    pub labels: AlgLabels,
}

impl IntervalProgram for IcmEat {
    type State = i64;
    type Msg = i64;

    fn init(&self, _v: &VertexContext) -> i64 {
        INF
    }

    fn compute(&self, ctx: &mut ComputeContext<i64, i64>, t: Interval, state: &i64, msgs: &[i64]) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.source {
                // Present at the source from `start` on.
                ctx.set_state(
                    Interval::from_start(self.start).intersect(t).unwrap_or(t),
                    self.start,
                );
            }
            return;
        }
        let min = msgs.iter().copied().min().unwrap_or(INF);
        if min < *state {
            ctx.set_state(t, min);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<i64>, t: Interval, _state: &i64) {
        let (tt, _) = travel(ctx, &self.labels);
        let arrival = t.start() + tt;
        ctx.send(Interval::from_start(arrival), arrival);
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.min(b))
    }
}

impl IcmEat {
    /// The earliest arrival at a vertex from an [`IcmResult`]: the minimum
    /// state value across its intervals.
    pub fn earliest(result: &IcmResult<i64>, vid: VertexId) -> Option<i64> {
        let entries = result.states.get(&vid)?;
        entries.iter().map(|(_, s)| *s).min().filter(|s| *s < INF)
    }
}

/// Time-Minimum Spanning Tree: EAT plus parent tracking to rebuild the
/// tree (Sec. V). State and message are `(arrival, parent vid)`.
pub struct IcmTmst {
    /// Root of the tree.
    pub source: VertexId,
    /// Journey start time at the root.
    pub start: Time,
    /// Edge property labels.
    pub labels: AlgLabels,
}

/// `(arrival time, parent vid)`; parent `u64::MAX` = none.
pub type TmstState = (i64, u64);

impl IntervalProgram for IcmTmst {
    type State = TmstState;
    type Msg = TmstState;

    fn init(&self, _v: &VertexContext) -> TmstState {
        (INF, u64::MAX)
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<TmstState, TmstState>,
        t: Interval,
        state: &TmstState,
        msgs: &[TmstState],
    ) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.source {
                ctx.set_state(
                    Interval::from_start(self.start).intersect(t).unwrap_or(t),
                    (self.start, ctx.vid().0),
                );
            }
            return;
        }
        // Lexicographic min: earliest arrival, ties by smaller parent id
        // for determinism across platforms and worker counts.
        let best = msgs.iter().copied().min().unwrap_or((INF, u64::MAX));
        if best < *state {
            ctx.set_state(t, best);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<TmstState>, t: Interval, _state: &TmstState) {
        let (tt, _) = travel(ctx, &self.labels);
        let arrival = t.start() + tt;
        let parent = ctx.graph().vertex(ctx.edge().src).vid.0;
        ctx.send(Interval::from_start(arrival), (arrival, parent));
    }

    fn combine(&self, a: &TmstState, b: &TmstState) -> Option<TmstState> {
        Some(*a.min(b))
    }
}

/// Fastest path (minimum journey duration): the message carries the time
/// the journey started at the source; the state keeps the latest such
/// start per arrival interval; the fastest duration is the minimum of
/// `interval start − journey start` over the result (Sec. V).
pub struct IcmFast {
    /// Source vertex.
    pub source: VertexId,
    /// Edge property labels.
    pub labels: AlgLabels,
}

/// Marker state for the source vertex (it may start a journey at any
/// departure, so no single start time applies).
pub const FAST_SOURCE: i64 = i64::MAX - 1;

impl IntervalProgram for IcmFast {
    type State = i64;
    type Msg = i64;

    fn init(&self, _v: &VertexContext) -> i64 {
        TIME_MIN
    }

    fn compute(&self, ctx: &mut ComputeContext<i64, i64>, t: Interval, state: &i64, msgs: &[i64]) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.source {
                ctx.set_state(t, FAST_SOURCE);
            }
            return;
        }
        let best = msgs.iter().copied().max().unwrap_or(TIME_MIN);
        if best > *state && *state != FAST_SOURCE {
            ctx.set_state(t, best);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<i64>, t: Interval, state: &i64) {
        let (tt, _) = travel(ctx, &self.labels);
        if *state == FAST_SOURCE {
            // Departing the source: one journey per departure point of
            // this (bounded) segment, each starting its own clock.
            let seg = t;
            if seg.end() == graphite_tgraph::time::TIME_MAX {
                let d = seg.start();
                ctx.send(Interval::from_start(d + tt), d);
                return;
            }
            for d in seg.points() {
                ctx.send(Interval::from_start(d + tt), d);
            }
        } else {
            // Relaying: earliest departure in the scatter interval
            // preserves the journey start.
            ctx.send(Interval::from_start(t.start() + tt), *state);
        }
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.max(b))
    }
}

impl IcmFast {
    /// The fastest duration to `vid` from an [`IcmResult`], or `None`
    /// when unreachable.
    pub fn fastest(result: &IcmResult<i64>, vid: VertexId) -> Option<i64> {
        let entries = result.states.get(&vid)?;
        entries
            .iter()
            .filter(|(_, s)| *s != TIME_MIN && *s != FAST_SOURCE)
            .map(|(iv, s)| iv.start() - *s)
            .min()
    }
}

/// Latest Departure: the latest time one can leave a vertex and still
/// reach the target by its deadline. Reverse-traverses in space and time
/// (Sec. V): scatter runs over in-edges and message intervals take the
/// form `[-∞, d+1)`.
pub struct IcmLd {
    /// Target vertex.
    pub target: VertexId,
    /// Deadline: the target must be reached at or before this time.
    pub deadline: Time,
    /// Edge property labels.
    pub labels: AlgLabels,
}

impl IntervalProgram for IcmLd {
    type State = i64;
    type Msg = i64;

    fn init(&self, _v: &VertexContext) -> i64 {
        TIME_MIN
    }

    fn direction(&self) -> EdgeDirection {
        EdgeDirection::In
    }

    fn compute(&self, ctx: &mut ComputeContext<i64, i64>, t: Interval, state: &i64, msgs: &[i64]) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.target {
                // Being at the target at any time up to the deadline
                // counts as success.
                if let Some(reach) = Interval::until(self.deadline + 1).intersect(t) {
                    ctx.set_state(reach, self.deadline);
                }
            }
            return;
        }
        let best = msgs.iter().copied().max().unwrap_or(TIME_MIN);
        if best > *state {
            ctx.set_state(t, best);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<i64>, _t: Interval, state: &i64) {
        let (tt, _) = travel(ctx, &self.labels);
        // Arrival must land in the state-change interval (where this
        // vertex is known good) and at or before the state's bound;
        // departure must lie in the edge segment.
        let change = ctx.change_interval();
        let seg = ctx.edge_interval();
        let latest_arrival = (change.end() - 1).min(*state);
        let d_max = (latest_arrival.saturating_sub(tt)).min(seg.end() - 1);
        if d_max < seg.start() {
            return;
        }
        // Earliest useful arrival bounds the departure from below too.
        let d_min = change.start().saturating_sub(tt).max(seg.start());
        if d_min > d_max {
            return;
        }
        ctx.send(Interval::until(d_max + 1), d_max);
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(*a.max(b))
    }
}

impl IcmLd {
    /// The latest departure time from `vid`, or `None` when the target
    /// cannot be reached from it by the deadline.
    pub fn latest(result: &IcmResult<i64>, vid: VertexId) -> Option<i64> {
        let entries = result.states.get(&vid)?;
        entries
            .iter()
            .map(|(_, s)| *s)
            .max()
            .filter(|s| *s != TIME_MIN)
    }
}

/// Temporal reachability from a source: the travel cost of SSSP replaced
/// by a flag (Sec. V).
pub struct IcmReach {
    /// Source vertex.
    pub source: VertexId,
    /// Journey start time.
    pub start: Time,
    /// Edge property labels.
    pub labels: AlgLabels,
}

impl IntervalProgram for IcmReach {
    type State = bool;
    type Msg = bool;

    fn init(&self, _v: &VertexContext) -> bool {
        false
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<bool, bool>,
        t: Interval,
        state: &bool,
        msgs: &[bool],
    ) {
        if ctx.superstep() == 1 {
            if ctx.vid() == self.source {
                ctx.set_state(
                    Interval::from_start(self.start).intersect(t).unwrap_or(t),
                    true,
                );
            }
            return;
        }
        if !msgs.is_empty() && !*state {
            ctx.set_state(t, true);
        }
    }

    fn scatter(&self, ctx: &mut ScatterContext<bool>, t: Interval, _state: &bool) {
        let (tt, _) = travel(ctx, &self.labels);
        ctx.send(Interval::from_start(t.start() + tt), true);
    }

    fn combine(&self, a: &bool, b: &bool) -> Option<bool> {
        Some(*a || *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_tgraph::fixtures::{transit_graph, transit_ids};
    use std::sync::Arc;

    fn labels(g: &graphite_tgraph::graph::TemporalGraph) -> AlgLabels {
        AlgLabels::resolve(g)
    }

    #[test]
    fn sssp_paper_trace() {
        let g = Arc::new(transit_graph());
        let r = run_icm(
            &g,
            Arc::new(IcmSssp {
                source: transit_ids::A,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        assert_eq!(r.state_at(transit_ids::E, 7), Some(&7));
        assert_eq!(r.state_at(transit_ids::E, 9), Some(&5));
        assert_eq!(r.state_at(transit_ids::B, 5), Some(&4));
        assert_eq!(r.state_at(transit_ids::F, 5), Some(&INF));
    }

    #[test]
    fn eat_earliest_arrivals() {
        let g = Arc::new(transit_graph());
        let r = run_icm(
            &g,
            Arc::new(IcmEat {
                source: transit_ids::A,
                start: 0,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        // A departs: to C at 1 -> arrive 2; to D at 1 -> 2; to B at 3 -> 4.
        assert_eq!(IcmEat::earliest(&r, transit_ids::C), Some(2));
        assert_eq!(IcmEat::earliest(&r, transit_ids::D), Some(2));
        assert_eq!(IcmEat::earliest(&r, transit_ids::B), Some(4));
        // E: earliest via C@5 -> 6 (B@8 -> 9 is later).
        assert_eq!(IcmEat::earliest(&r, transit_ids::E), Some(6));
        assert_eq!(IcmEat::earliest(&r, transit_ids::F), None);
        // Starting later than every A departure: nothing reachable.
        let late = run_icm(
            &g,
            Arc::new(IcmEat {
                source: transit_ids::A,
                start: 6,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        assert_eq!(IcmEat::earliest(&late, transit_ids::B), None);
    }

    #[test]
    fn tmst_parents_rebuild_tree() {
        let g = Arc::new(transit_graph());
        let r = run_icm(
            &g,
            Arc::new(IcmTmst {
                source: transit_ids::A,
                start: 0,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        let parent = |vid: VertexId| {
            r.states[&vid]
                .iter()
                .map(|(_, s)| *s)
                .filter(|s| s.0 < INF)
                .min()
                .map(|s| s.1)
        };
        assert_eq!(parent(transit_ids::B), Some(transit_ids::A.0));
        assert_eq!(parent(transit_ids::C), Some(transit_ids::A.0));
        assert_eq!(parent(transit_ids::D), Some(transit_ids::A.0));
        // E's earliest arrival is via C.
        assert_eq!(parent(transit_ids::E), Some(transit_ids::C.0));
        assert_eq!(parent(transit_ids::F), None);
    }

    #[test]
    fn fast_durations() {
        let g = Arc::new(transit_graph());
        let r = run_icm(
            &g,
            Arc::new(IcmFast {
                source: transit_ids::A,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        // One hop is always duration 1 (depart d, arrive d+1).
        assert_eq!(IcmFast::fastest(&r, transit_ids::B), Some(1));
        assert_eq!(IcmFast::fastest(&r, transit_ids::C), Some(1));
        assert_eq!(IcmFast::fastest(&r, transit_ids::D), Some(1));
        // E: via C — depart A at 2, arrive C at 3, depart C at 5, arrive
        // E at 6: duration 4. Via B — depart A at 5, arrive B at 6,
        // depart B at 8, arrive E at 9: duration 4 as well.
        assert_eq!(IcmFast::fastest(&r, transit_ids::E), Some(4));
        assert_eq!(IcmFast::fastest(&r, transit_ids::F), None);
    }

    #[test]
    fn ld_latest_departures() {
        let g = Arc::new(transit_graph());
        let r = run_icm(
            &g,
            Arc::new(IcmLd {
                target: transit_ids::E,
                deadline: 9,
                labels: labels(&g),
            }),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        // Depart B at 8 (arrive E at 9 <= 9): LD(B) = 8.
        assert_eq!(IcmLd::latest(&r, transit_ids::B), Some(8));
        // Depart C at 6 (arrive E at 7): LD(C) = 6.
        assert_eq!(IcmLd::latest(&r, transit_ids::C), Some(6));
        // A: depart at 5 via B (B reached at 6 <= 8): LD(A) = 5.
        assert_eq!(IcmLd::latest(&r, transit_ids::A), Some(5));
        // D and F cannot reach E at all.
        assert_eq!(IcmLd::latest(&r, transit_ids::D), None);
        assert_eq!(IcmLd::latest(&r, transit_ids::F), None);
        // Tighter deadline 8: B's edge arrives at 9 — too late; only C
        // works (arrive 7), so A must go via C by 2.
        let tight = run_icm(
            &g,
            Arc::new(IcmLd {
                target: transit_ids::E,
                deadline: 8,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        assert_eq!(IcmLd::latest(&tight, transit_ids::B), None);
        assert_eq!(IcmLd::latest(&tight, transit_ids::C), Some(6));
        assert_eq!(IcmLd::latest(&tight, transit_ids::A), Some(2));
    }

    #[test]
    fn reach_flags() {
        let g = Arc::new(transit_graph());
        let r = run_icm(
            &g,
            Arc::new(IcmReach {
                source: transit_ids::A,
                start: 0,
                labels: labels(&g),
            }),
            &IcmConfig::default(),
        );
        for vid in [
            transit_ids::B,
            transit_ids::C,
            transit_ids::D,
            transit_ids::E,
        ] {
            assert!(r.states[&vid].iter().any(|(_, s)| *s), "{vid:?} reachable");
        }
        assert!(r.states[&transit_ids::F].iter().all(|(_, s)| !*s));
        assert!(r.states[&transit_ids::A].iter().any(|(_, s)| *s));
    }
}
