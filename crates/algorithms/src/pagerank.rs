//! PageRank (TI, Sec. V): fixed-iteration rank computation per
//! time-point. Snapshot-reducible; the paper runs it for 10 supersteps.
//!
//! The ICM form pre-partitions each vertex's state at its out-degree
//! change boundaries (the paper's footnote 2 idea), so every state
//! interval has a constant out-degree and the rank share `r/deg` is well
//! defined per interval. The iteration counter lives in the state so each
//! superstep's write is a genuine change and scatter keeps firing.

use crate::common::degree_boundaries;
use graphite_baselines::vcm::{VcmContext, VcmProgram};
use graphite_bsp::aggregate::Aggregators;
use graphite_icm::prelude::*;
use graphite_tgraph::graph::VertexId;
use graphite_tgraph::time::{Interval, Time};

/// The damping factor used by the paper's PR formulation.
pub const DAMPING: f64 = 0.85;
/// Default iteration count (paper: PR has a fixed superstep count of 10).
pub const DEFAULT_ITERATIONS: u64 = 10;

/// Per-interval PR state: `(iteration, rank, share)` where `share` is the
/// rank divided by the interval's (constant) out-degree.
pub type PrState = (u32, f64, f64);

/// PageRank under ICM.
pub struct IcmPageRank {
    /// Number of rank-update supersteps.
    pub iterations: u64,
}

impl Default for IcmPageRank {
    fn default() -> Self {
        IcmPageRank {
            iterations: DEFAULT_ITERATIONS,
        }
    }
}

impl IcmPageRank {
    fn out_degree_at(ctx: &ComputeContext<PrState, f64>, t: Time) -> usize {
        let g = ctx.graph();
        g.out_edges(ctx.vertex_index())
            .iter()
            .filter(|&&e| g.edge(e).lifespan.contains_point(t))
            .count()
    }
}

impl IntervalProgram for IcmPageRank {
    /// TI algorithms never read edge properties (Sec. VII-A1), so scatter
    /// granularity is the edge lifespan.
    fn refine_scatter_by_properties(&self) -> bool {
        false
    }

    type State = PrState;
    type Msg = f64;

    fn init(&self, _v: &VertexContext) -> PrState {
        (0, 0.0, 0.0)
    }

    fn prepartition(&self, v: &VertexContext) -> Vec<Time> {
        degree_boundaries(v.graph(), v.index())
    }

    fn all_active(&self, step: u64, _globals: &Aggregators) -> bool {
        step <= self.iterations
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<PrState, f64>,
        t: Interval,
        _state: &PrState,
        msgs: &[f64],
    ) {
        let step = ctx.superstep();
        if step > self.iterations {
            return;
        }
        let rank = if step == 1 {
            1.0
        } else {
            let incoming: f64 = msgs.iter().sum();
            1.0 - DAMPING + DAMPING * incoming
        };
        // The interval never crosses a degree boundary (prepartition), so
        // the degree at its first point holds throughout.
        let deg = Self::out_degree_at(ctx, t.start());
        let share = if deg > 0 { rank / deg as f64 } else { 0.0 };
        ctx.set_state(t, (step as u32, rank, share));
    }

    fn scatter(&self, ctx: &mut ScatterContext<f64>, _t: Interval, state: &PrState) {
        if u64::from(state.0) < self.iterations {
            ctx.send_inherit(state.2);
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }
}

/// PageRank under plain VCM (one snapshot).
pub struct VcmPageRank {
    /// Number of rank-update supersteps.
    pub iterations: u64,
}

impl Default for VcmPageRank {
    fn default() -> Self {
        VcmPageRank {
            iterations: DEFAULT_ITERATIONS,
        }
    }
}

impl VcmProgram for VcmPageRank {
    type State = f64;
    type Msg = f64;

    fn init(&self, _v: u32, _vid: VertexId) -> f64 {
        0.0
    }

    fn all_active(&self, step: u64, _globals: &Aggregators) -> bool {
        step <= self.iterations
    }

    fn compute(&self, ctx: &mut VcmContext<f64>, state: &mut f64, msgs: &[f64]) {
        let step = ctx.superstep();
        if step > self.iterations {
            return;
        }
        *state = if step == 1 {
            1.0
        } else {
            let incoming: f64 = msgs.iter().sum();
            1.0 - DAMPING + DAMPING * incoming
        };
        if step < self.iterations {
            let deg = ctx.out_edges().len();
            if deg > 0 {
                let share = *state / deg as f64;
                let targets: Vec<u32> = ctx.out_edges().iter().map(|e| e.target).collect();
                for target in targets {
                    ctx.send(target, share);
                }
            }
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphite_baselines::msb::{run_msb, MsbConfig};
    use graphite_tgraph::builder::TemporalGraphBuilder;
    use graphite_tgraph::fixtures::transit_graph;
    use graphite_tgraph::graph::{EdgeId, TemporalGraph, VIdx};
    use std::sync::Arc;

    fn icm_vs_msb(graph: Arc<TemporalGraph>, iterations: u64) {
        let icm = run_icm(
            &graph,
            Arc::new(IcmPageRank { iterations }),
            &IcmConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let msb = run_msb(
            Arc::clone(&graph),
            |_| Arc::new(VcmPageRank { iterations }),
            &MsbConfig {
                workers: 2,
                ..Default::default()
            },
        );
        for (t, snapshot) in &msb.per_snapshot {
            for (v, rank) in snapshot {
                let vid = graph.vertex(VIdx(*v)).vid;
                let got = icm.state_at(vid, *t).map(|s| s.1).unwrap();
                assert!(
                    (got - rank).abs() < 1e-9,
                    "{vid:?} at {t}: icm {got} vs msb {rank}"
                );
            }
        }
    }

    #[test]
    fn icm_pr_matches_per_snapshot_pr_on_transit() {
        icm_vs_msb(Arc::new(transit_graph()), 10);
    }

    #[test]
    fn icm_pr_matches_on_a_cycle_with_churn() {
        // A 3-cycle where one edge disappears halfway: ranks differ before
        // and after the change.
        let mut b = TemporalGraphBuilder::new();
        let life = graphite_tgraph::time::Interval::new(0, 8);
        for i in 0..3 {
            b.add_vertex(VertexId(i), life).unwrap();
        }
        b.add_edge(EdgeId(0), VertexId(0), VertexId(1), life)
            .unwrap();
        b.add_edge(EdgeId(1), VertexId(1), VertexId(2), life)
            .unwrap();
        b.add_edge(
            EdgeId(2),
            VertexId(2),
            VertexId(0),
            graphite_tgraph::time::Interval::new(0, 4),
        )
        .unwrap();
        icm_vs_msb(Arc::new(b.build().unwrap()), 10);
    }

    #[test]
    fn ranks_on_a_static_cycle_stay_one() {
        let mut b = TemporalGraphBuilder::new();
        let life = graphite_tgraph::time::Interval::new(0, 4);
        for i in 0..4 {
            b.add_vertex(VertexId(i), life).unwrap();
        }
        for i in 0..4 {
            b.add_edge(EdgeId(i), VertexId(i), VertexId((i + 1) % 4), life)
                .unwrap();
        }
        let graph = Arc::new(b.build().unwrap());
        let icm = run_icm(
            &graph,
            Arc::new(IcmPageRank::default()),
            &IcmConfig::default(),
        );
        for i in 0..4 {
            let s = icm.state_at(VertexId(i), 2).unwrap();
            assert!((s.1 - 1.0).abs() < 1e-12, "vertex {i} rank {}", s.1);
        }
        // Rank shares across a symmetric cycle are all 1.0; state intervals
        // stay maximal (one entry per vertex).
        assert_eq!(icm.states[&VertexId(0)].len(), 1);
    }

    #[test]
    fn icm_pr_runs_exactly_the_fixed_supersteps() {
        let graph = Arc::new(transit_graph());
        let icm = run_icm(
            &graph,
            Arc::new(IcmPageRank { iterations: 5 }),
            &IcmConfig::default(),
        );
        assert_eq!(icm.metrics.supersteps, 5);
    }
}
